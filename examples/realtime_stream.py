"""Real-time monitoring: alerts emitted while the stream flows.

The batch API (`MoniLog.run`) scores sessions after the stream ends;
a production MoniLog must page the on-call team the moment an
anomalous session goes quiet.  This example drives a streaming-mode
:class:`~repro.api.pipeline.Pipeline` record by record and reports
each alert's *detection latency*: the stream time between the
anomaly's last log line and the alert firing.

Run:  python examples/realtime_stream.py
"""

from repro import Pipeline, PipelineSpec
from repro.datasets import generate_cloud_platform


def main() -> None:
    # Anomaly-free history: training on a stream that already contains
    # anomalies teaches them as normal flow (experiment X1 measures
    # exactly that), so a real deployment trains on vetted periods.
    history = generate_cloud_platform(sessions=400, anomaly_rate=0.0, seed=10)
    live = generate_cloud_platform(sessions=300, anomaly_rate=0.06, seed=77)

    spec = PipelineSpec(detector="deeplog",
                        detector_options={"epochs": 8, "seed": 0},
                        streaming=True, session_timeout=5.0)
    streaming = Pipeline.from_spec(spec)
    print(f"training on {len(history.records)} historical records ...")
    streaming.fit(history.records)
    print(f"streaming {len(live.records)} live records ...\n")

    session_last_event: dict[str, float] = {}
    alerts = 0
    for record in live.records:
        if record.session_id:
            session_last_event[record.session_id] = record.timestamp
        for alert in streaming.process_record(record):
            alerts += 1
            session_id = alert.report.session_id
            latency = record.timestamp - session_last_event.get(
                session_id, record.timestamp
            )
            truth = live.sessions.get(session_id)
            kind = truth.kind if truth and truth.anomalous else "false alarm"
            print(
                f"  t={record.timestamp:8.2f}s  ALERT {session_id} "
                f"({kind}) — fired {latency:.2f}s after the session went quiet"
            )
    for alert in streaming.flush():
        alerts += 1
        print(f"  [flush] ALERT {alert.report.session_id}")

    print(
        f"\n{alerts} alerts; peak concurrent open sessions: "
        f"{streaming.sessionizer.open_sessions} at shutdown, "
        f"{streaming.stats().windows_scored} windows scored in total"
    )


if __name__ == "__main__":
    main()
