"""Cloud monitoring scenario: noisy multi-source stream + admin feedback.

The deployment the paper motivates: a cloud platform's api / network /
storage sources feed one stream that arrives duplicated and out of
order (§I's production noise), the pipeline detects anomalous request
sessions, and the monitoring team's routine actions (moving alerts
between team pools, editing criticalities) passively train the
classifier (§V).  Watch the routing accuracy improve round after round
with zero labelling effort.

Run:  python examples/cloud_monitoring.py
"""

from repro import Pipeline, PipelineSpec
from repro.classify.feedback import AdministratorSimulator, source_based_policy
from repro.datasets import generate_cloud_platform
from repro.logs.sources import ReplaySource
from repro.logs.stream import DuplicationNoise, LogStream, ReorderingNoise


def noisy(records, seed):
    """Deliver records the way a real transport would: late and twice."""
    stream = LogStream(
        [ReplaySource("platform", records)],
        noises=[
            ReorderingNoise(max_delay=0.05, seed=seed),
            DuplicationNoise(rate=0.01, delay=0.2, seed=seed + 1),
        ],
    )
    return stream.collect()


def main() -> None:
    system = Pipeline.from_spec(PipelineSpec(
        detector="deeplog", detector_options={"epochs": 8, "seed": 0},
    ))

    # The monitoring organization: API team and infrastructure team.
    system.pools.create_pool("team-api", "API front-end on-call")
    system.pools.create_pool("team-infra", "network + storage on-call")
    policy = source_based_policy(
        {"api": "team-api", "network": "team-infra", "storage": "team-infra"}
    )
    admin = AdministratorSimulator(system.pools, policy, diligence=0.8, seed=7)

    history = generate_cloud_platform(sessions=500, seed=100)
    print(f"training on {len(history.records)} historical records ...\n")
    system.fit(noisy(history.records, seed=0))

    print(f"{'round':>5s} | {'alerts':>6s} | {'routed correctly':>16s} | admin moves")
    print("-" * 55)
    for round_index in range(5):
        live = generate_cloud_platform(
            sessions=400, anomaly_rate=0.08, seed=200 + round_index
        )
        moves_before = admin.pool_moves
        correct = 0
        total = 0
        for alert in system.run(noisy(live.records, seed=round_index)):
            total += 1
            if alert.pool == policy.correct_pool(alert.report):
                correct += 1
            admin.review(alert)
        routed = f"{correct}/{total}" if total else "-"
        print(
            f"{round_index:>5d} | {total:>6d} | {routed:>16s} | "
            f"{admin.pool_moves - moves_before}"
        )

    print(
        f"\nafter {admin.reviews} reviews the classifier has absorbed "
        f"{system.classifier.feedback_count} passive training signals."
    )
    print("pool contents:")
    for name in system.pools.pool_names:
        print(f"  {name:10s}: {len(system.pools.pool(name))} alerts")


if __name__ == "__main__":
    main()
