"""Adaptive classification: the Fig. 3 pool system in motion.

Demonstrates the §V design end to end, beyond what the pipeline does
by default:

* administrators create new pools *while the system runs* (a security
  team spins up mid-scenario) and delete ones they no longer need;
* the classifier adapts because every move is an assessment signal;
* a diligence sweep shows how much admin attention the passive-learning
  loop actually needs.

Run:  python examples/adaptive_classifier.py
"""

from repro.classify import (
    AdministratorSimulator,
    AnomalyClassifier,
    PoolManager,
)
from repro.classify.feedback import AdminPolicy
from repro.core.reports import AnomalyReport
from repro.detection.base import DetectionResult
from repro.eval import Table
from repro.logs.record import ParsedLog, Severity, LogRecord


def make_report(report_id, source, template, severity=Severity.ERROR):
    record = LogRecord(
        timestamp=float(report_id),
        source=source,
        severity=severity,
        message=template,
        session_id=f"s{report_id}",
    )
    event = ParsedLog(record=record, template_id=0, template=template)
    return AnomalyReport(
        report_id=report_id,
        session_id=f"s{report_id}",
        events=(event,),
        detection=DetectionResult(anomalous=True, score=1.0,
                                  reasons=("detector fired",)),
    )


#: Scripted incident feed: (source, template, true pool, criticality).
INCIDENTS = [
    ("api", "request failed status 500 internal error", "team-api", "high"),
    ("api", "request latency above threshold", "team-api", "moderate"),
    ("storage", "volume entered degraded state", "team-infra", "high"),
    ("network", "link flap detected on port", "team-infra", "moderate"),
    ("auth", "repeated failed login attempts detected", "team-security", "high"),
    ("auth", "token replay suspected for user", "team-security", "high"),
]


def policy_route(report):
    for source, template, pool, criticality in INCIDENTS:
        if report.sources[0] == source and template == report.events[0].template:
            return pool, criticality
    return "default", "low"


def run_scenario(diligence: float, rounds: int = 12) -> list[float]:
    manager = PoolManager()
    manager.create_pool("team-api")
    manager.create_pool("team-infra")
    classifier = AnomalyClassifier().attach(manager)
    admin = AdministratorSimulator(
        manager, AdminPolicy(route=policy_route), diligence=diligence, seed=3
    )
    accuracies = []
    report_id = 0
    for round_index in range(rounds):
        if round_index == 6:
            # Mid-scenario reorganization: a security team forms.
            manager.create_pool("team-security")
        correct = 0
        batch = INCIDENTS if round_index >= 6 else INCIDENTS[:4]
        for source, template, pool, criticality in batch:
            report = make_report(report_id, source, template)
            report_id += 1
            alert = manager.deliver(classifier.classify(report))
            if alert.pool == pool:
                correct += 1
            admin.review(alert)
        accuracies.append(correct / len(batch))
    return accuracies


def main() -> None:
    table = Table(
        "pool routing accuracy by round (security team appears at round 6)",
        ["diligence"] + [f"r{i}" for i in range(12)],
    )
    for diligence in (1.0, 0.5, 0.2):
        accuracies = run_scenario(diligence)
        table.add_row(f"{diligence:.1f}", *[f"{a:.2f}" for a in accuracies])
    table.print()
    print(
        "\nReading: with a diligent admin the classifier locks onto the"
        "\nrouting policy within a couple of rounds and adapts when the"
        "\nsecurity pool appears; at 20% diligence it learns the same"
        "\npolicy, just later — passive supervision is cheap but not free."
    )


if __name__ == "__main__":
    main()
