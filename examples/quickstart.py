"""Quickstart: train MoniLog on a cloud log stream and catch anomalies.

Runs the full three-stage pipeline of the paper's Fig. 1 on a synthetic
multi-source cloud platform: parse the stream with Drain, learn the
normal execution flows with DeepLog, then flag and classify anomalous
request sessions.

Run:  python examples/quickstart.py
"""

from repro import Pipeline, PipelineSpec
from repro.datasets import generate_cloud_platform


def main() -> None:
    # A multi-source stream: api + network + storage logs, ~5 % of the
    # request sessions anomalous (scheduler failures, cross-source
    # incidents, absurd latencies).
    data = generate_cloud_platform(sessions=500, anomaly_rate=0.05, seed=42)
    split = len(data.records) * 6 // 10
    history, live = data.records[:split], data.records[split:]

    # One declarative spec builds the whole pipeline: components are
    # named, knobs are fields, and the same spec could come from a
    # TOML file (see examples/pipeline.toml).
    spec = PipelineSpec(detector="deeplog",
                        detector_options={"epochs": 8, "seed": 0})
    system = Pipeline.from_spec(spec)

    print(f"training on {len(history)} historical records ...")
    system.fit(history)
    print(f"  parser discovered "
          f"{system.stats().templates_discovered} templates")

    print(f"processing {len(live)} live records ...")
    alerts = system.run_all(live)

    print(f"\n{len(alerts)} anomalies detected:\n")
    for alert in alerts:
        report = alert.report
        truth = data.sessions.get(report.session_id)
        kind = truth.kind if truth and truth.anomalous else "FALSE ALARM"
        print(f"  [{kind:>12s}] {report.summary()}")
        for reason in report.detection.reasons[:2]:
            print(f"                 - {reason}")

    true_positives = sum(
        1
        for alert in alerts
        if data.sessions.get(alert.report.session_id)
        and data.sessions[alert.report.session_id].anomalous
    )
    print(
        f"\nprecision: {true_positives}/{len(alerts)} flagged sessions "
        "are real anomalies"
    )


if __name__ == "__main__":
    main()
