"""Parser shootout: all eight template miners on all three datasets.

The paper's §IV benchmark ambition in one script: grouping accuracy
(the literature's metric), the paper's Eq. 1 token accuracy, template
counts, and wall-clock throughput for five online and three batch
parsers — with and without the expert masking step whose necessity the
paper identifies as the main automation limit.

Run:  python examples/parser_shootout.py
"""

import time

from repro.datasets import generate_bgl, generate_cloud_platform, generate_hdfs
from repro.eval import Table
from repro.metrics.parsing import parsing_report
from repro.parsing import (
    BATCH_PARSERS,
    ONLINE_PARSERS,
    LogramParser,
    default_masker,
    no_masker,
)


def run_parser(name, factory, records, library, masked):
    masker = default_masker() if masked else no_masker()
    parser = factory(masker=masker)
    start = time.perf_counter()
    if name in BATCH_PARSERS:
        parser.fit(records)
    if isinstance(parser, LogramParser):
        parser.warmup(records)  # the original's two-pass design
    parsed = parser.parse_all(records)
    elapsed = time.perf_counter() - start
    report = parsing_report(parsed, library)
    throughput = len(records) / elapsed if elapsed > 0 else float("inf")
    return report, throughput


def main() -> None:
    datasets = {
        "hdfs": generate_hdfs(sessions=400, seed=1),
        "bgl": generate_bgl(records=6000, seed=1),
        "cloud": generate_cloud_platform(sessions=300, seed=1),
    }
    parsers = dict(ONLINE_PARSERS) | dict(BATCH_PARSERS)

    for masked in (True, False):
        label = "with expert masking" if masked else "no masking (full automation)"
        for dataset_name, dataset in datasets.items():
            table = Table(
                f"{dataset_name} — {label}",
                ["parser", "grouping", "token (Eq.1)", "templates",
                 "true", "lines/s"],
            )
            for parser_name in sorted(parsers):
                report, throughput = run_parser(
                    parser_name, parsers[parser_name], dataset.records,
                    dataset.library, masked,
                )
                table.add_row(
                    parser_name,
                    report.grouping_accuracy,
                    report.token_accuracy,
                    report.predicted_templates,
                    report.true_templates,
                    int(throughput),
                )
            table.print()
            print()


if __name__ == "__main__":
    main()
