"""Legacy setup shim: this environment's pip lacks the `wheel` package,
so the PEP 660 editable path is unavailable; `setup.py develop` works."""

from setuptools import setup

setup()
