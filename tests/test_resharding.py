"""Elastic resharding: routing stability, live template migration,
replica delta-sync, and load-accounting correctness.

Three contracts pin the tentpole:

* **Rendezvous routing** is deterministic, independent of shard
  enumeration order, and minimally disruptive — growing N -> N+1
  relocates about 1/(N+1) of the keyspace (all of it onto the new
  shard) and shrinking relocates exactly the removed shards' keys.
* **Live migration** (:meth:`DistributedDrain.resize`) carries each
  relocated key's template state with it: every pre-reshard global id
  still resolves to the same template string, and continued parsing
  is byte-identical to a twin that never resharded.
* **Delta sync** ships template-store deltas — not whole pickled
  parsers — to warm process-pool replicas: warm batches cost bytes
  proportional to *new* templates, never to total store size.

Source names here are digit-free NATO words on purpose: Drain routes
the first ``depth`` tokens literally when they contain no digits, so
each source parses in its own subtree and output cannot depend on
which sources happen to share a shard.  That isolation is what lets
the tests compare a resharded parser against a differently-sharded
twin token for token.
"""

from __future__ import annotations

import pickle
import random

import pytest

from conftest import make_record
from repro.api import Pipeline, PipelineSpec
from repro.autoscale import AutoscaleConfig, AutoscaleController
from repro.core.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.parsing import DistributedDrain, default_masker
from repro.parsing.distributed import rendezvous_shard

# Placement of these names is pinned by the stable hash; tests below
# hard-code facts read off this table (e.g. alpha/delta share shard 0
# of 2 but split 0/2 at three shards).
SOURCES = ["alpha", "bravo", "charlie", "delta", "echo",
           "foxtrot", "golf", "hotel", "india", "juliet"]
# Two sources per shard at two shards — the delta-sync tests need
# every process-pool replica to actually see traffic.
SPLIT_SOURCES = ["alpha", "echo", "bravo", "golf"]


def _records(sources, statements=3, repeats=4, start=0.0, family="op"):
    """Per-source log lines: ``statements`` templates per source.

    Each statement index gets a distinct trailing length, so template
    identity is deterministic; the ``family`` token sits at routing
    depth, so a new family is guaranteed to mint new templates.
    """
    records = []
    sequence = 0
    for repeat in range(repeats):
        for source in sources:
            for index in range(statements):
                suffix = " detail" * index
                records.append(make_record(
                    f"{source} {family} finished request "
                    f"{repeat * 31 + index} in {repeat + index} ms{suffix}",
                    timestamp=start + sequence, source=source,
                    sequence=sequence))
                sequence += 1
    return records


def _shapes(events):
    return [(event.template_id, event.template, event.variables)
            for event in events]


class TestRendezvousRouting:
    def test_deterministic_and_in_range(self):
        for shards in (1, 3, 7):
            for index in range(200):
                key = f"key-{index}"
                shard = rendezvous_shard(key, shards)
                assert 0 <= shard < shards
                assert rendezvous_shard(key, shards) == shard

    def test_enumeration_order_independent(self):
        ids = list(range(9))
        shuffled = list(reversed(ids))
        mixed = ids[:]
        random.Random(7).shuffle(mixed)
        for index in range(500):
            key = f"key-{index}"
            expected = rendezvous_shard(key, 9)
            assert rendezvous_shard(key, shuffled) == expected
            assert rendezvous_shard(key, mixed) == expected

    def test_grow_relocates_bounded_fraction_onto_new_shard(self):
        keys = [f"key-{index}" for index in range(10_000)]
        for shards in (2, 4, 8):
            before = {key: rendezvous_shard(key, shards) for key in keys}
            after = {key: rendezvous_shard(key, shards + 1) for key in keys}
            moved = [key for key in keys if after[key] != before[key]]
            # Expectation is 1/(N+1) of the keyspace; allow 2x slack
            # for hash lumpiness but never silent mass relocation.
            assert 0 < len(moved) <= 2 * len(keys) / (shards + 1)
            assert all(after[key] == shards for key in moved)

    def test_shrink_moves_only_orphaned_keys(self):
        for index in range(10_000):
            key = f"key-{index}"
            survivor = rendezvous_shard(key, 4)
            if survivor < 3:
                assert rendezvous_shard(key, 3) == survivor


class TestLiveMigration:
    def test_grow_preserves_global_ids_and_template_strings(self):
        parser = DistributedDrain(shards=3, masker=default_masker())
        twin = DistributedDrain(shards=3, masker=default_masker())
        records = _records(SOURCES)
        parser.parse_batch(records)
        twin.parse_batch(records)

        before = {gid: parser.template_string(gid)
                  for gid in range(parser.template_count)}
        report = parser.resize(5)
        assert (report.old_shards, report.new_shards) == (3, 5)
        assert report.keys_moved > 0  # alpha/bravo/charlie/delta/juliet
        assert report.templates_moved > 0
        assert report.bytes_moved > 0
        assert len(parser.parsers) == 5

        for gid, template in before.items():
            assert parser.template_string(gid) == template
        assert parser.global_templates() == twin.global_templates()

        # Continued parsing on 5 shards is byte-identical to the twin
        # that stayed at 3 — same global ids, templates, variables.
        follow_up = _records(SOURCES, repeats=3, start=1000.0)
        assert _shapes(parser.parse_batch(follow_up)) == \
            _shapes(twin.parse_batch(follow_up))
        assert parser.global_templates() == twin.global_templates()

    def test_shrink_repoints_template_addressing(self):
        parser = DistributedDrain(shards=4, masker=default_masker())
        twin = DistributedDrain(shards=4, masker=default_masker())
        records = _records(SOURCES[:6])
        parser.parse_batch(records)
        twin.parse_batch(records)

        before = {gid: parser.template_string(gid)
                  for gid in range(parser.template_count)}
        report = parser.resize(2)
        assert report.new_shards == 2
        assert len(parser.parsers) == 2
        # charlie/delta (shard 3) and foxtrot (shard 2) relocate.
        assert report.keys_moved >= 3

        for gid, template in before.items():
            assert parser.template_string(gid) == template
        follow_up = _records(SOURCES[:6], repeats=2, start=1000.0)
        assert _shapes(parser.parse_batch(follow_up)) == \
            _shapes(twin.parse_batch(follow_up))
        # Migrated copies shift the inventory's shard-order listing;
        # the reconciled template *set* must survive the shrink.
        assert sorted(parser.global_templates()) == \
            sorted(twin.global_templates())

    def test_resize_noop_and_validation(self):
        parser = DistributedDrain(shards=3)
        report = parser.resize(3)
        assert report.keys_moved == 0
        assert report.new_shards == 3
        with pytest.raises(ValueError):
            parser.resize(0)

    @pytest.mark.parametrize("executor_name", ["thread", "process"])
    def test_mid_run_reshard_identical_across_executors(self, executor_name):
        executor = {"thread": ThreadedExecutor,
                    "process": ProcessExecutor}[executor_name](max_workers=3)
        try:
            reference = DistributedDrain(shards=2, masker=default_masker(),
                                         executor=SerialExecutor())
            concurrent = DistributedDrain(shards=2, masker=default_masker(),
                                          executor=executor)
            records = _records(SOURCES, repeats=6)
            half = len(records) // 2
            assert _shapes(concurrent.parse_batch(records[:half])) == \
                _shapes(reference.parse_batch(records[:half]))
            # Same reshard schedule on both sides: under the process
            # executor this queues migration deltas for warm replicas.
            reference.resize(5)
            concurrent.resize(5)
            assert _shapes(concurrent.parse_batch(records[half:])) == \
                _shapes(reference.parse_batch(records[half:]))
            assert concurrent.global_templates() == \
                reference.global_templates()
            assert concurrent.shard_loads == reference.shard_loads
        finally:
            executor.close()


class TestLoadAccounting:
    def test_poisoned_batch_leaves_loads_unchanged(self):
        parser = DistributedDrain(shards=3, masker=default_masker())
        records = _records(SOURCES[:6])
        parser.parse_batch(records)
        loads_before = list(parser.shard_loads)
        keys_before = parser.distinct_keys

        victim = parser.shard_for(records[0])

        def poisoned(batch):
            raise RuntimeError("poisoned batch")

        parser.parsers[victim].parse_batch = poisoned
        with pytest.raises(RuntimeError, match="poisoned"):
            parser.parse_batch(records)
        # The failed fan-out must not inflate the balance signal the
        # autoscaler resizes on.
        assert parser.shard_loads == loads_before
        assert parser.distinct_keys == keys_before

    def test_resize_reattributes_loads_without_inventing_records(self):
        parser = DistributedDrain(shards=3, masker=default_masker())
        records = _records(SOURCES)
        parser.parse_batch(records)
        total = sum(parser.shard_loads)
        assert total == len(records)
        parser.resize(5)
        assert sum(parser.shard_loads) == total
        parser.resize(2)
        assert sum(parser.shard_loads) == total


class TestDeltaSync:
    def test_warm_batches_ship_deltas_not_parsers(self):
        executor = ProcessExecutor(max_workers=2)
        try:
            parser = DistributedDrain(shards=2, masker=default_masker(),
                                      executor=executor)
            base = _records(SPLIT_SOURCES, statements=6, repeats=3)
            parser.parse_batch(base)
            cold = parser.sync_stats
            assert cold["full_syncs"] == 2  # one per shard, then warm

            parser.parse_batch(_records(SPLIT_SOURCES, statements=6,
                                        repeats=3, start=1000.0))
            warm = parser.sync_stats
            assert warm["full_syncs"] == 2
            full_size = sum(
                len(pickle.dumps(shard, pickle.HIGHEST_PROTOCOL))
                for shard in parser.parsers)
            # Nothing new to teach the workers: zero bytes out, and the
            # count-only deltas back are a sliver of a parser pickle.
            assert warm["bytes_to_workers"] == cold["bytes_to_workers"]
            counts_only = (warm["bytes_from_workers"]
                           - cold["bytes_from_workers"])
            assert 0 < counts_only < full_size / 4

            # New templates cost bytes proportional to *their* count,
            # not to the total store size: a batch minting 4x the
            # templates ships more delta, and both ship a fraction of
            # what re-pickling the parsers would.
            parser.parse_batch(_records(SPLIT_SOURCES, statements=2,
                                        repeats=2, start=2000.0,
                                        family="sweep"))
            after_few = parser.sync_stats
            few = after_few["bytes_from_workers"] \
                - warm["bytes_from_workers"]
            parser.parse_batch(_records(SPLIT_SOURCES, statements=8,
                                        repeats=2, start=3000.0,
                                        family="flush"))
            many = parser.sync_stats["bytes_from_workers"] \
                - after_few["bytes_from_workers"]
            assert counts_only < few < many
            grown_full_size = sum(
                len(pickle.dumps(shard, pickle.HIGHEST_PROTOCOL))
                for shard in parser.parsers)
            assert many < grown_full_size / 2
            assert parser.sync_stats["full_syncs"] == 2
        finally:
            executor.close()

    def test_shrink_ships_pending_ops_to_warm_replicas(self):
        # A grow only populates brand-new shards (cold replicas, full
        # sync anyway); a shrink migrates into *surviving* shards whose
        # replicas are already warm — the one case where the migration
        # must ride the incremental ops channel, not a re-pickle.
        executor = ProcessExecutor(max_workers=2)
        try:
            reference = DistributedDrain(shards=3, masker=default_masker(),
                                         executor=SerialExecutor())
            parser = DistributedDrain(shards=3, masker=default_masker(),
                                      executor=executor)
            base = _records(["alpha", "delta", "echo"])  # shards 0/2/1
            assert _shapes(parser.parse_batch(base)) == \
                _shapes(reference.parse_batch(base))
            warm = parser.sync_stats
            assert warm["delta_syncs"] == 0
            reference.resize(2)
            parser.resize(2)  # delta relocates onto warm shard 0
            follow_up = _records(["alpha", "delta", "echo"], repeats=2,
                                 start=1000.0)
            assert _shapes(parser.parse_batch(follow_up)) == \
                _shapes(reference.parse_batch(follow_up))
            after = parser.sync_stats
            assert after["delta_syncs"] >= 1
            assert after["full_syncs"] == warm["full_syncs"]
        finally:
            executor.close()

    def test_worker_restart_resyncs_transparently(self):
        executor = ProcessExecutor(max_workers=2)
        try:
            reference = DistributedDrain(shards=2, masker=default_masker(),
                                         executor=SerialExecutor())
            parser = DistributedDrain(shards=2, masker=default_masker(),
                                      executor=executor)
            base = _records(SPLIT_SOURCES)
            assert _shapes(parser.parse_batch(base)) == \
                _shapes(reference.parse_batch(base))
            # Kill the workers: their replicas vanish, but the router
            # still believes they are warm.  The next batch must detect
            # the cold replica and recover with a full resync.
            executor.close()
            follow_up = _records(SPLIT_SOURCES, repeats=2, start=1000.0)
            assert _shapes(parser.parse_batch(follow_up)) == \
                _shapes(reference.parse_batch(follow_up))
            assert parser.sync_stats["full_syncs"] >= 3
        finally:
            executor.close()


class _ReshardPipe:
    """The controller-facing slice of a sharded Pipeline."""

    def __init__(self, parser):
        self.parser = parser
        self.sharded = True
        self.batch_size = 64
        self.reports = []

    def reshard(self, shards):
        report = self.parser.resize(shards)
        self.reports.append(report)
        return report


def _skew(parser, counts):
    """Parse ``counts`` records per source, building the load model."""
    for source, count in counts.items():
        parser.parse_batch(_records([source], statements=1, repeats=count))


class TestAutoscaleReshard:
    def _controller(self, parser, **overrides):
        config = AutoscaleConfig(enabled=True, reshard=True,
                                 imbalance_threshold=1.5, **overrides)
        return AutoscaleController(config, pipeline=_ReshardPipe(parser),
                                   clock=lambda: 0.0)

    def test_imbalance_graduates_to_resize(self):
        # alpha and delta share shard 0 of 2 but split 0/2 at three
        # shards: growing genuinely fixes this skew, and the predicted
        # imbalance (1.5 at 3 shards) says so.
        parser = DistributedDrain(shards=2, masker=default_masker())
        _skew(parser, {"alpha": 30, "delta": 30})
        controller = self._controller(parser)
        made = controller.tick(0.0)
        assert parser.shards == 3
        assert any("shards: 2 -> 3" in message for message in made)
        assert controller.pipeline.reports[0].keys_moved == 1  # delta
        # The load model was re-attributed, not reset.
        assert sum(parser.shard_loads) == 60

    def test_reshard_respects_cooldown(self):
        parser = DistributedDrain(shards=2, masker=default_masker())
        _skew(parser, {"alpha": 30, "delta": 30})
        controller = self._controller(parser, reshard_cooldown=10.0)
        assert controller.tick(0.0)
        assert parser.shards == 3
        # Fresh skew that would justify another resize: oscar and
        # juliet share shard 0 of 3 but split 0/4 at five shards.
        _skew(parser, {"oscar": 300, "juliet": 300})
        assert controller.tick(5.0) == []  # inside the cooldown
        assert parser.shards == 3
        made = controller.tick(50.0)  # cooldown elapsed
        assert parser.shards > 3
        assert any("shards" in message for message in made)

    def test_single_elephant_key_never_resizes(self):
        # One key's load cannot be split by resharding: predicted
        # imbalance only worsens with more shards, so the controller
        # must fall back to the advisory rather than thrash.
        parser = DistributedDrain(shards=2, masker=default_masker())
        _skew(parser, {"elephant": 50})
        controller = self._controller(parser)
        assert controller.tick(0.0) == []
        assert parser.shards == 2
        assert controller.advisories
        assert "shard imbalance" in controller.advisories[0]

    def test_sparse_keyspace_shrinks_to_distinct_keys(self):
        # Two keys on six shards: four shards can never see a record.
        # With growth capped, the controller folds the dead shards
        # away instead of advising.
        parser = DistributedDrain(shards=6, masker=default_masker())
        _skew(parser, {"india": 20, "charlie": 20})
        before = {gid: parser.template_string(gid)
                  for gid in range(parser.template_count)}
        controller = self._controller(parser, max_shards=6)
        made = controller.tick(0.0)
        assert parser.shards == 2
        assert any("shards: 6 -> 2" in message for message in made)
        for gid, template in before.items():
            assert parser.template_string(gid) == template


class TestPipelineReshard:
    def test_reshard_updates_spec_and_metrics(self):
        pipeline = Pipeline(PipelineSpec(shards=3,
                                         telemetry={"enabled": True}))
        pipeline.parser.parse_batch(_records(SOURCES))
        report = pipeline.reshard(5)
        assert report.new_shards == 5
        assert pipeline.spec.shards == 5
        text = pipeline.metrics_text()
        assert "monilog_reshard_total 1" in text
        assert "monilog_shards 5" in text
        assert "monilog_reshard_keys_moved_total" in text

    def test_reshard_requires_sharded_pipeline(self):
        pipeline = Pipeline(PipelineSpec())
        with pytest.raises(RuntimeError, match="sharded"):
            pipeline.reshard(4)
