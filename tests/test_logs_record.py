"""Unit tests for the core log data model."""

import pytest

from repro.logs.record import (
    DEFAULT_TENANT,
    LogRecord,
    ParsedLog,
    Severity,
    WILDCARD,
    template_of,
    tokenize,
)

from conftest import make_record


class TestSeverity:
    def test_ordering_expresses_criticality(self):
        assert Severity.ERROR > Severity.INFO
        assert Severity.CRITICAL > Severity.ERROR
        assert Severity.TRACE < Severity.DEBUG

    def test_from_text_case_insensitive(self):
        assert Severity.from_text("info") is Severity.INFO
        assert Severity.from_text("ERROR") is Severity.ERROR
        assert Severity.from_text("  Warning ") is Severity.WARNING

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("warn", Severity.WARNING),
            ("err", Severity.ERROR),
            ("fatal", Severity.CRITICAL),
            ("crit", Severity.CRITICAL),
            ("severe", Severity.ERROR),
            ("notice", Severity.INFO),
            ("fine", Severity.DEBUG),
        ],
    )
    def test_common_aliases(self, alias, expected):
        assert Severity.from_text(alias) is expected

    def test_unknown_severity_raises(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.from_text("loud")


class TestTokenize:
    def test_splits_on_single_spaces(self):
        assert tokenize("Sending 138 bytes") == ["Sending", "138", "bytes"]

    def test_collapses_repeated_whitespace(self):
        assert tokenize("a  b\tc") == ["a", "b", "c"]

    def test_strips_leading_trailing(self):
        assert tokenize("  x y  ") == ["x", "y"]

    def test_empty_message(self):
        assert tokenize("") == []
        assert tokenize("   ") == []


class TestLogRecord:
    def test_tokens_property(self):
        record = make_record("Error while receiving data")
        assert record.tokens == ["Error", "while", "receiving", "data"]

    def test_is_anomalous_from_labels(self):
        normal = make_record("ok")
        anomalous = make_record("bad", labels=frozenset({"anomaly"}))
        assert not normal.is_anomalous
        assert anomalous.is_anomalous

    def test_with_message_preserves_other_fields(self):
        record = make_record("original", session_id="s1", sequence=7)
        changed = record.with_message("changed")
        assert changed.message == "changed"
        assert changed.session_id == "s1"
        assert changed.sequence == 7
        assert record.message == "original"  # frozen original untouched

    def test_with_labels_accumulates(self):
        record = make_record("m", labels=frozenset({"a"}))
        tagged = record.with_labels("b", "c")
        assert tagged.labels == frozenset({"a", "b", "c"})

    def test_render_contains_header_fields(self):
        record = make_record("New process started", source="svc",
                             severity=Severity.WARNING, timestamp=12.5)
        rendered = record.render()
        assert "svc" in rendered
        assert "WARNING" in rendered
        assert "New process started" in rendered

    def test_records_are_hashable_and_frozen(self):
        record = make_record("m")
        assert hash(record)  # usable in sets
        with pytest.raises(AttributeError):
            record.message = "changed"

    def test_tenant_defaults_and_participates_in_identity(self):
        import dataclasses
        record = make_record("m")
        assert record.tenant == DEFAULT_TENANT
        tagged = dataclasses.replace(record, tenant="acme")
        assert tagged != record
        assert hash(tagged) != hash(record) or tagged != record


class TestParsedLog:
    def _parsed(self) -> ParsedLog:
        record = make_record("Sending 138 bytes", timestamp=3.0,
                             source="net", session_id="s9")
        return ParsedLog(
            record=record,
            template_id=4,
            template=f"Sending {WILDCARD} bytes",
            variables=("138",),
        )

    def test_delegated_properties(self):
        parsed = self._parsed()
        assert parsed.timestamp == 3.0
        assert parsed.source == "net"
        assert parsed.session_id == "s9"

    def test_reconstruct_roundtrips(self):
        parsed = self._parsed()
        assert parsed.reconstruct() == "Sending 138 bytes"

    def test_reconstruct_with_missing_variables_keeps_wildcard(self):
        record = make_record("a b")
        parsed = ParsedLog(record=record, template_id=0,
                           template=f"a {WILDCARD}", variables=())
        assert parsed.reconstruct() == f"a {WILDCARD}"

    def test_tenant_delegates_to_record(self):
        import dataclasses
        parsed = self._parsed()
        assert parsed.tenant == DEFAULT_TENANT
        tagged = dataclasses.replace(
            parsed, record=dataclasses.replace(parsed.record, tenant="acme"))
        assert tagged.tenant == "acme"


class TestTemplateOf:
    def test_marks_variable_positions(self):
        template, variables = template_of("Sending 138 bytes", {1})
        assert template == f"Sending {WILDCARD} bytes"
        assert variables == ("138",)

    def test_no_variables(self):
        template, variables = template_of("fixed message", set())
        assert template == "fixed message"
        assert variables == ()

    def test_all_variables(self):
        template, variables = template_of("a b", {0, 1})
        assert template == f"{WILDCARD} {WILDCARD}"
        assert variables == ("a", "b")
