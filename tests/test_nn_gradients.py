"""Gradient correctness: analytical vs central finite differences.

These are the load-bearing tests for the numpy neural substrate — if
backpropagation is right here, the detectors above it train correctly.
Hypothesis drives the shapes and inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    AdditiveAttention,
    BiLstm,
    Dense,
    Lstm,
    mse_loss,
    softmax_cross_entropy,
)
from repro.nn.losses import binary_cross_entropy_with_logits


# Central differences carry two error terms: O(eps^2) truncation and
# O(machine_eps * |loss| / eps) roundoff from the subtraction of two
# nearly-equal loss values.  They balance at eps ~ cbrt(machine_eps)
# (~6e-6 for float64), the textbook optimal step — 1e-6 sat below it
# and let roundoff dominate.
_EPSILON = float(np.finfo(np.float64).eps) ** (1.0 / 3.0)

#: Roundoff floor of one central difference with an O(1) loss:
#: machine_eps * |loss| / eps ≈ 2.2e-16 / 6e-6 ≈ 3.7e-11, padded ~25x
#: for loss values above 1 and unlucky cancellation.  Gradient entries
#: at or below this magnitude are numerically indistinguishable from
#: zero by finite differences, so no *relative* tolerance can judge
#: them — the comparison needs an absolute floor alongside the
#: relative term (the classic ``atol + rtol * scale`` form).
_NOISE_FLOOR = 1e-9


def numeric_gradient(function, parameter, epsilon=_EPSILON):
    """Central finite differences over a Parameter's value."""
    grad = np.zeros_like(parameter.value)
    flat_value = parameter.value.reshape(-1)
    flat_grad = grad.reshape(-1)
    for index in range(flat_value.size):
        original = flat_value[index]
        flat_value[index] = original + epsilon
        upper = function()
        flat_value[index] = original - epsilon
        lower = function()
        flat_value[index] = original
        flat_grad[index] = (upper - lower) / (2.0 * epsilon)
    return grad


def assert_gradients_match(parameters, function, tolerance=1e-5):
    for parameter in parameters:
        numeric = numeric_gradient(function, parameter)
        scale = max(np.abs(numeric).max(), 1e-8)
        error = np.abs(numeric - parameter.grad).max()
        # atol + rtol*scale: the absolute term absorbs the finite-
        # difference roundoff floor on parameters whose true gradients
        # are tiny (an LSTM's early-step recurrent weights after two
        # sigmoid saturations can sit at ~1e-6, where 1e-6-epsilon
        # central differences are only ~1.5e-5-accurate *relatively*
        # while the analytic gradient is exact — verified by an
        # epsilon sweep converging onto the analytic value).
        assert error < tolerance * scale + _NOISE_FLOOR, (
            f"{parameter.name}: abs error {error:.2e} vs "
            f"tol {tolerance * scale + _NOISE_FLOOR:.2e}"
        )


small_dims = st.integers(min_value=1, max_value=4)


class TestDenseGradients:
    @given(batch=small_dims, fan_in=small_dims, fan_out=small_dims,
           seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_dense_with_mse(self, batch, fan_in, fan_out, seed):
        rng = np.random.default_rng(seed)
        layer = Dense(fan_in, fan_out, seed=seed)
        x = rng.normal(size=(batch, fan_in))
        target = rng.normal(size=(batch, fan_out))

        def loss():
            predictions = layer.forward(x)
            value, _ = mse_loss(predictions, target)
            return value

        layer.zero_grad()
        predictions = layer.forward(x)
        _, grad = mse_loss(predictions, target)
        layer.backward(grad)
        assert_gradients_match(layer.parameters(), loss)

    def test_dense_input_gradient(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, seed=0)
        x = rng.normal(size=(2, 3))
        target = rng.normal(size=(2, 2))
        layer.zero_grad()
        predictions = layer.forward(x)
        _, grad = mse_loss(predictions, target)
        grad_x = layer.backward(grad)

        numeric = np.zeros_like(x)
        epsilon = 1e-6
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                x[i, j] += epsilon
                up, _ = mse_loss(layer.forward(x), target)
                x[i, j] -= 2 * epsilon
                down, _ = mse_loss(layer.forward(x), target)
                x[i, j] += epsilon
                numeric[i, j] = (up - down) / (2 * epsilon)
        assert np.abs(numeric - grad_x).max() < 1e-6


class TestLstmGradients:
    @given(batch=small_dims, steps=st.integers(1, 5), features=small_dims,
           hidden=small_dims, seed=st.integers(0, 100))
    @settings(max_examples=8, deadline=None)
    def test_lstm_last_hidden_cross_entropy(self, batch, steps, features,
                                            hidden, seed):
        rng = np.random.default_rng(seed)
        lstm = Lstm(features, hidden, seed=seed)
        head = Dense(hidden, 3, seed=seed + 1)
        x = rng.normal(size=(batch, steps, features))
        y = rng.integers(0, 3, size=batch)

        def loss():
            logits = head.forward(lstm.last_hidden(x))
            value, _, _ = softmax_cross_entropy(logits, y)
            return value

        lstm.zero_grad()
        head.zero_grad()
        logits = head.forward(lstm.last_hidden(x))
        _, grad, _ = softmax_cross_entropy(logits, y)
        lstm.backward_last(head.backward(grad))
        assert_gradients_match(lstm.parameters() + head.parameters(), loss)

    def test_lstm_all_steps_gradient(self):
        rng = np.random.default_rng(1)
        lstm = Lstm(2, 3, seed=1)
        x = rng.normal(size=(2, 4, 2))
        target = rng.normal(size=(2, 4, 3))

        def loss():
            value, _ = mse_loss(lstm.forward(x), target)
            return value

        lstm.zero_grad()
        outputs = lstm.forward(x)
        _, grad = mse_loss(outputs, target)
        lstm.backward(grad)
        assert_gradients_match(lstm.parameters(), loss)

    def test_lstm_input_gradient(self):
        rng = np.random.default_rng(2)
        lstm = Lstm(2, 2, seed=2)
        x = rng.normal(size=(1, 3, 2))
        target = rng.normal(size=(1, 3, 2))
        lstm.zero_grad()
        outputs = lstm.forward(x)
        _, grad = mse_loss(outputs, target)
        grad_x = lstm.backward(grad)

        numeric = np.zeros_like(x)
        epsilon = 1e-6
        flat = x.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for index in range(flat.size):
            original = flat[index]
            flat[index] = original + epsilon
            up, _ = mse_loss(lstm.forward(x), target)
            flat[index] = original - epsilon
            down, _ = mse_loss(lstm.forward(x), target)
            flat[index] = original
            numeric_flat[index] = (up - down) / (2 * epsilon)
        assert np.abs(numeric - grad_x).max() < 1e-6


class TestBiLstmAttentionGradients:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=5, deadline=None)
    def test_full_logrobust_stack(self, seed):
        rng = np.random.default_rng(seed)
        bilstm = BiLstm(3, 2, seed=seed)
        attention = AdditiveAttention(4, 3, seed=seed + 10)
        head = Dense(4, 1, seed=seed + 20)
        x = rng.normal(size=(2, 5, 3))
        y = np.array([1.0, 0.0])

        def loss():
            states = bilstm.forward(x)
            context = attention.forward(states)
            logits = head.forward(context)[:, 0]
            value, _, _ = binary_cross_entropy_with_logits(logits, y)
            return value

        for module in (bilstm, attention, head):
            module.zero_grad()
        states = bilstm.forward(x)
        context = attention.forward(states)
        logits = head.forward(context)[:, 0]
        _, grad, _ = binary_cross_entropy_with_logits(logits, y)
        grad_context = head.backward(grad[:, None])
        grad_states = attention.backward(grad_context)
        bilstm.backward(grad_states)
        assert_gradients_match(
            bilstm.parameters() + attention.parameters() + head.parameters(),
            loss,
            tolerance=1e-4,
        )


class TestEmbeddingGradients:
    def test_embedding_through_lstm(self):
        from repro.nn import Embedding

        rng = np.random.default_rng(3)
        embedding = Embedding(5, 3, seed=3)
        lstm = Lstm(3, 2, seed=4)
        head = Dense(2, 4, seed=5)
        ids = rng.integers(0, 5, size=(2, 4))
        y = rng.integers(0, 4, size=2)

        def loss():
            hidden = lstm.last_hidden(embedding.forward(ids))
            value, _, _ = softmax_cross_entropy(head.forward(hidden), y)
            return value

        for module in (embedding, lstm, head):
            module.zero_grad()
        hidden = lstm.last_hidden(embedding.forward(ids))
        _, grad, _ = softmax_cross_entropy(head.forward(hidden), y)
        grad_embedded = lstm.backward_last(head.backward(grad))
        embedding.backward(grad_embedded)
        assert_gradients_match(
            embedding.parameters() + lstm.parameters() + head.parameters(),
            loss,
        )
