"""Tests for the experiment harness and table rendering."""

import pytest

from repro.eval import (
    DetectionExperiment,
    Table,
    evaluate_detector,
    fit_and_score,
    render_table,
)
from repro.detection import InvariantMiningDetector


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 0.5)
        table.add_row("b", 12)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "== demo =="
        assert "name" in lines[1] and "value" in lines[1]
        assert "0.500" in rendered  # floats formatted to 3 places
        assert "12" in rendered

    def test_row_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row("only-one")

    def test_render_table_function(self):
        rendered = render_table("t", ["c"], [["x"]])
        assert "== t ==" in rendered
        assert "x" in rendered


class TestDetectionExperiment:
    def test_anomaly_free_training_split(self, hdfs_small):
        experiment = DetectionExperiment.from_dataset(
            hdfs_small, anomaly_free_training=True, seed=3
        )
        assert not any(experiment.train_labels)
        assert any(experiment.test_labels)
        assert len(experiment.test_sessions) == len(experiment.test_labels)
        assert len(experiment.test_session_ids) == len(experiment.test_labels)

    def test_evaluate_detector_produces_report(self, hdfs_small):
        experiment = DetectionExperiment.from_dataset(hdfs_small, seed=3)
        report = evaluate_detector(InvariantMiningDetector(), experiment)
        assert report.recall > 0.0
        assert report.precision > 0.5

    def test_fit_and_score_one_call(self, hdfs_small):
        report = fit_and_score(InvariantMiningDetector(), hdfs_small, seed=3)
        assert 0.0 <= report.f1 <= 1.0
