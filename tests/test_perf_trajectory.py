"""The perf-trajectory ledger's contracts.

Append-only JSONL with a schema both the writer and reader enforce;
the diff gates each bench's latest entry against the *median of its
own history*, per-metric, with explicit tolerance bands — higher-is-
better and lower-is-better metrics both, smoke and full histories
never mixed, unknown metrics informational.  ``run_diff`` exits
non-zero exactly when something regressed, and the built-in self-test
proves the gate can fire."""

import io
import json
import os

import pytest

from repro.perf.trajectory import (
    POLICY,
    TrajectoryError,
    append_entry,
    diff_trajectory,
    load_entries,
    render_diff,
    run_diff,
    self_test,
    validate_entry,
)


def _entry(bench="bench_a", smoke=False, sha="abc1234", **metrics):
    return {"bench": bench, "sha": sha, "smoke": smoke,
            "metrics": metrics or {"throughput_ratio": 1.0}}


class TestLedgerIO:
    def test_append_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "nested" / "TRAJECTORY.jsonl")
        first = append_entry(path, "bench_a", {"speedup": 2.5},
                             smoke=False, sha="f00")
        append_entry(path, "bench_b", {"throughput_ratio": 0.99},
                     smoke=True, sha="f00")
        entries = load_entries(path)
        assert entries[0] == first
        assert [entry["bench"] for entry in entries] == \
            ["bench_a", "bench_b"]
        # Append-only: a second run adds a line, never rewrites.
        append_entry(path, "bench_a", {"speedup": 2.4},
                     smoke=False, sha="f01")
        assert len(load_entries(path)) == 3

    def test_append_stamps_a_git_sha_by_default(self, tmp_path):
        path = str(tmp_path / "TRAJECTORY.jsonl")
        entry = append_entry(path, "bench_a", {"speedup": 1.0},
                             smoke=False)
        assert isinstance(entry["sha"], str) and entry["sha"]

    def test_blank_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "TRAJECTORY.jsonl"
        path.write_text(json.dumps(_entry()) + "\n\n" +
                        json.dumps(_entry(sha="def")) + "\n")
        assert len(load_entries(str(path))) == 2

    @pytest.mark.parametrize("corrupt", [
        "not json at all",
        json.dumps({"sha": "x", "smoke": False, "metrics": {"m": 1}}),
        json.dumps({"bench": "", "sha": "x", "smoke": False,
                    "metrics": {"m": 1}}),
        json.dumps({"bench": "b", "sha": 1, "smoke": False,
                    "metrics": {"m": 1}}),
        json.dumps({"bench": "b", "sha": "x", "smoke": "no",
                    "metrics": {"m": 1}}),
        json.dumps({"bench": "b", "sha": "x", "smoke": False,
                    "metrics": {}}),
        json.dumps({"bench": "b", "sha": "x", "smoke": False,
                    "metrics": {"m": "fast"}}),
        json.dumps({"bench": "b", "sha": "x", "smoke": False,
                    "metrics": {"m": True}}),
    ])
    def test_corrupt_lines_fail_naming_the_line(self, tmp_path, corrupt):
        path = tmp_path / "TRAJECTORY.jsonl"
        path.write_text(json.dumps(_entry()) + "\n" + corrupt + "\n")
        with pytest.raises(TrajectoryError, match=":2"):
            load_entries(str(path))

    def test_validate_rejects_at_append_time(self, tmp_path):
        path = str(tmp_path / "TRAJECTORY.jsonl")
        with pytest.raises(TrajectoryError):
            append_entry(path, "bench_a", {"m": "fast"}, smoke=False)
        assert not os.path.exists(path)  # nothing half-written

    def test_validate_entry_returns_the_entry(self):
        entry = _entry()
        assert validate_entry(entry) is entry


class TestDiff:
    def test_latest_gates_against_median_of_prior(self):
        entries = [_entry(throughput_ratio=ratio)
                   for ratio in (1.00, 0.98, 1.02, 0.50)]
        rows = diff_trajectory(entries)
        (row,) = [r for r in rows if r["metric"] == "throughput_ratio"]
        assert row["status"] == "regressed"
        assert row["baseline"] == pytest.approx(1.00)  # median of prior

    def test_within_tolerance_is_ok(self):
        direction, tolerance = POLICY["throughput_ratio"]
        assert direction == "higher"
        entries = [_entry(throughput_ratio=1.0),
                   _entry(throughput_ratio=1.0 - tolerance + 0.01)]
        (row,) = diff_trajectory(entries)
        assert row["status"] == "ok"

    def test_lower_is_better_metrics_gate_the_other_way(self):
        entries = [_entry(quiet_noisy_ratio=0.10),
                   _entry(quiet_noisy_ratio=0.30)]
        (row,) = diff_trajectory(entries)
        assert row["status"] == "regressed"
        improving = [_entry(quiet_noisy_ratio=0.10),
                     _entry(quiet_noisy_ratio=0.05)]
        (row,) = diff_trajectory(improving)
        assert row["status"] == "ok"

    def test_first_run_and_unknown_metrics_never_gate(self):
        entries = [_entry(throughput_ratio=0.1, records_per_s=5.0)]
        rows = {row["metric"]: row for row in diff_trajectory(entries)}
        assert rows["throughput_ratio"]["status"] == "new"
        assert rows["records_per_s"]["status"] == "info"

    def test_smoke_and_full_histories_stay_separate(self):
        # A smoke ratio of 0.5 must not drag down the full baseline.
        entries = [_entry(smoke=True, throughput_ratio=0.50),
                   _entry(smoke=False, throughput_ratio=1.00),
                   _entry(smoke=False, throughput_ratio=0.99)]
        rows = diff_trajectory(entries)
        full = [row for row in rows if not row["smoke"]]
        assert [row["status"] for row in full] == ["ok"]

    def test_benches_are_independent(self):
        entries = [_entry(bench="bench_a", throughput_ratio=1.0),
                   _entry(bench="bench_b", throughput_ratio=0.2),
                   _entry(bench="bench_a", throughput_ratio=0.99)]
        by_bench = {(row["bench"], row["status"])
                    for row in diff_trajectory(entries)}
        assert ("bench_a", "ok") in by_bench
        assert ("bench_b", "new") in by_bench


class TestRunDiff:
    def test_missing_ledger_is_not_a_failure(self, tmp_path, capsys=None):
        out = io.StringIO()
        assert run_diff(str(tmp_path / "absent.jsonl"), out=out) == 0
        assert "does not exist" in out.getvalue()

    def test_exit_codes_and_report(self, tmp_path):
        path = str(tmp_path / "TRAJECTORY.jsonl")
        for ratio in (1.00, 0.99):
            append_entry(path, "bench_a", {"throughput_ratio": ratio},
                         smoke=False, sha="aaa")
        out = io.StringIO()
        assert run_diff(path, out=out) == 0
        assert "0 regressed" in out.getvalue()
        append_entry(path, "bench_a", {"throughput_ratio": 0.40},
                     smoke=False, sha="bbb")
        out = io.StringIO()
        assert run_diff(path, out=out) == 1
        report = out.getvalue()
        assert "regressed" in report
        assert "bench_a" in report

    def test_render_handles_an_empty_ledger(self):
        assert "no entries" in render_diff([])

    def test_self_test_proves_the_gate_fires(self):
        out = io.StringIO()
        assert self_test(out=out) == 0
        assert "ok" in out.getvalue()

    def test_cli_wrapper_shares_the_code_path(self, tmp_path):
        from repro.cli import main
        path = str(tmp_path / "TRAJECTORY.jsonl")
        for ratio in (1.00, 0.40):
            append_entry(path, "bench_a", {"throughput_ratio": ratio},
                         smoke=False, sha="ccc")
        assert main(["perf", "--trajectory", path]) == 1
        assert main(["perf", "--self-test"]) == 0
