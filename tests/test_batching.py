"""Parity regressions for the batched fast path.

The batching contract is exactness, not approximation: the template
cache, ``Parser.parse_batch``, ``Pipeline.process``, the streaming
micro-batch path, and sharded micro-batch draining must all produce
byte-identical templates and alerts, in the same order, as the
one-at-a-time path.  Every test here runs both
paths on the same stream and compares full structured output.
"""

from __future__ import annotations

import dataclasses

from conftest import make_record
from repro.api import Pipeline, PipelineSpec
from repro.detection.deeplog import DeepLogDetector
from repro.detection.invariants import InvariantMiningDetector
from repro.detection.keyword import KeywordMatchDetector
from repro.parsing import DistributedDrain, DrainParser, default_masker


def _drain(cache: bool) -> DrainParser:
    return DrainParser(masker=default_masker(),
                       cache_size=65536 if cache else 0)


def _alert_shape(alert):
    """A fully structural view of an alert, for exact comparison."""
    return (
        alert.report.report_id,
        alert.report.session_id,
        tuple(
            (event.template_id, event.template, event.variables,
             event.record.message)
            for event in alert.report.events
        ),
        alert.report.detection.anomalous,
        round(alert.report.detection.score, 12),
        alert.pool,
        alert.criticality,
        round(alert.confidence, 12),
    )


class TestParserBatchParity:
    def test_parse_batch_matches_per_record_loop(self, bgl_small, hdfs_small):
        for dataset in (bgl_small, hdfs_small):
            reference = _drain(cache=False)
            batched = _drain(cache=True)
            expected = [reference.parse_record(r) for r in dataset.records]
            actual = batched.parse_batch(dataset.records)
            assert actual == expected
            assert batched.store.templates() == reference.store.templates()
            assert [t.count for t in batched.store] == [
                t.count for t in reference.store
            ]

    def test_cached_per_record_matches_uncached(self, hdfs_small):
        cached = _drain(cache=True)
        uncached = _drain(cache=False)
        for record in hdfs_small.records:
            assert cached.parse_record(record) == uncached.parse_record(record)
        assert cached.store.templates() == uncached.store.templates()
        assert cached.cache.total_hits > 0, \
            "a repetitive stream must hit the cache"

    def test_parse_batch_chunking_is_invariant(self, hdfs_small):
        whole = _drain(cache=True)
        chunked = _drain(cache=True)
        records = hdfs_small.records
        expected = whole.parse_batch(records)
        actual = []
        for start in range(0, len(records), 37):
            actual.extend(chunked.parse_batch(records[start:start + 37]))
        assert actual == expected

    def test_distributed_drain_parse_batch_parity(self, cloud_small):
        reference = DistributedDrain(shards=3, masker=default_masker(),
                                     cache_size=0)
        batched = DistributedDrain(shards=3, masker=default_masker())
        expected = reference.parse_all(cloud_small.records)
        actual = batched.parse_batch(cloud_small.records)
        assert actual == expected
        assert batched.shard_loads == reference.shard_loads
        assert batched.global_templates() == reference.global_templates()
        assert batched.template_count == reference.template_count


class TestPipelineBatchParity:
    def _trained_system(self, records) -> Pipeline:
        system = Pipeline(detector=DeepLogDetector(epochs=4, seed=0))
        system.fit(records)
        return system

    def test_process_batch_matches_run_all(self, hdfs_small):
        records = hdfs_small.records
        cut = len(records) * 6 // 10
        per_record = self._trained_system(records[:cut])
        batched = self._trained_system(records[:cut])

        expected = per_record.run_all(records[cut:])
        actual = batched.process_batch(records[cut:])
        assert expected, "the HDFS fixture must produce alerts"
        assert [_alert_shape(a) for a in actual] == [
            _alert_shape(a) for a in expected
        ]
        assert batched.stats().records_parsed == \
            per_record.stats().records_parsed
        assert batched.stats().windows_scored == \
            per_record.stats().windows_scored
        # Inference paths keep the template stat current (templates can
        # be discovered online, after training).
        assert batched.stats().templates_discovered == \
            batched.parser.template_count
        assert per_record.stats().templates_discovered == \
            per_record.parser.template_count

    def test_process_batch_micro_batches_are_invariant(self, hdfs_small):
        records = hdfs_small.records
        cut = len(records) * 6 // 10
        one_shot = self._trained_system(records[:cut])
        micro = self._trained_system(records[:cut])
        expected = one_shot.process_batch(records[cut:])
        actual = micro.process_batch(records[cut:], batch_size=16)
        assert [_alert_shape(a) for a in actual] == [
            _alert_shape(a) for a in expected
        ]

    def test_streaming_process_batch_matches_process_loop(self, cloud_small):
        records = cloud_small.records
        cut = len(records) * 6 // 10

        def live(trained: Pipeline) -> Pipeline:
            return trained.stream(session_timeout=20.0,
                                  max_session_events=64)

        loop = live(self._trained_system(records[:cut]))
        batch = live(self._trained_system(records[:cut]))

        expected = []
        for record in records[cut:]:
            expected.extend(loop.process_record(record))
        expected.extend(loop.flush())

        actual = []
        for start in range(0, len(records) - cut, 50):
            actual.extend(batch.process_batch(records[cut:][start:start + 50]))
        actual.extend(batch.flush())

        assert [_alert_shape(a) for a in actual] == [
            _alert_shape(a) for a in expected
        ]

    def test_sharded_micro_batches_match_per_record(self, cloud_small):
        records = cloud_small.records
        cut = len(records) * 6 // 10

        def build(batch_size: int) -> Pipeline:
            return Pipeline(
                PipelineSpec(shards=3, detector_shards=2,
                             batch_size=batch_size),
                detector_factory=lambda shard: InvariantMiningDetector(),
            ).fit(records[:cut])

        per_record = build(batch_size=1)
        batched = build(batch_size=256)
        expected = per_record.run_all(records[cut:])
        actual = batched.run_all(records[cut:])
        assert [_alert_shape(a) for a in actual] == [
            _alert_shape(a) for a in expected
        ]
        assert batched.parser.shard_loads == per_record.parser.shard_loads


class TestOnlineTemplateStat:
    def test_templates_discovered_tracks_online_discovery(self, hdfs_small):
        records = hdfs_small.records
        cut = len(records) * 6 // 10
        system = Pipeline(detector=InvariantMiningDetector())
        system.fit(records[:cut])
        trained_count = system.stats().templates_discovered
        novel = [
            make_record(f"totally new subsystem event kind {kind}",
                        session_id=f"novel-{kind}", sequence=kind)
            for kind in range(6)
            for _ in range(3)
        ]
        system.process(records[cut:] + novel)
        assert system.stats().templates_discovered == \
            system.parser.template_count
        assert system.stats().templates_discovered > trained_count

    def test_run_refreshes_template_stat(self, hdfs_small):
        records = hdfs_small.records
        cut = len(records) * 6 // 10
        system = Pipeline(detector=InvariantMiningDetector())
        system.fit(records[:cut])
        system.run_all(records[cut:])
        assert system.stats().templates_discovered == \
            system.parser.template_count

    def test_streaming_refreshes_template_stat(self, hdfs_small):
        records = hdfs_small.records
        cut = len(records) * 6 // 10
        system = Pipeline(detector=InvariantMiningDetector())
        system.fit(records[:cut])
        live = system.stream(session_timeout=1e9)
        live.process_record(
            make_record("never seen statement shape", sequence=1))
        assert system.stats().templates_discovered == \
            system.parser.template_count


class TestUnsessionedFallbackIds:
    """Batch and streaming must agree on ids for records without a
    session id: both paths now derive ``window-{windows_scored}`` from
    the shared scoring routine."""

    def _sessionless(self, records):
        return [dataclasses.replace(record, session_id=None)
                for record in records]

    def _trained(self, train_records, window: int) -> Pipeline:
        spec = PipelineSpec(windowing="sliding", window_size=window)
        system = Pipeline(spec, detector=KeywordMatchDetector())
        system.fit(train_records)
        return system

    def test_batch_and_streaming_agree_on_fallback_ids(self, bgl_small):
        # One source, no session ids, tumbling windows of exactly
        # ``window`` events: the streaming sessionizer (event cap =
        # window, unreachable timeout) closes precisely the windows the
        # batch path scores, so ids must match one for one.
        window = 40
        records = self._sessionless(bgl_small.records)
        cut = len(records) // 2
        batch = self._trained(records[:cut], window)
        expected = batch.run_all(records[cut:])
        assert expected, "the BGL alert episodes must produce alerts"
        assert all(a.report.session_id.startswith("window-")
                   for a in expected)

        streaming_host = self._trained(records[:cut], window)
        live = streaming_host.stream(session_timeout=1e9,
                                     max_session_events=window)
        actual = []
        for record in records[cut:]:
            actual.extend(live.process_record(record))
        actual.extend(live.flush())
        assert [_alert_shape(a) for a in actual] == [
            _alert_shape(a) for a in expected
        ]

    def test_fallback_ids_are_dense_across_entry_points(self, bgl_small):
        # Interleaving run and streaming on one system keeps drawing
        # from the same windows_scored sequence — no id collisions, no
        # separate burst numbering.
        window = 40
        records = self._sessionless(bgl_small.records)
        cut = len(records) // 2
        system = self._trained(records[:cut], window)
        first = system.run_all(records[cut:cut + 10 * window])
        live = system.stream(session_timeout=1e9,
                             max_session_events=window)
        second = []
        for record in records[cut + 10 * window:]:
            second.extend(live.process_record(record))
        second.extend(live.flush())
        ids = [a.report.session_id for a in first + second]
        assert len(ids) == len(set(ids)), "fallback ids must never collide"
        assert all(identifier.startswith("window-") for identifier in ids)


class TestCliBatchFlag:
    def test_pipeline_output_is_batch_size_invariant(self, tmp_path, capsys):
        from repro.cli import main

        history = tmp_path / "history.log"
        live = tmp_path / "live.log"
        main(["generate", "--dataset", "cloud", "--sessions", "150",
              "--anomaly-rate", "0.0", "--seed", "1",
              "--output", str(history)])
        main(["generate", "--dataset", "cloud", "--sessions", "60",
              "--anomaly-rate", "0.1", "--seed", "2",
              "--output", str(live)])
        outputs = []
        for batch_size in ("0", "64"):
            capsys.readouterr()
            exit_code = main([
                "pipeline", "--history", str(history), "--live", str(live),
                "--batch-size", batch_size,
            ])
            assert exit_code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "parsed" in outputs[0]

    def test_parse_output_is_batch_size_invariant(self, tmp_path, capsys):
        from repro.cli import main

        corpus = tmp_path / "corpus.log"
        main(["generate", "--dataset", "hdfs", "--sessions", "120",
              "--seed", "4", "--output", str(corpus)])
        outputs = []
        for batch_size in ("0", "256"):
            capsys.readouterr()
            exit_code = main([
                "parse", "--input", str(corpus), "--parser", "drain",
                "--masking", "--batch-size", batch_size,
            ])
            assert exit_code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "templates" in outputs[0]


class TestBatchBookkeeping:
    def test_cache_hit_replays_match_counts(self):
        parser = DrainParser()
        records = [make_record("job started on node alpha", sequence=i)
                   for i in range(5)]
        parser.parse_batch(records)
        assert parser.store[0].count == 5

    def test_payloads_are_not_aliased_across_memo_hits(self):
        parser = DrainParser(extract_structured=True)
        records = [
            make_record('upload done {"bytes": 5}', sequence=i)
            for i in range(3)
        ]
        parsed = parser.parse_batch(records)
        payloads = [event.payload for event in parsed]
        assert payloads[0] == payloads[1] == payloads[2]
        payloads[0]["bytes"] = -1
        assert payloads[1] != payloads[0]
