"""Property-based tests for the exact-match template cache.

The cache's contract is invisibility: a DrainParser with the cache on
must emit exactly the stream a cache-less DrainParser emits, for any
message stream — including adversarial ones where templates refine
(gain wildcards) or new clusters later outscore the one a message was
cached against.  Hypothesis drives random repetitive streams at the
pair; deterministic tests pin down the two invalidation triggers.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.logs.record import LogRecord, Severity
from repro.parsing.base import TemplateCache
from repro.parsing.drain import DrainParser

# Tiny alphabets force token collisions, shared leaves, merges, and
# refinements — the regimes where a naive memo would go stale.
_word = st.sampled_from(["alpha", "beta", "gamma", "delta", "run", "x1", "7"])
_message = st.lists(_word, min_size=1, max_size=5).map(" ".join)
# Streams repeat a small vocabulary of messages, like real logs do.
_stream = st.lists(_message, min_size=1, max_size=12).flatmap(
    lambda pool: st.lists(st.sampled_from(pool), min_size=1, max_size=60)
)


def _record(message: str, sequence: int = 0) -> LogRecord:
    return LogRecord(timestamp=float(sequence), source="prop",
                     severity=Severity.INFO, message=message,
                     sequence=sequence)


def _pair() -> tuple[DrainParser, DrainParser]:
    """A cached parser and its cache-less reference twin."""
    return DrainParser(cache_size=64), DrainParser(cache_size=0)


class TestCacheTransparency:
    @given(_stream)
    @settings(max_examples=200, deadline=None)
    def test_cached_parser_is_indistinguishable(self, messages):
        cached, reference = _pair()
        for sequence, message in enumerate(messages):
            record = _record(message, sequence)
            assert cached.parse_record(record) == reference.parse_record(record)
        assert cached.store.templates() == reference.store.templates()
        assert [t.count for t in cached.store] == [
            t.count for t in reference.store
        ]

    @given(_stream)
    @settings(max_examples=200, deadline=None)
    def test_parse_batch_is_indistinguishable(self, messages):
        cached, reference = _pair()
        records = [_record(m, i) for i, m in enumerate(messages)]
        assert cached.parse_batch(records) == [
            reference.parse_record(r) for r in records
        ]

    @given(_message)
    @settings(max_examples=100, deadline=None)
    def test_hit_never_changes_the_assigned_template(self, message):
        parser = DrainParser(cache_size=64)
        first = parser.parse_record(_record(message, 0))
        second = parser.parse_record(_record(message, 1))
        assert parser.cache.total_hits >= 1
        assert second.template_id == first.template_id
        assert second.template == first.template
        assert second.variables == first.variables


class TestCacheInvalidation:
    def test_refinement_invalidates_cached_entries(self):
        cached, reference = _pair()

        def feed(message, sequence):
            record = _record(message, sequence)
            return cached.parse_record(record), reference.parse_record(record)

        feed("a b c d e", 0)          # creates the cluster
        feed("a b c d e", 1)          # verbatim repeat: line-tier hit
        assert cached.cache.total_hits == 1
        # Refines the cluster to "a b <*> <*> <*>" (similarity 2/5
        # meets the 0.4 threshold) and must bump the generation.
        feed("a b x y z", 2)
        got, want = feed("a b c d e", 3)
        assert cached.cache.invalidations >= 1
        assert got == want
        assert got.template == "a b <*> <*> <*>"
        assert got.variables == ("c", "d", "e")

    def test_new_cluster_invalidates_cached_entries(self):
        # A later-created cluster can outscore the cached winner.
        # Digit-bearing tokens route through the wildcard child, so all
        # of these share one leaf.  After C generalizes to
        # "7 7 <*> <*> <*>", the repeat "7 7 x y z" scores 0.4 against
        # C but 0.6 against the newer fully-static "8 8 x y z" cluster
        # — serving the stale entry would assign the wrong template.
        cached, reference = _pair()

        def feed(message, sequence):
            record = _record(message, sequence)
            got, want = (cached.parse_record(record),
                         reference.parse_record(record))
            assert got == want
            return got

        feed("7 7 a b c", 0)          # creates C
        hit = feed("7 7 x y z", 1)    # refines C to "7 7 <*> <*> <*>"
        feed("7 7 x y z", 2)          # cache hit against refined C
        assert cached.cache.total_hits >= 1
        newcomer = feed("8 8 x y z", 3)  # new cluster at the same leaf
        steal = feed("7 7 x y z", 4)
        assert newcomer.template_id != hit.template_id
        assert steal.template_id == newcomer.template_id
        assert cached.cache.invalidations >= 1

    def test_seeding_messages_do_not_hit_stale_entries(self):
        # The very message that creates a template is cached at the
        # post-creation generation, so its repeats hit immediately.
        parser = DrainParser(cache_size=64)
        parser.parse_record(_record("fresh template line", 0))
        parser.parse_record(_record("fresh template line", 1))
        assert parser.cache.line_hits == 1
        assert parser.cache.invalidations == 0


class TestTemplateCacheUnit:
    def test_roundtrip_and_stale_generation(self):
        from repro.parsing.base import MinedTemplate

        cache = TemplateCache(capacity=4)
        template = MinedTemplate(template_id=0, tokens=["a", "<*>"])
        cache.put("a 1", 7, template, ["a", "1"], (1,))
        assert cache.get("a 1", 7) == (template, ["a", "1"], (1,))
        assert cache.hits == 1
        assert cache.get("a 1", 8) is None
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_lru_eviction(self):
        from repro.parsing.base import MinedTemplate

        cache = TemplateCache(capacity=2)
        templates = [MinedTemplate(template_id=i, tokens=["t", str(i)])
                     for i in range(3)]
        cache.put("m0", 0, templates[0], ["m0"], ())
        cache.put("m1", 0, templates[1], ["m1"], ())
        assert cache.get("m0", 0) is not None   # refresh m0
        cache.put("m2", 0, templates[2], ["m2"], ())
        assert cache.get("m1", 0) is None       # m1 was least recent
        assert cache.get("m0", 0) is not None
        assert cache.get("m2", 0) is not None

    def test_capacity_validation(self):
        import pytest

        with pytest.raises(ValueError):
            TemplateCache(capacity=0)
