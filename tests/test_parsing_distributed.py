"""Tests for the distributed Drain (paper §IV planned contribution)."""

import pytest

from repro.parsing import DistributedDrain, DrainParser, default_masker

from conftest import make_record


def _multi_source_records(count_per_source: int = 40):
    records = []
    clock = 0.0
    for index in range(count_per_source):
        for source in ("api", "net", "disk"):
            clock += 0.01
            records.append(
                make_record(
                    f"{source} event {index} processed",
                    timestamp=clock,
                    source=source,
                    sequence=len(records),
                )
            )
    return records


class TestRouting:
    def test_route_by_source_is_sticky(self):
        parser = DistributedDrain(shards=3, route_by="source")
        records = _multi_source_records()
        shard_of_source = {}
        for record in records:
            shard = parser.shard_for(record)
            previous = shard_of_source.setdefault(record.source, shard)
            assert previous == shard

    def test_route_by_token_uses_first_token(self):
        parser = DistributedDrain(shards=4, route_by="token")
        one = parser.shard_for(make_record("alpha x"))
        two = parser.shard_for(make_record("alpha y z"))
        assert one == two

    def test_invalid_configuration(self):
        with pytest.raises(ValueError, match="shards"):
            DistributedDrain(shards=0)
        with pytest.raises(ValueError, match="route_by"):
            DistributedDrain(route_by="round_robin")


class TestReconciliation:
    def test_global_ids_stable_per_template(self):
        parser = DistributedDrain(shards=3, route_by="source")
        parsed = parser.parse_all(_multi_source_records())
        ids_by_template = {}
        for event in parsed:
            ids_by_template.setdefault(event.template, set()).add(
                event.template_id
            )
        for template, ids in ids_by_template.items():
            assert len(ids) == 1, f"{template} got ids {ids}"

    def test_cross_shard_dedup(self):
        # Same statement from two sources on different shards must
        # share a global id once reconciled.
        records = []
        for index in range(30):
            for source in ("a", "b", "c", "d", "e"):
                records.append(
                    make_record(f"ping {index} ok", source=source,
                                timestamp=index)
                )
        parser = DistributedDrain(shards=4, route_by="source")
        parsed = parser.parse_all(records)
        ping_ids = {event.template_id for event in parsed[-10:]}
        assert len(ping_ids) == 1

    def test_single_shard_matches_plain_drain(self, hdfs_small):
        distributed = DistributedDrain(shards=1, masker=default_masker())
        plain = DrainParser(masker=default_masker())
        distributed_parsed = distributed.parse_all(hdfs_small.records)
        plain_parsed = plain.parse_all(hdfs_small.records)
        assert [event.template for event in distributed_parsed] == [
            event.template for event in plain_parsed
        ]

    def test_template_set_agreement_with_single_instance(self, hdfs_small):
        distributed = DistributedDrain(shards=4, route_by="token",
                                       masker=default_masker())
        plain = DrainParser(masker=default_masker())
        distributed.parse_all(hdfs_small.records)
        plain.parse_all(hdfs_small.records)
        sharded_templates = set(distributed.global_templates())
        plain_templates = set(plain.store.templates())
        jaccard = len(sharded_templates & plain_templates) / len(
            sharded_templates | plain_templates
        )
        assert jaccard >= 0.8, f"template agreement {jaccard:.2f}"


class TestLoadAccounting:
    def test_shard_loads_sum_to_records(self, hdfs_small):
        parser = DistributedDrain(shards=4, route_by="token",
                                  masker=default_masker())
        parser.parse_all(hdfs_small.records)
        assert sum(parser.shard_loads) == len(hdfs_small.records)

    def test_source_routing_balances_multi_source(self):
        parser = DistributedDrain(shards=3, route_by="source")
        parser.parse_all(_multi_source_records(100))
        loads = [load for load in parser.shard_loads if load > 0]
        assert len(loads) >= 2
