"""Unit tests for LogRobust-style instability injection."""

import pytest

from repro.logs.instability import InstabilityInjector, InstabilityKind

from conftest import make_record


def _records(count: int = 100):
    return [
        make_record(f"Sending {i} bytes to host", sequence=i, session_id="s")
        for i in range(count)
    ]


class TestValidation:
    def test_ratio_bounds(self):
        with pytest.raises(ValueError, match="ratio"):
            InstabilityInjector(ratio=1.5)
        with pytest.raises(ValueError, match="ratio"):
            InstabilityInjector(ratio=-0.1)

    def test_kinds_required(self):
        with pytest.raises(ValueError, match="kind"):
            InstabilityInjector(ratio=0.1, kinds=())


class TestZeroRatio:
    def test_identity(self):
        records = _records()
        output = list(InstabilityInjector(ratio=0.0).apply(records))
        assert output == records


class TestParsingError:
    def test_corrupts_token_boundaries(self):
        injector = InstabilityInjector(
            ratio=1.0, kinds=(InstabilityKind.PARSING_ERROR,), seed=1
        )
        output = list(injector.apply(_records(20)))
        assert len(output) == 20
        changed = [
            record for record in output
            if "unstable:parsing_error" in record.labels
        ]
        assert len(changed) == 20
        # Token counts moved by exactly one (merge or split).
        for record in changed:
            assert len(record.tokens) in (4, 6)  # original is 5 tokens


class TestStatementChange:
    def test_twists_statements(self):
        injector = InstabilityInjector(
            ratio=1.0, kinds=(InstabilityKind.STATEMENT_CHANGE,), seed=2
        )
        originals = _records(30)
        output = list(injector.apply(originals))
        assert len(output) == 30
        differing = sum(
            1
            for original, altered in zip(originals, output)
            if original.message != altered.message
        )
        assert differing == 30

    def test_preserves_anomaly_label(self):
        records = [
            make_record("failure detected here", labels=frozenset({"anomaly"}))
        ]
        injector = InstabilityInjector(
            ratio=1.0, kinds=(InstabilityKind.STATEMENT_CHANGE,), seed=0
        )
        output = list(injector.apply(records))
        assert output[0].is_anomalous


class TestNoise:
    def test_duplicates_or_swaps(self):
        injector = InstabilityInjector(
            ratio=1.0, kinds=(InstabilityKind.NOISE,), seed=3
        )
        originals = _records(40)
        output = list(injector.apply(originals))
        # Duplication grows the stream; swaps keep length.
        assert len(output) >= 40
        tagged = [r for r in output if "unstable:noise" in r.labels]
        assert tagged

    def test_multiset_of_messages_preserved_up_to_duplicates(self):
        injector = InstabilityInjector(
            ratio=1.0, kinds=(InstabilityKind.NOISE,), seed=3
        )
        originals = _records(40)
        output = list(injector.apply(originals))
        original_messages = {record.message for record in originals}
        assert {record.message for record in output} == original_messages


class TestRatioControl:
    @pytest.mark.parametrize("ratio", [0.05, 0.1, 0.2])
    def test_alteration_rate_tracks_ratio(self, ratio):
        # Content alterations track the ratio exactly; NOISE events tag
        # two records (duplicate pair / swapped pair), so the all-kinds
        # rate runs slightly above ratio — checked separately below.
        injector = InstabilityInjector(
            ratio=ratio,
            kinds=(InstabilityKind.PARSING_ERROR,
                   InstabilityKind.STATEMENT_CHANGE),
            seed=5,
        )
        output = list(injector.apply(_records(2000)))
        altered = sum(
            1 for record in output
            if any(label.startswith("unstable:") for label in record.labels)
        )
        observed = altered / len(output)
        assert abs(observed - ratio) < 0.03

    def test_all_kinds_rate_bounded_by_double_ratio(self):
        injector = InstabilityInjector(ratio=0.2, seed=5)
        output = list(injector.apply(_records(2000)))
        altered = sum(
            1 for record in output
            if any(label.startswith("unstable:") for label in record.labels)
        )
        observed = altered / len(output)
        assert 0.2 - 0.03 <= observed <= 2 * 0.2 + 0.03

    def test_deterministic(self):
        one = [r.message for r in InstabilityInjector(0.2, seed=9).apply(_records())]
        two = [r.message for r in InstabilityInjector(0.2, seed=9).apply(_records())]
        assert one == two


class TestSequenceApi:
    def test_applies_within_sessions(self):
        sessions = [_records(10), _records(10)]
        injector = InstabilityInjector(ratio=0.5, seed=4)
        output = list(injector.apply_to_sequences(sessions))
        assert len(output) == 2
        for altered in output:
            assert len(altered) >= 10
