"""Service-level tests: readers → merge → batcher → pipeline.

Pins the three core claims of the ingestion front-end:

* **exactness** — concurrently ingesting N sources produces byte-
  identical alerts to the offline ``LogStream`` path over the same
  corpus (the micro-batch boundaries and executor hops change
  wall-clock only);
* **back-pressure** — a slow consumer caps the records in flight at
  the credit budget, stalling fast readers instead of buffering
  without bound;
* **flow policies** — age-based flushing keeps trickle sources live,
  the watermark merge restores cross-source timestamp order, and the
  queue-depth signal on :class:`BatchHandoff` reports truthfully.
"""

import asyncio
import copy
import time

import pytest

from repro.api import Pipeline, PipelineSpec
from repro.core.config import IngestConfig
from repro.core.streaming import BatchHandoff
from repro.detection.keyword import KeywordMatchDetector
from repro.ingest import AsyncSourceAdapter, CheckpointStore, IngestService
from repro.logs.sources import ReplaySource
from repro.logs.stream import LogStream

from conftest import make_record


class RecordingPipeline:
    """A fake pipeline capturing exactly what reaches ``process_batch``."""

    def __init__(self, delay: float = 0.0):
        self.batches: list[list] = []
        self.flushed = False
        self.delay = delay

    def process_batch(self, records):
        if self.delay:
            time.sleep(self.delay)
        self.batches.append(list(records))
        return []

    def flush(self):
        self.flushed = True
        return []

    @property
    def records(self):
        return [record for batch in self.batches for record in batch]


def burst_records(source: str, sessions: int, *, start: float,
                  spacing: float = 0.01, gap: float = 120.0,
                  anomalous_every: int = 0):
    """Bursty per-source traffic: sessions separated by idle gaps."""
    records = []
    clock = start
    for session in range(sessions):
        messages = [
            f"request {session * 7 + index} handled in 12 ms"
            for index in range(6)
        ]
        if anomalous_every and session % anomalous_every == anomalous_every - 1:
            messages[3:3] = ["backend error timeout detected"] * 3
        for sequence, message in enumerate(messages):
            records.append(make_record(
                message, timestamp=round(clock, 6), source=source,
                sequence=sequence,
            ))
            clock += spacing
        clock += gap
    return records


def alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, alert.pool, alert.criticality)


def trained_base():
    history = (burst_records("svc-a", 6, start=0.0)
               + burst_records("svc-b", 6, start=0.003))
    history.sort(key=lambda record: record.timestamp)
    system = Pipeline(detector=KeywordMatchDetector())
    system.fit(history)
    return system


class TestOfflineParity:
    def test_concurrent_ingest_matches_logstream_path(self):
        base = trained_base()
        per_source = {
            name: burst_records(name, 5, start=10_000.0 + shift,
                                anomalous_every=2)
            for shift, name in ((0.0, "svc-a"), (0.002, "svc-b"),
                                (0.004, "svc-c"))
        }

        offline = copy.deepcopy(base).stream(session_timeout=30.0)
        stream = LogStream([ReplaySource(name, records)
                            for name, records in per_source.items()])
        expected = offline.process(list(stream)) + offline.flush()
        assert expected, "the corpus must produce alerts to compare"

        live = copy.deepcopy(base).stream(session_timeout=30.0)
        service = IngestService(
            [AsyncSourceAdapter(ReplaySource(name, records), yield_every=4)
             for name, records in per_source.items()],
            live,
            config=IngestConfig(batch_size=16, max_batch_age=5.0,
                                lateness=1_000.0),
        )
        actual = asyncio.run(service.run())
        assert [alert_key(alert) for alert in actual] == \
            [alert_key(alert) for alert in expected]
        assert service.merger.late == 0
        assert service.stats().records_processed == \
            sum(len(records) for records in per_source.values())

    def test_watermark_merge_restores_timestamp_order(self):
        pipeline = RecordingPipeline()
        sources = [
            AsyncSourceAdapter(ReplaySource(
                name,
                [make_record(f"{name}-{index}", timestamp=base + index * 2.0,
                             source=name) for index in range(10)],
            ), yield_every=2)
            for name, base in (("a", 0.0), ("b", 1.0))
        ]
        service = IngestService(
            sources, pipeline,
            config=IngestConfig(batch_size=4, max_batch_age=5.0,
                                lateness=100.0),
        )
        asyncio.run(service.run())
        stamps = [record.timestamp for record in pipeline.records]
        assert stamps == sorted(stamps)
        assert len(stamps) == 20
        assert pipeline.flushed


class TestBackpressure:
    def test_credits_bound_records_in_flight(self):
        pipeline = RecordingPipeline(delay=0.01)  # deliberately slow consumer
        records = [make_record(f"m{index}", timestamp=float(index))
                   for index in range(120)]
        credits = 16
        service = IngestService(
            [AsyncSourceAdapter(ReplaySource("fast", records),
                                yield_every=1)],
            pipeline,
            config=IngestConfig(batch_size=8, max_batch_age=5.0,
                                lateness=0.0, credits=credits),
        )

        peak = 0

        async def run_and_watch():
            nonlocal peak
            task = asyncio.ensure_future(service.run())
            while not task.done():
                peak = max(peak, service.gate.in_use)
                await asyncio.sleep(0.001)
            await task

        asyncio.run(run_and_watch())
        assert len(pipeline.records) == 120
        assert service.gate.waits > 0, "the fast reader must have stalled"
        assert peak <= credits

    def test_forced_drain_breaks_credit_watermark_deadlock(self):
        # Every credit ends up parked behind a watermark that can no
        # longer advance (one quiet source, huge lateness): only a
        # forced drain keeps the pipeline moving.
        pipeline = RecordingPipeline()
        records = [make_record(f"m{index}", timestamp=float(index))
                   for index in range(12)]
        service = IngestService(
            [AsyncSourceAdapter(ReplaySource("stuck", records),
                                yield_every=1)],
            pipeline,
            config=IngestConfig(batch_size=4, max_batch_age=0.05,
                                lateness=1e9, credits=6,
                                poll_interval=0.01),
        )

        async def run_with_stop():
            task = asyncio.ensure_future(service.run())
            deadline = time.monotonic() + 5.0
            while (len(pipeline.records) < 6
                   and time.monotonic() < deadline):
                await asyncio.sleep(0.005)
            service.stop()
            await task

        asyncio.run(run_with_stop())
        assert service.forced_drains > 0
        assert len(pipeline.records) == 12  # drain + shutdown flush: no drops


class TestFlowPolicies:
    def test_age_flush_keeps_trickle_sources_live(self):
        pipeline = RecordingPipeline()

        class Trickle(AsyncSourceAdapter):
            async def items(self, start_offset=0):
                async for item in super().items(start_offset):
                    yield item
                    await asyncio.sleep(0.03)

        records = [make_record(f"m{index}", timestamp=float(index))
                   for index in range(6)]
        service = IngestService(
            [Trickle(ReplaySource("drip", records))],
            pipeline,
            config=IngestConfig(batch_size=1000, max_batch_age=0.02,
                                lateness=0.0),
        )
        asyncio.run(service.run())
        assert len(pipeline.records) == 6
        assert service.batcher.age_flushes >= 1
        assert len(pipeline.batches) >= 2, \
            "a trickle source must not wait for a full batch"

    def test_batch_handoff_reports_depth(self):
        class DepthProbe:
            def __init__(self):
                self.seen_depth = None

            def process_batch(self, records):
                self.seen_depth = handoff.depth
                return []

        probe = DepthProbe()
        handoff = BatchHandoff(probe)
        records = [make_record(f"m{index}", timestamp=float(index))
                   for index in range(5)]
        assert handoff.depth == 0
        assert handoff.submit(records) == []
        assert probe.seen_depth == 5, \
            "depth must expose the submitted-but-unprocessed window"
        assert handoff.depth == 0
        assert handoff.peak_depth == 5
        assert handoff.batches == 1
        assert handoff.records == 5
        assert handoff.flush() == []  # no flush() on the probe: no-op

    def test_stats_snapshot_and_summary(self):
        pipeline = RecordingPipeline()
        records = [make_record(f"m{index}", timestamp=float(index))
                   for index in range(10)]
        service = IngestService(
            [AsyncSourceAdapter(ReplaySource("only", records))],
            pipeline,
            config=IngestConfig(batch_size=4, max_batch_age=1.0,
                                lateness=0.0),
        )
        asyncio.run(service.run())
        stats = service.stats()
        assert stats.records_in == {"only": 10}
        assert stats.records_processed == 10
        assert stats.committed == {"only": 10}
        assert "ingested 10 records" in stats.summary()
        assert "only=10" in stats.summary()

    def test_service_validates_inputs(self):
        pipeline = RecordingPipeline()
        with pytest.raises(ValueError, match="at least one source"):
            IngestService([], pipeline)
        source = AsyncSourceAdapter(
            ReplaySource("dup", [make_record("m", timestamp=0.0)]))
        twin = AsyncSourceAdapter(
            ReplaySource("dup", [make_record("m", timestamp=0.0)]))
        with pytest.raises(ValueError, match="unique"):
            IngestService([source, twin], pipeline)

    def test_single_run_only(self):
        pipeline = RecordingPipeline()
        service = IngestService(
            [AsyncSourceAdapter(
                ReplaySource("once", [make_record("m", timestamp=0.0)]))],
            pipeline,
        )
        asyncio.run(service.run())
        with pytest.raises(RuntimeError, match="single run"):
            asyncio.run(service.run())


class TestCheckpointResume:
    def test_second_service_skips_committed_prefix(self, tmp_path):
        path = tmp_path / "ckpt.json"
        records = [make_record(f"m{index}", timestamp=float(index))
                   for index in range(20)]

        first = RecordingPipeline()
        service = IngestService(
            [AsyncSourceAdapter(ReplaySource("replay", records))],
            first,
            config=IngestConfig(batch_size=5, max_batch_age=1.0,
                                lateness=0.0),
            checkpoint=CheckpointStore(path),
        )
        asyncio.run(service.run())
        assert len(first.records) == 20

        extended = records + [make_record("m-new", timestamp=99.0)]
        second = RecordingPipeline()
        resumed = IngestService(
            [AsyncSourceAdapter(ReplaySource("replay", extended))],
            second,
            config=IngestConfig(batch_size=5, max_batch_age=1.0,
                                lateness=0.0),
            checkpoint=CheckpointStore(path),
        )
        asyncio.run(resumed.run())
        assert [record.message for record in second.records] == ["m-new"]
        assert CheckpointStore(path).get("replay") == 21
