"""Tests for session-key derivation from message content."""

import pytest

from repro.logs.sessions import DEFAULT_SESSION_PATTERNS, SessionKeyExtractor

from conftest import make_record


class TestKeyFor:
    def setup_method(self):
        self.extractor = SessionKeyExtractor()

    @pytest.mark.parametrize(
        "message,expected",
        [
            ("Receiving block blk_123456 src: /10.0.0.1", "blk_123456"),
            ("Request req-00042 completed", "req-00042"),
            ("Scheduler placed instance vm-9f3a21 on host-03", "vm-9f3a21"),
            # Pattern-list order wins, not message order: vm- precedes
            # vol- in DEFAULT_SESSION_PATTERNS.
            ("Attached volume vol-aa11bb to instance vm-9f3a21", "vm-9f3a21"),
            ("done trace_id=abc123 elapsed 5ms", "abc123"),
            ("request_id: xyz-1 accepted", "xyz-1"),
        ],
    )
    def test_extracts_identifier(self, message, expected):
        assert self.extractor.key_for(message) == expected

    def test_no_identifier(self):
        assert self.extractor.key_for("plain message no ids") is None

    def test_first_pattern_wins(self):
        message = "block blk_1 for request req-2"
        assert self.extractor.key_for(message) == "blk_1"

    def test_custom_patterns(self):
        extractor = SessionKeyExtractor([r"\bjob#\d+\b"])
        assert extractor.key_for("started job#77 now") == "job#77"
        assert extractor.key_for("block blk_1") is None

    def test_empty_patterns_rejected(self):
        with pytest.raises(ValueError, match="pattern"):
            SessionKeyExtractor([])


class TestAssign:
    def test_assigns_derived_ids(self):
        extractor = SessionKeyExtractor()
        records = [
            make_record("Receiving block blk_42 now"),
            make_record("no identifier here"),
        ]
        assigned = list(extractor.assign(records))
        assert assigned[0].session_id == "blk_42"
        assert assigned[1].session_id is None

    def test_existing_session_id_kept(self):
        extractor = SessionKeyExtractor()
        record = make_record("block blk_42", session_id="original")
        assigned = list(extractor.assign([record]))
        assert assigned[0].session_id == "original"

    def test_hdfs_roundtrip_through_text(self, hdfs_small):
        # Render to text (dropping session column), re-derive from the
        # blk_ tokens: the derived sessionization must equal the
        # generator's.
        from repro.logs.formats import read_log_lines, render_line

        lines = [render_line(record) + "\n" for record in hdfs_small.records]
        recovered = list(
            SessionKeyExtractor().assign(read_log_lines(lines))
        )
        assert len(recovered) == len(hdfs_small.records)
        mismatches = sum(
            1
            for original, derived in zip(hdfs_small.records, recovered)
            if derived.session_id != original.session_id
        )
        assert mismatches == 0

    def test_coverage(self, hdfs_small):
        extractor = SessionKeyExtractor()
        stripped = [
            make_record(record.message) for record in hdfs_small.records[:200]
        ]
        assert extractor.coverage(stripped) == 1.0
        assert extractor.coverage([]) == 0.0
