"""End-to-end tracing, alert provenance, and health/readiness probes.

The observability tier's contracts: the span ring evicts oldest-first
and counts what it dropped, sampling is deterministic (no RNG), every
alert of a traced run round-trips through ``explain`` to sources /
offsets / template ids, ``/healthz`` answers while ``/readyz``
discriminates, and — the load-bearing claim — tracing never changes an
alert (byte-identity on or off, every executor)."""

import copy
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Pipeline, PipelineSpec
from repro.core.validation import ConfigError
from repro.datasets import generate_cloud_platform
from repro.telemetry import (
    AlertProvenance,
    HealthMonitor,
    MetricsRegistry,
    MetricsServer,
    Span,
    Tracer,
    TraceStore,
)


def _alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, tuple(alert.report.detection.reasons),
            alert.pool, alert.criticality)


def _span(store_or_id, index=0, name="stage", trace_id="t-000001",
          tenant="default"):
    return Span(trace_id=trace_id, span_id=index, parent_id=None,
                name=name, tenant=tenant, wall_start=float(index),
                duration=0.001, cpu=0.001, attributes={"index": index})


@pytest.fixture(scope="module")
def corpus():
    data = generate_cloud_platform(sessions=60, anomaly_rate=0.1, seed=11)
    cut = len(data.records) * 6 // 10
    return data.records[:cut], data.records[cut:]


class TestTraceStore:
    def test_ring_evicts_oldest_first(self):
        store = TraceStore(capacity=3)
        for index in range(5):
            store.add(_span(store, index))
        assert len(store) == 3
        assert store.added == 5
        assert store.evicted == 2
        # Survivors are the newest three, still oldest-first.
        assert [span.span_id for span in store.spans()] == [2, 3, 4]

    def test_filters_and_limit(self):
        store = TraceStore(capacity=16)
        store.add(_span(store, 0, name="parse", trace_id="a"))
        store.add(_span(store, 1, name="detect", trace_id="a"))
        store.add(_span(store, 2, name="parse", trace_id="b", tenant="acme"))
        assert [s.span_id for s in store.spans(name="parse")] == [0, 2]
        assert [s.span_id for s in store.spans(trace_id="a")] == [0, 1]
        assert [s.span_id for s in store.spans(tenant="acme")] == [2]
        # limit keeps the newest N, order preserved.
        assert [s.span_id for s in store.spans(limit=2)] == [1, 2]
        assert store.trace_ids() == ["a", "b"]

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)

    def test_span_dict_roundtrip(self):
        span = _span(None, 7, name="detect", tenant="acme")
        assert Span.from_dict(span.as_dict()) == span


class TestDeterministicSampling:
    def test_rate_one_samples_everything(self):
        tracer = Tracer(TraceStore(64), sample_rate=1.0)
        contexts = [tracer.begin("batch") for _ in range(5)]
        assert all(ctx is not None for ctx in contexts)
        assert tracer.sampled == 5

    def test_rate_zero_samples_nothing(self):
        tracer = Tracer(TraceStore(64), sample_rate=0.0)
        assert all(tracer.begin("batch") is None for _ in range(10))
        assert tracer.sampled == 0

    def test_fractional_rate_is_every_nth(self):
        tracer = Tracer(TraceStore(256), sample_rate=0.25)
        decisions = [tracer.begin("batch") is not None for _ in range(12)]
        # Counter-based: candidates 4, 8, 12 — no RNG, same corpus
        # always samples the same batches.
        assert decisions == [False, False, False, True] * 3

    def test_handoff_transfers_ownership_without_resampling(self):
        tracer = Tracer(TraceStore(64), sample_rate=1.0)
        ctx = tracer.begin("ingest", records=3)
        tracer.hand_off(ctx)
        adopted = tracer.begin("batch", executor="serial")
        assert adopted is ctx
        assert tracer.sampled == 1  # no second sample for the batch

    def test_handoff_of_negative_decision_skips(self):
        tracer = Tracer(TraceStore(64), sample_rate=1.0)
        tracer.hand_off(None)
        assert tracer.begin("batch") is None
        # The skip is consumed: the next candidate samples normally.
        assert tracer.begin("batch") is not None

    def test_spans_nest_under_root(self):
        store = TraceStore(64)
        tracer = Tracer(store, sample_rate=1.0, tenant="acme")
        ctx = tracer.begin("batch", records=2)
        with ctx.span("parse", records=2) as span:
            span.annotate(templates=4)
        ctx.event("merge", pending=0)
        tracer.finish(ctx)
        spans = store.spans()
        assert [span.name for span in spans] == ["parse", "merge", "batch"]
        parse, merge, root = spans
        assert parse.parent_id == root.span_id
        assert merge.parent_id == root.span_id
        assert root.parent_id is None
        assert parse.attributes["templates"] == 4
        assert all(span.tenant == "acme" for span in spans)
        assert all(span.trace_id == "acme-000001" for span in spans)


class TestProvenance:
    def test_every_alert_explains_to_offsets_and_templates(self, corpus):
        train, live = corpus
        spec = PipelineSpec(detector="keyword",
                            telemetry={"enabled": True, "tracing": True})
        with Pipeline.from_spec(spec) as pipeline:
            pipeline.fit(train)
            alerts = pipeline.process(live)
            assert alerts, "corpus must produce alerts for the claim to bite"
            for alert in alerts:
                provenance = pipeline.explain(alert.report.report_id)
                report = alert.report
                assert provenance.alert_id == report.report_id
                assert provenance.session_id == report.session_id
                assert provenance.events == len(report.events)
                assert provenance.sources == report.sources
                # One (source, offset, template_id) triple per event,
                # in window order; offline offsets are sequences.
                assert len(provenance.records) == len(report.events)
                for event, (source, offset, template_id) in zip(
                        report.events, provenance.records):
                    assert source == event.source
                    assert offset == event.record.sequence
                    assert template_id == event.template_id
                assert set(provenance.template_ids) == {
                    event.template_id for event in report.events}
                rendered = provenance.render()
                assert f"alert #{report.report_id}" in rendered
                assert "source offsets:" in rendered

    def test_unknown_alert_id_names_known_ids(self, corpus):
        train, live = corpus
        spec = PipelineSpec(detector="keyword",
                            telemetry={"enabled": True, "tracing": True})
        with Pipeline.from_spec(spec) as pipeline:
            pipeline.fit(train)
            pipeline.process(live)
            with pytest.raises(KeyError, match="known alert ids"):
                pipeline.explain(10**9)

    def test_explain_requires_tracing(self, corpus):
        with Pipeline.from_spec(PipelineSpec(detector="keyword")) as pipeline:
            with pytest.raises(RuntimeError, match="tracing"):
                pipeline.explain(0)

    def test_provenance_dict_roundtrip(self, corpus):
        train, live = corpus
        spec = PipelineSpec(detector="keyword",
                            telemetry={"enabled": True, "tracing": True})
        with Pipeline.from_spec(spec) as pipeline:
            pipeline.fit(train)
            alerts = pipeline.process(live)
            provenance = pipeline.explain(alerts[0].report.report_id)
        # JSON round-trip: what `repro explain --trace-file` consumes.
        payload = json.loads(json.dumps(provenance.as_dict()))
        assert AlertProvenance.from_dict(payload) == provenance

    def test_trace_dump_shape(self, corpus):
        train, live = corpus
        spec = PipelineSpec(detector="keyword",
                            telemetry={"enabled": True, "tracing": True})
        with Pipeline.from_spec(spec) as pipeline:
            pipeline.fit(train)
            alerts = pipeline.process(live)
            dump = pipeline.trace_dump()
        assert dump["sample_rate"] == 1.0
        assert dump["buffered"] == len(dump["spans"])
        stage_names = {span["name"] for span in dump["spans"]}
        assert {"batch", "parse", "detect", "classify"} <= stage_names
        assert len(dump["alerts"]) == len(alerts)


class TestTracingNeutrality:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_alerts_identical_traced_or_dark(self, corpus, executor):
        train, live = corpus
        base = dict(shards=2, detector_shards=2, detector="keyword",
                    executor=executor, batch_size=64)
        keys = []
        for telemetry in ({}, {"enabled": True, "tracing": True},
                          {"enabled": True, "tracing": True,
                           "trace_sample_rate": 0.1}):
            with Pipeline.from_spec(
                    PipelineSpec(**base, telemetry=telemetry)) as pipeline:
                pipeline.fit(train)
                keys.append([_alert_key(alert)
                             for alert in pipeline.process(live)])
        assert keys[0], "corpus must produce alerts for the claim to bite"
        assert keys[1] == keys[0]
        assert keys[2] == keys[0]

    def test_sampled_run_still_explains_every_alert(self, corpus):
        train, live = corpus
        spec = PipelineSpec(detector="keyword",
                            telemetry={"enabled": True, "tracing": True,
                                       "trace_sample_rate": 0.05})
        with Pipeline.from_spec(spec) as pipeline:
            pipeline.fit(train)
            alerts = pipeline.process(live)
            # Spans are sampled; provenance is not.
            for alert in alerts:
                assert pipeline.explain(alert.report.report_id) is not None


class TestTracingConfig:
    def test_defaults_off(self):
        from repro.telemetry import TelemetryConfig
        config = TelemetryConfig()
        assert not config.tracing
        assert config.trace_sample_rate == 1.0
        assert config.trace_buffer == 2048

    def test_validation_aggregates(self):
        from repro.telemetry import TelemetryConfig
        with pytest.raises(ConfigError) as failure:
            TelemetryConfig(tracing="yes", trace_sample_rate=3.0,
                            trace_buffer=0)
        message = str(failure.value)
        assert "tracing" in message
        assert "trace_sample_rate" in message
        assert "trace_buffer" in message


class TestHealthMonitor:
    def test_heartbeat_goes_stale(self):
        now = [0.0]
        monitor = HealthMonitor(stale_after=5.0, clock=lambda: now[0])
        monitor.beat("ingest")
        ready, probes = monitor.ready()
        assert ready and probes["ingest"]["ready"]
        now[0] = 6.0
        ready, probes = monitor.ready()
        assert not ready
        assert not probes["ingest"]["ready"]
        # A fresh beat recovers readiness.
        monitor.beat("ingest")
        assert monitor.ready()[0]

    def test_pull_checks_and_flags(self):
        monitor = HealthMonitor()
        healthy = [True]
        monitor.check("source:app", lambda: healthy[0])
        monitor.set_ready("pipeline", True, "trained")
        assert monitor.ready()[0]
        healthy[0] = False
        ready, probes = monitor.ready()
        assert not ready
        assert probes["source:app"]["detail"] == "check reported unready"

    def test_raising_check_reads_unready(self):
        monitor = HealthMonitor()
        def boom():
            raise OSError("stat failed")
        monitor.check("source:gone", boom)
        ready, probes = monitor.ready()
        assert not ready
        assert "stat failed" in probes["source:gone"]["detail"]


class TestHealthEndpoints:
    def test_healthz_always_alive_readyz_discriminates(self):
        monitor = HealthMonitor()
        monitor.set_ready("pipeline", False, "not trained")
        registry = MetricsRegistry()
        with MetricsServer(registry, port=0, health=monitor) as server:
            with urllib.request.urlopen(
                    f"{server.url}/healthz", timeout=10) as response:
                assert json.loads(response.read())["status"] == "alive"
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(f"{server.url}/readyz", timeout=10)
            assert failure.value.code == 503
            body = json.loads(failure.value.read())
            assert body["status"] == "unready"
            assert body["probes"]["pipeline"]["detail"] == "not trained"
            monitor.set_ready("pipeline", True, "trained")
            with urllib.request.urlopen(
                    f"{server.url}/readyz", timeout=10) as response:
                assert json.loads(response.read())["status"] == "ready"

    def test_readyz_without_monitor_is_ready(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            with urllib.request.urlopen(
                    f"{server.url}/readyz", timeout=10) as response:
                assert json.loads(response.read())["status"] == "ready"


class TestTracesEndpoint:
    def test_serves_spans_with_filters(self):
        store = TraceStore(64)
        tracer = Tracer(store, sample_rate=1.0, tenant="acme")
        ctx = tracer.begin("batch", records=8)
        with ctx.span("parse", records=8):
            pass
        tracer.finish(ctx)
        with MetricsServer(MetricsRegistry(), port=0,
                           trace_store=store) as server:
            with urllib.request.urlopen(
                    f"{server.url}/traces", timeout=10) as response:
                payload = json.loads(response.read())
            assert payload["buffered"] == 2
            assert payload["capacity"] == 64
            assert {span["name"] for span in payload["spans"]} == {
                "batch", "parse"}
            with urllib.request.urlopen(
                    f"{server.url}/traces?name=parse&tenant=acme",
                    timeout=10) as response:
                filtered = json.loads(response.read())
            assert [span["name"] for span in filtered["spans"]] == ["parse"]
            with urllib.request.urlopen(
                    f"{server.url}/traces?limit=1", timeout=10) as response:
                limited = json.loads(response.read())
            assert len(limited["spans"]) == 1

    def test_404_when_tracing_disabled(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(f"{server.url}/traces", timeout=10)
            assert failure.value.code == 404


class TestPortInUse:
    def test_bind_failure_is_config_error(self):
        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(ConfigError) as failure:
                MetricsServer(MetricsRegistry(), port=port)
            message = str(failure.value)
            assert "metrics_port" in message
            assert str(port) in message
        finally:
            blocker.close()


class TestSourceHealth:
    def test_file_source_healthy_tracks_stat(self, tmp_path):
        from repro.ingest.sources import FileTailSource
        path = tmp_path / "app.log"
        source = FileTailSource(path, follow=False)
        assert not source.healthy  # not created yet
        path.write_text("hello\n")
        assert source.healthy

    def test_socket_source_healthy_tracks_connection(self):
        from repro.ingest.sources import SocketSource
        source = SocketSource("127.0.0.1", 1, reconnect=False,
                              max_connect_attempts=1)
        assert not source.healthy  # never connected

    def test_healthy_gauge_exported(self):
        from repro.telemetry import PipelineTelemetry

        class _Gate:
            capacity = in_use = waits = 0
            wait_seconds = 0.0

        class _Merger:
            pending = late = 0

        class _Batcher:
            pending = size_flushes = age_flushes = 0

        class _Source:
            def __init__(self, name, healthy):
                self.name = name
                self.healthy = healthy

        class _Service:
            _records_in = {}
            meters = {}
            merger = _Merger()
            batcher = _Batcher()
            gate = _Gate()
            forced_drains = 0
            sources = [_Source("app", True), _Source("gone", False)]

        telemetry = PipelineTelemetry()
        telemetry.attach_ingest(_Service())
        text = telemetry.registry.render_prometheus()
        assert 'monilog_source_healthy{source="app"} 1' in text
        assert 'monilog_source_healthy{source="gone"} 0' in text


class TestGatewayTracing:
    def _spec(self, tracing=True):
        telemetry = {"enabled": True}
        if tracing:
            telemetry.update(tracing=True)
        return PipelineSpec.from_dict({
            "detector": "keyword",
            "telemetry": telemetry,
            "tenants": {
                "acme": {},
                "globex": {},
            },
        })

    def test_per_tenant_tracers_share_one_ring(self, corpus):
        from repro.gateway import Gateway
        train, live = corpus
        with Gateway(self._spec()) as gateway:
            gateway.fit(train)
            alerts = gateway.process(
                {name: live for name in gateway.tenants})
            assert alerts
            store = gateway.trace_store
            assert store is not None
            tenants = {span.tenant for span in store.spans()}
            assert tenants == {"acme", "globex"}
            for tagged in alerts:
                provenance = gateway.explain(
                    tagged.tenant, tagged.alert.report.report_id)
                assert provenance.tenant == tagged.tenant

    def test_shared_health_scopes_probes_by_tenant(self, corpus):
        from repro.gateway import Gateway
        with Gateway(self._spec(tracing=False)) as gateway:
            assert gateway.trace_store is None
            ready, probes = gateway.health.ready()
            assert {"acme.pipeline", "globex.pipeline"} <= set(probes)
            assert not ready  # nothing trained yet
            gateway.fit(corpus[0])
            assert gateway.health.ready()[0]

    def test_traces_endpoint_scopes_by_tenant(self, corpus):
        from repro.gateway import Gateway
        train, live = corpus
        with Gateway(self._spec()) as gateway:
            gateway.fit(train)
            gateway.process({name: live for name in gateway.tenants})
            server = gateway.start_metrics_server(0)
            with urllib.request.urlopen(
                    f"{server.url}/traces?tenant=acme",
                    timeout=10) as response:
                payload = json.loads(response.read())
            assert payload["spans"]
            assert all(span["tenant"] == "acme"
                       for span in payload["spans"])


class TestRuntimeResourceContract:
    def test_traced_pipeline_survives_deepcopy(self):
        spec = PipelineSpec(detector="keyword",
                            telemetry={"enabled": True, "tracing": True})
        with Pipeline.from_spec(spec) as pipeline:
            clone = copy.deepcopy(pipeline)
            assert clone.tracer is pipeline.tracer
            assert clone.health is pipeline.health

    def test_primitives_deepcopy_to_self(self):
        store = TraceStore(8)
        tracer = Tracer(store)
        monitor = HealthMonitor()
        assert copy.deepcopy(store) is store
        assert copy.deepcopy(tracer) is tracer
        assert copy.deepcopy(monitor) is monitor


class TestConcurrentScrapes:
    def test_metrics_telemetry_and_traces_scrape_under_load(self, corpus):
        """Satellite claim: /metrics, /telemetry, and /traces answer
        concurrently while the pipeline is busy producing spans."""
        train, live = corpus
        spec = PipelineSpec(detector="keyword",
                            telemetry={"enabled": True, "tracing": True})
        with Pipeline.from_spec(spec) as pipeline:
            pipeline.fit(train)
            server = pipeline.start_metrics_server()
            failures = []
            stop = threading.Event()

            def scrape(path, check):
                while not stop.is_set():
                    try:
                        with urllib.request.urlopen(
                                f"{server.url}{path}", timeout=10) as resp:
                            check(resp.read())
                    except Exception as error:  # noqa: BLE001
                        failures.append((path, error))
                        return

            scrapers = [
                threading.Thread(target=scrape, args=(
                    "/metrics", lambda b: b.index(b"monilog_"))),
                threading.Thread(target=scrape, args=(
                    "/telemetry", json.loads)),
                threading.Thread(target=scrape, args=(
                    "/traces", json.loads)),
            ]
            for thread in scrapers:
                thread.start()
            try:
                for _ in range(3):
                    pipeline.process(live)
            finally:
                stop.set()
                for thread in scrapers:
                    thread.join()
            assert not failures

    def test_scoped_registry_filters_tenant_with_tracing(self, corpus):
        """ScopedRegistry views stay tenant-disjoint when the trace
        metric families are live."""
        from repro.gateway import Gateway
        from repro.telemetry.metrics import filter_prometheus
        train, live = corpus
        spec = PipelineSpec.from_dict({
            "detector": "keyword",
            "telemetry": {"enabled": True, "tracing": True},
            "tenants": {"acme": {}, "globex": {}},
        })
        with Gateway(spec) as gateway:
            gateway.fit(train)
            gateway.process({name: live for name in gateway.tenants})
            text = gateway.metrics_text()
            acme = filter_prometheus(text, tenant="acme")
            assert 'tenant="acme"' in acme
            assert 'tenant="globex"' not in acme
            assert "monilog_traces_sampled_total" in acme
            assert "monilog_alert_provenance_records" in acme
