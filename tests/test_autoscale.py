"""The adaptive controller: AIMD policies under a fake clock, the
runtime-adjustable knobs it drives (gate resize, batcher reconfigure,
pipeline batch size), and end-to-end neutrality of a controlled run."""

import asyncio

import pytest

from repro.api import Pipeline, PipelineSpec
from repro.autoscale import AutoscaleConfig, AutoscaleController
from repro.core.validation import ConfigError
from repro.datasets import generate_cloud_platform
from repro.ingest import CreditGate, IngestService, MicroBatcher
from repro.logs.sources import ReplaySource
from repro.telemetry import PipelineTelemetry


class TestAutoscaleConfig:
    def test_defaults_valid(self):
        AutoscaleConfig()

    def test_validation_aggregates_every_bad_bound(self):
        with pytest.raises(ConfigError) as failure:
            AutoscaleConfig(interval=0, min_credits=0, max_credits=-1,
                            idle_fraction=2.0)
        message = str(failure.value)
        for field in ("interval", "min_credits", "max_credits",
                      "idle_fraction"):
            assert field in message

    def test_crossed_envelopes_rejected(self):
        with pytest.raises(ConfigError, match="max_ingest_batch"):
            AutoscaleConfig(min_ingest_batch=100, max_ingest_batch=10)


class TestCreditGateResize:
    def test_grow_grants_waiters_in_order(self):
        async def scenario():
            gate = CreditGate(1)
            await gate.acquire()
            order = []

            async def producer(tag):
                await gate.acquire()
                order.append(tag)

            tasks = [asyncio.ensure_future(producer(tag))
                     for tag in ("a", "b", "c")]
            await asyncio.sleep(0)
            assert order == []
            gate.resize(4)
            await asyncio.gather(*tasks)
            return order, gate

        order, gate = asyncio.run(scenario())
        assert order == ["a", "b", "c"]
        assert gate.capacity == 4 and gate.in_use == 4

    def test_shrink_below_in_use_settles_via_releases(self):
        async def scenario():
            gate = CreditGate(4)
            for _ in range(4):
                await gate.acquire()
            gate.resize(2)
            assert gate.available == -2
            assert gate.in_use == 4
            for _ in range(4):
                gate.release()
            return gate

        gate = asyncio.run(scenario())
        assert gate.available == 2 and gate.in_use == 0

    def test_wait_seconds_accumulates(self):
        async def scenario():
            gate = CreditGate(1)
            await gate.acquire()

            async def blocked():
                await gate.acquire()

            task = asyncio.ensure_future(blocked())
            await asyncio.sleep(0.05)
            gate.release()
            await task
            return gate

        gate = asyncio.run(scenario())
        assert gate.waits == 1
        assert gate.wait_seconds >= 0.04

    def test_shrink_then_grow_restores_original_request(self):
        # A producer that queues acquire(8) during a dip to capacity 2
        # must get its full 8 credits back once the budget recovers —
        # the dip's clamp is not a permanent haircut.
        async def scenario():
            gate = CreditGate(8)
            await gate.acquire(8)
            waiter = asyncio.ensure_future(gate.acquire(8))
            await asyncio.sleep(0)
            gate.resize(2)
            gate.resize(8)
            gate.release(8)
            await waiter
            return gate

        gate = asyncio.run(scenario())
        assert gate.in_use == 8
        assert gate.available == 0
        gate.release(8)
        assert gate.available == 8

    def test_resize_rejects_zero(self):
        with pytest.raises(ValueError):
            CreditGate(4).resize(0)


class TestMicroBatcherConfigure:
    def test_new_size_applies_to_next_add(self):
        batcher = MicroBatcher(max_size=100, max_age=10.0)
        for index in range(5):
            assert batcher.add(index, now=0.0) is None
        batcher.configure(max_size=6)
        batch = batcher.add(5, now=0.0)
        assert batch == [0, 1, 2, 3, 4, 5]
        assert batcher.size_flushes == 1

    def test_new_age_moves_the_open_deadline(self):
        batcher = MicroBatcher(max_size=100, max_age=10.0)
        batcher.add("x", now=0.0)
        assert batcher.poll(1.0) is None
        batcher.configure(max_age=0.5)
        assert batcher.deadline == 0.5
        assert batcher.poll(1.0) == ["x"]

    def test_bad_values_rejected(self):
        batcher = MicroBatcher(max_size=1, max_age=1.0)
        with pytest.raises(ValueError):
            batcher.configure(max_size=0)
        with pytest.raises(ValueError):
            batcher.configure(max_age=0)


class _FakeHandoff:
    def __init__(self):
        self.depth = 0
        self.batches = 0
        self.busy_seconds = 0.0


class _FakeMeter:
    def __init__(self, value):
        self.value = value

    def rate(self, now):
        return self.value


class _FakeService:
    """Just the signal surface the controller reads."""

    def __init__(self, credits=1, batch_size=1, max_age=0.25, rate=0.0):
        self.gate = CreditGate(credits)
        self.batcher = MicroBatcher(batch_size, max_age)
        self.handoff = _FakeHandoff()
        self.meters = {"src": _FakeMeter(rate)}


class TestControllerPolicies:
    def _controller(self, service, config=None, pipeline=None):
        controller = AutoscaleController(
            config or AutoscaleConfig(min_credits=1, min_ingest_batch=1),
            pipeline=pipeline, clock=lambda: 0.0)
        return controller.bind(service)

    def test_credit_waits_double_the_budget(self):
        service = _FakeService(credits=4)
        controller = self._controller(service)
        service.gate.waits = 3  # producers blocked since last tick
        made = controller.tick(0.0)
        assert service.gate.capacity == 8
        assert any("credits" in message for message in made)
        # No new waits: no further growth.
        controller.tick(1.0)
        assert service.gate.capacity == 8

    def test_budget_growth_is_bounded(self):
        config = AutoscaleConfig(min_credits=1, max_credits=16)
        service = _FakeService(credits=16)
        controller = self._controller(service, config)
        service.gate.waits = 10
        controller.tick(0.0)
        assert service.gate.capacity == 16

    def test_idle_budget_decays_after_two_ticks(self):
        service = _FakeService(credits=64)
        controller = self._controller(service)
        controller.tick(0.0)
        assert service.gate.capacity == 64  # first idle tick: observe
        controller.tick(1.0)
        assert service.gate.capacity == 56  # second: additive decay

    def test_batch_sized_to_arrival_rate_with_multiplicative_ramp(self):
        service = _FakeService(batch_size=1, max_age=0.5, rate=1000.0)
        controller = self._controller(service)
        sizes = []
        for tick in range(12):
            controller.tick(float(tick))
            sizes.append(service.batcher.max_size)
        # Doubles per tick out of the mis-sized start...
        assert sizes[:3] == [2, 4, 8]
        # ...while the flood policy walks the age bound down toward
        # its floor (batches fill by size; shorter age = lower
        # latency).  The equilibrium is self-consistent: the batch
        # holds about one age-window of arrivals, with the age within
        # one 1.5x step of the floor.
        age = service.batcher.max_age
        assert 0.05 <= age <= 0.05 * 1.5
        assert sizes[-1] == pytest.approx(1000.0 * age, rel=0.05)
        assert sizes[-1] == sizes[-2], "must settle, not oscillate"

    def test_batch_decays_additively_on_lull(self):
        service = _FakeService(batch_size=1024, max_age=0.5, rate=10.0)
        controller = self._controller(service)
        controller.tick(0.0)
        assert service.batcher.max_size == 768  # -1/4, toward 5

    def test_trickle_stretches_batch_age(self):
        service = _FakeService(batch_size=8, max_age=0.1, rate=0.5)
        controller = self._controller(service)
        controller.tick(0.0)
        assert service.batcher.max_age == pytest.approx(0.15)

    def test_pipeline_batch_halves_on_latency_overshoot(self):
        service = _FakeService()

        class _Pipe:
            sharded = False
            batch_size = 512

            def set_batch_size(self, size):
                self.batch_size = size

        pipeline = _Pipe()
        controller = self._controller(service, pipeline=pipeline)
        service.handoff.batches = 4
        service.handoff.busy_seconds = 4.0  # 1s per batch >> 0.25s target
        controller.tick(0.0)
        assert pipeline.batch_size == 256

    def test_imbalance_raises_advisory_once(self):
        telemetry = PipelineTelemetry()

        class _Parser:
            shard_loads = [100, 1, 1, 1]

        class _Pipe:
            sharded = True
            parser = _Parser()
            batch_size = 64

        controller = AutoscaleController(
            AutoscaleConfig(imbalance_threshold=2.0),
            pipeline=_Pipe(), telemetry=telemetry, clock=lambda: 0.0)
        controller.tick(0.0)
        controller.tick(1.0)
        assert len(controller.advisories) == 1
        assert "shard imbalance" in controller.advisories[0]
        assert telemetry.snapshot()["advisories"] == \
            list(controller.advisories)

    def test_maybe_tick_respects_interval(self):
        service = _FakeService()
        controller = AutoscaleController(
            AutoscaleConfig(interval=1.0), clock=lambda: 0.0).bind(service)
        assert controller.maybe_tick(0.0) is False  # arms the cadence
        assert controller.maybe_tick(0.5) is False
        assert controller.maybe_tick(1.0) is True
        assert controller.maybe_tick(1.5) is False
        assert controller.ticks == 1

    def test_rebinding_a_new_service_resets_the_signal_baselines(self):
        """A pipeline-lifetime controller serves one IngestService per
        run; binding the next run's service must not carry the dead
        service's wait/batch baselines (or its tick phase) over."""
        controller = AutoscaleController(
            AutoscaleConfig(min_credits=1), clock=lambda: 0.0)
        first = _FakeService(credits=4)
        controller.bind(first)
        first.gate.waits = 3
        controller.tick(0.0)
        assert first.gate.capacity == 8
        assert controller._last_waits == 3

        second = _FakeService(credits=4)
        controller.bind(second)
        assert controller.service is second
        assert controller._last_waits == 0
        # No waits on the new service: no growth from stale deltas.
        controller.tick(1.0)
        assert second.gate.capacity == 4


def _alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, alert.pool, alert.criticality)


class TestEndToEndNeutrality:
    def test_autoscaled_ingestion_produces_identical_alerts(self):
        """The X11 claim in miniature: a controller moving batch and
        credit knobs mid-run never changes the alert stream."""
        data = generate_cloud_platform(sessions=40, anomaly_rate=0.12,
                                       seed=7)
        cut = len(data.records) // 2
        train, live = data.records[:cut], data.records[cut:]

        def run(autoscale: dict) -> tuple[list, object]:
            spec = PipelineSpec(
                detector="keyword", streaming=True, session_timeout=10.0,
                ingest_batch_size=2, credits=2, max_batch_age=0.05,
                poll_interval=0.005, lateness=5.0, autoscale=autoscale,
            )
            with Pipeline.from_spec(spec) as pipeline:
                pipeline.fit(train)
                source = ReplaySource("replay", live).as_async()
                service = pipeline.serve([source])
                alerts = asyncio.run(service.run())
                return [_alert_key(alert) for alert in alerts], service

        static, _ = run({})
        adaptive, service = run(
            {"interval": 0.01, "min_credits": 1, "min_ingest_batch": 1})
        assert static, "corpus must alert"
        assert adaptive == static
        status = service.stats().autoscale
        assert status is not None and status["ticks"] > 0


class TestReviewRegressions:
    def test_latency_decrease_never_grows_a_small_batch(self):
        """A spec batch below the autoscale floor stays put on
        congestion — a 'decrease' must never increase."""
        service = _FakeService()

        class _Pipe:
            sharded = False
            batch_size = 16  # below the default min_batch_size of 32

            def set_batch_size(self, size):
                self.batch_size = size

        pipeline = _Pipe()
        controller = AutoscaleController(
            AutoscaleConfig(), pipeline=pipeline,
            clock=lambda: 0.0).bind(service)
        service.handoff.batches = 2
        service.handoff.busy_seconds = 4.0  # way over target
        controller.tick(0.0)
        assert pipeline.batch_size == 16

    def test_gate_shrink_reclamps_queued_oversized_waiters(self):
        """resize() below a queued request must keep the gate's
        no-oversized-deadlock invariant."""

        async def scenario():
            gate = CreditGate(64)
            await gate.acquire(64)
            granted = []

            async def big():
                await gate.acquire(32)
                granted.append("big")

            async def small():
                await gate.acquire(1)
                granted.append("small")

            tasks = [asyncio.ensure_future(big()),
                     asyncio.ensure_future(small())]
            await asyncio.sleep(0)
            gate.resize(16)          # below the queued 32
            # Return the 64 originally-held credits, plus the (now
            # re-clamped to 16) grant "big" holds once it wakes.
            for _ in range(64 + 16):
                gate.release()
            await asyncio.wait_for(asyncio.gather(*tasks), timeout=2)
            return granted

        assert asyncio.run(scenario()) == ["big", "small"]

    def test_serve_twice_with_autoscale(self):
        """A pipeline with [autoscale] supports one serve() per run —
        the controller rebinds to each fresh service."""
        data = generate_cloud_platform(sessions=40, anomaly_rate=0.1,
                                       seed=7)
        cut = len(data.records) // 2
        spec = PipelineSpec(detector="keyword", streaming=True,
                            session_timeout=10.0,
                            telemetry={"enabled": True},
                            autoscale={"interval": 0.01})
        with Pipeline.from_spec(spec) as pipeline:
            pipeline.fit(data.records[:cut])
            runs = []
            for _ in range(2):
                source = ReplaySource("replay",
                                      data.records[cut:]).as_async()
                service = pipeline.serve([source])
                runs.append(asyncio.run(service.run()))
            assert len(runs[0]) > 0
            # One collector set, re-pointed: the scrape reflects the
            # latest run, not an accumulation of dead services.
            parsed = pipeline.telemetry()["metrics"][
                "monilog_source_records_total"]["values"]
            assert parsed == [{
                "labels": {"source": "replay"},
                "value": float(len(data.records) - cut),
            }]
