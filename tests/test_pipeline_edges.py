"""Edge-case coverage for the pipeline, reports, and eval surfaces."""

import pytest

from repro import Pipeline, PipelineSpec
from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.detection import InvariantMiningDetector, LogRobustDetector
from repro.detection.base import DetectionResult
from repro.logs.record import ParsedLog, Severity

from conftest import make_record


def _report(events):
    return AnomalyReport(
        report_id=0,
        session_id="s",
        events=tuple(events),
        detection=DetectionResult(anomalous=True, score=1.0),
    )


class TestReportEdges:
    def test_single_event_duration_zero(self):
        event = ParsedLog(
            record=make_record("x", timestamp=5.0),
            template_id=0, template="x",
        )
        report = _report([event])
        assert report.duration == 0.0
        assert report.start_time == report.end_time == 5.0

    def test_templates_deduplicated_in_order(self):
        events = [
            ParsedLog(record=make_record("a"), template_id=0, template="a"),
            ParsedLog(record=make_record("b"), template_id=1, template="b"),
            ParsedLog(record=make_record("a"), template_id=0, template="a"),
        ]
        assert _report(events).templates == ("a", "b")

    def test_alert_transitions_are_pure(self):
        event = ParsedLog(record=make_record("x"), template_id=0, template="x")
        alert = ClassifiedAlert(report=_report([event]), pool="default",
                                criticality="low")
        moved = alert.moved_to("team-a")
        edited = moved.with_criticality("high")
        assert alert.pool == "default"
        assert moved.pool == "team-a" and moved.criticality == "low"
        assert edited.criticality == "high"


class TestPipelineEdges:
    def test_training_twice_replaces_detector_state(self, cloud_small):
        system = Pipeline(detector=InvariantMiningDetector())
        cut = len(cloud_small.records) // 2
        system.fit(cloud_small.records[:cut])
        first_templates = system.stats().templates_discovered
        system.fit(cloud_small.records)
        assert system.stats().templates_discovered >= first_templates

    def test_supervised_detector_receives_session_labels(self, cloud_small):
        system = Pipeline(detector=LogRobustDetector(epochs=2))
        labels = {
            session_id: truth.anomalous
            for session_id, truth in cloud_small.sessions.items()
        }
        system.fit(cloud_small.records, labels_by_session=labels)
        # With real labels present the classifier must not degenerate.
        assert not system.detector._degenerate

    def test_min_window_events_filters_tiny_sessions(self, cloud_small):
        spec = PipelineSpec(min_window_events=10_000)
        system = Pipeline(spec, detector=InvariantMiningDetector())
        with pytest.raises(ValueError):
            # Everything filtered: the detector sees no sessions.
            system.fit(cloud_small.records)

    def test_run_on_empty_stream(self, cloud_small):
        system = Pipeline(detector=InvariantMiningDetector())
        system.fit(cloud_small.records)
        assert system.run_all([]) == []

    def test_structured_extraction_spec_reaches_parser(self, cloud_json):
        spec = PipelineSpec(extract_structured=True)
        system = Pipeline(spec, detector=InvariantMiningDetector())
        system.fit(cloud_json.records)
        assert system.parser.extract_structured

    def test_stats_accumulate_across_runs(self, cloud_small):
        system = Pipeline(detector=InvariantMiningDetector())
        cut = len(cloud_small.records) // 2
        system.fit(cloud_small.records[:cut])
        system.run_all(cloud_small.records[cut:])
        first = system.stats().windows_scored
        system.run_all(cloud_small.records[cut:])
        assert system.stats().windows_scored == 2 * first
