"""Telemetry must be byte-transparent: instrumentation reads clocks
and counters, never state, so alerts are identical with telemetry on
or off — under every executor, in batch and in streaming mode.  This
is the contract that makes it safe to run production pipelines
instrumented."""

import pytest

from repro.api import Pipeline, PipelineSpec
from repro.datasets import generate_cloud_platform


def _alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, tuple(alert.report.detection.reasons),
            alert.pool, alert.criticality)


@pytest.fixture(scope="module")
def corpus():
    data = generate_cloud_platform(sessions=60, anomaly_rate=0.1, seed=11)
    cut = len(data.records) * 6 // 10
    return data.records[:cut], data.records[cut:]


def _run(spec: PipelineSpec, corpus) -> list:
    train, live = corpus
    with Pipeline.from_spec(spec) as pipeline:
        pipeline.fit(train)
        alerts = pipeline.process(live)
        if pipeline.streaming:
            alerts += pipeline.flush()
        if pipeline.telemetry_enabled:
            # Exposition itself must also be side-effect free; snapshot
            # mid-run and keep going.
            assert pipeline.telemetry() is not None
    return [_alert_key(alert) for alert in alerts]


class TestOfflineNeutrality:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_sharded_alerts_identical_with_telemetry(self, corpus, executor):
        base = dict(shards=2, detector_shards=2, detector="keyword",
                    executor=executor, batch_size=64)
        dark = _run(PipelineSpec(**base), corpus)
        lit = _run(PipelineSpec(**base, telemetry={"enabled": True}),
                   corpus)
        assert dark, "corpus must produce alerts for the claim to bite"
        assert lit == dark

    def test_single_instance_alerts_identical(self, corpus):
        dark = _run(PipelineSpec(detector="keyword"), corpus)
        lit = _run(PipelineSpec(detector="keyword",
                                telemetry={"enabled": True}), corpus)
        assert lit == dark


class TestStreamingNeutrality:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_streaming_sharded_alerts_identical(self, corpus, executor):
        base = dict(shards=2, detector_shards=2, detector="keyword",
                    executor=executor, streaming=True,
                    session_timeout=10.0)
        dark = _run(PipelineSpec(**base), corpus)
        lit = _run(PipelineSpec(**base, telemetry={"enabled": True}),
                   corpus)
        assert dark
        assert lit == dark

    def test_per_record_path_identical(self, corpus):
        train, live = corpus
        results = []
        for telemetry in ({}, {"enabled": True}):
            spec = PipelineSpec(detector="keyword", streaming=True,
                                session_timeout=10.0, telemetry=telemetry)
            with Pipeline.from_spec(spec) as pipeline:
                pipeline.fit(train)
                alerts = []
                for record in live:
                    alerts += pipeline.process_record(record)
                alerts += pipeline.flush()
            results.append([_alert_key(alert) for alert in alerts])
        assert results[0] == results[1]


class TestStatsNeutrality:
    def test_pipeline_stats_identical_with_telemetry(self, corpus):
        train, live = corpus
        counters = []
        for telemetry in ({}, {"enabled": True}):
            spec = PipelineSpec(detector="keyword", shards=2,
                                telemetry=telemetry)
            with Pipeline.from_spec(spec) as pipeline:
                pipeline.fit(train)
                pipeline.process(live)
                stats = pipeline.stats()
                counters.append((stats.records_parsed,
                                 stats.templates_discovered,
                                 stats.windows_scored,
                                 stats.anomalies_detected,
                                 stats.alerts_classified))
        assert counters[0] == counters[1]
