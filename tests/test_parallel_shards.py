"""Parallel shard execution: executor-independence and read-only measurement.

The concurrency contract mirrors the batching contract: the executor
may only change *where* shard work runs, never *what* comes out.
Every test here runs the same workload under the serial reference and
a concurrent executor and compares full structured output — parsed
events, shard loads, reconciled templates, and classified alerts.

Also pins the measurement bugfix: ``consistency_with`` must be
strictly read-only (no pool deliveries, no report ids consumed, no
shard Drain learning) — measuring a system must not perturb it.
"""

from __future__ import annotations

import pytest

from conftest import make_record
from repro.api import Pipeline, PipelineSpec
from repro.core.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.detection import InvariantMiningDetector
from repro.parsing import DistributedDrain, default_masker


def _alert_shape(alert):
    return (
        alert.report.report_id,
        alert.report.session_id,
        tuple(
            (event.template_id, event.template, event.variables,
             event.record.message)
            for event in alert.report.events
        ),
        alert.report.detection.anomalous,
        round(alert.report.detection.score, 12),
        alert.pool,
        alert.criticality,
    )


@pytest.fixture(params=["thread", "process"])
def concurrent_executor(request):
    executor = {"thread": ThreadedExecutor, "process": ProcessExecutor}[
        request.param
    ](max_workers=3)
    yield executor
    executor.close()


class TestDistributedDrainExecutors:
    def test_parse_batch_identical_across_executors(
        self, cloud_small, concurrent_executor
    ):
        reference = DistributedDrain(shards=3, masker=default_masker(),
                                     executor=SerialExecutor())
        concurrent = DistributedDrain(shards=3, masker=default_masker(),
                                      executor=concurrent_executor)
        expected = reference.parse_batch(cloud_small.records)
        actual = concurrent.parse_batch(cloud_small.records)
        assert actual == expected
        assert concurrent.shard_loads == reference.shard_loads
        assert concurrent.global_templates() == reference.global_templates()
        assert concurrent.template_count == reference.template_count

    def test_chunked_parsing_keeps_shard_state_across_batches(
        self, cloud_small, concurrent_executor
    ):
        # Micro-batches advance shard state between fan-outs; under the
        # process executor this exercises the reinstall hand-back.
        reference = DistributedDrain(shards=3, masker=default_masker(),
                                     executor=SerialExecutor())
        concurrent = DistributedDrain(shards=3, masker=default_masker(),
                                      executor=concurrent_executor)
        records = cloud_small.records
        expected, actual = [], []
        for start in range(0, len(records), 64):
            expected.extend(reference.parse_batch(records[start:start + 64]))
            actual.extend(concurrent.parse_batch(records[start:start + 64]))
        assert actual == expected
        assert concurrent.template_count == reference.template_count

    def test_template_string_resolves_every_global_id(self, cloud_small):
        parser = DistributedDrain(shards=3, masker=default_masker())
        parsed = parser.parse_batch(cloud_small.records)
        for event in parsed:
            assert isinstance(parser.template_string(event.template_id), str)


class TestShardedMoniLogExecutors:
    def _build(self, records, executor) -> Pipeline:
        return Pipeline(
            PipelineSpec(shards=3, detector_shards=2),
            detector_factory=lambda shard: InvariantMiningDetector(),
            executor=executor,
        ).fit(records)

    def test_alerts_identical_across_executors(
        self, hdfs_small, concurrent_executor
    ):
        records = hdfs_small.records
        cut = len(records) * 6 // 10
        serial = self._build(records[:cut], SerialExecutor())
        concurrent = self._build(records[:cut], concurrent_executor)
        expected = serial.run_all(records[cut:])
        actual = concurrent.run_all(records[cut:])
        assert expected, "the HDFS fixture must produce alerts"
        assert [_alert_shape(a) for a in actual] == [
            _alert_shape(a) for a in expected
        ]
        assert concurrent.parser.shard_loads == serial.parser.shard_loads

    def test_executor_resolves_from_spec(self):
        system = Pipeline(PipelineSpec(shards=4, executor="thread"))
        assert isinstance(system.executor, ThreadedExecutor)
        assert system.parser.executor is system.executor
        system.executor.close()

    def test_explicit_executor_overrides_spec(self):
        explicit = SerialExecutor()
        system = Pipeline(PipelineSpec(shards=4, executor="thread"),
                          executor=explicit)
        assert system.executor is explicit

    def test_rejects_bad_shard_counts(self):
        with pytest.raises(ValueError, match="detector_shards"):
            Pipeline(PipelineSpec(shards=4, detector_shards=0))
        with pytest.raises(ValueError, match="shards"):
            Pipeline(PipelineSpec(shards=-1))

    def test_context_manager_closes_the_executor(self):
        with Pipeline(PipelineSpec(shards=4),
                      executor=ThreadedExecutor(max_workers=2)) as system:
            assert system.executor.map(len, [[1], [2, 3]]) == [1, 2]
        assert system.executor._pool is None

    def test_unsessioned_records_group_per_source(self):
        # Unsessioned events must form per-source pseudo-sessions (the
        # streaming sessionizer's scheme), not one catch-all window:
        # every window's events all carry the key it routes by.
        records = []
        for index in range(12):
            source = ("api", "db")[index % 2]
            records.append(make_record(
                f"tick {index} from worker", timestamp=float(index),
                source=source, sequence=index,
            ))
        system = Pipeline(
            PipelineSpec(shards=2, detector_shards=2),
            detector_factory=lambda shard: InvariantMiningDetector(),
        )
        system.fit(records)  # two pseudo-sessions cover both shards
        from repro.core.distributed import _sessions_by_key
        parsed = system.parser.parse_batch(records)
        grouped = _sessions_by_key(parsed)
        assert sorted(grouped) == ["source:api", "source:db"]
        for key, events in grouped.items():
            assert all(event.windowing_key == key for event in events)


class TestConsistencyWithIsReadOnly:
    def _snapshot(self, system: Pipeline):
        return (
            system._report_counter,
            {name: len(system.pools.pool(name))
             for name in system.pools.pool_names},
            system.parser.template_count,
            [parser.store.generation for parser in system.parser.parsers],
            [len(parser.store) for parser in system.parser.parsers],
            system.parser.shard_loads,
        )

    def test_pools_reports_and_parser_state_untouched(self, hdfs_small):
        records = hdfs_small.records
        cut = len(records) * 6 // 10
        system = Pipeline(
            PipelineSpec(shards=3, detector_shards=2),
            detector_factory=lambda shard: InvariantMiningDetector(),
        ).fit(records[:cut])
        # Produce real state first so the probe has something to spoil.
        alerts = system.run_all(records[cut:])
        reference = {record.session_id: record.is_anomalous
                     for record in records[cut:]}
        before = self._snapshot(system)
        system.consistency_with(reference, records[cut:])
        assert self._snapshot(system) == before
        # And the live system still scores identically afterwards.
        rerun = Pipeline(
            PipelineSpec(shards=3, detector_shards=2),
            detector_factory=lambda shard: InvariantMiningDetector(),
        ).fit(records[:cut]).run_all(records[cut:])
        assert [a.report.session_id for a in rerun] == [
            a.report.session_id for a in alerts
        ]

    def test_measurement_is_repeatable(self, hdfs_small):
        # Pre-fix, each call perturbed the Drain trees and counters, so
        # back-to-back calls could disagree; read-only measurement is
        # idempotent by construction.
        records = hdfs_small.records
        cut = len(records) * 6 // 10
        system = Pipeline(
            PipelineSpec(shards=3, detector_shards=2),
            detector_factory=lambda shard: InvariantMiningDetector(),
        ).fit(records[:cut])
        reference = {record.session_id: record.is_anomalous
                     for record in records[cut:]}
        first = system.consistency_with(reference, records[cut:])
        second = system.consistency_with(reference, records[cut:])
        assert first == second

    def test_requires_training(self):
        system = Pipeline(
            PipelineSpec(shards=4, detector_shards=2),
            detector_factory=lambda shard: InvariantMiningDetector(),
        )
        with pytest.raises(RuntimeError, match="fit"):
            system.consistency_with({}, [])


class TestStreamingShardedPipeline:
    def _build(self, records, executor) -> Pipeline:
        return Pipeline(
            PipelineSpec(shards=3, detector_shards=2),
            detector_factory=lambda shard: InvariantMiningDetector(),
            executor=executor,
        ).fit(records)

    def test_requires_trained_system(self):
        system = Pipeline(
            PipelineSpec(shards=4, detector_shards=2, streaming=True),
            detector_factory=lambda shard: InvariantMiningDetector(),
        )
        with pytest.raises(RuntimeError, match="fit"):
            system.process_record(make_record("x"))

    def test_matches_batch_run_when_nothing_expires_early(
        self, hdfs_small, concurrent_executor
    ):
        # With an unreachable timeout every session closes at flush in
        # first-seen order — exactly the batch path's order — so the
        # streaming facade must reproduce run_all byte for byte.
        records = hdfs_small.records
        cut = len(records) * 6 // 10
        batch = self._build(records[:cut], SerialExecutor())
        expected = batch.run_all(records[cut:])
        assert expected

        streaming_system = self._build(records[:cut], concurrent_executor)
        live = streaming_system.stream(
            session_timeout=1e9, max_session_events=10 ** 6
        )
        actual = []
        for start in range(0, len(records) - cut, 64):
            actual.extend(live.process(records[cut:][start:start + 64]))
        actual.extend(live.flush())
        assert [_alert_shape(a) for a in actual] == [
            _alert_shape(a) for a in expected
        ]

    def test_process_loop_matches_process_batch(self, cloud_small):
        records = cloud_small.records
        cut = len(records) * 6 // 10

        def live(executor):
            return self._build(records[:cut], executor).stream(
                session_timeout=20.0,
                max_session_events=64,
            )

        loop = live(SerialExecutor())
        expected = []
        for record in records[cut:]:
            expected.extend(loop.process_record(record))
        expected.extend(loop.flush())

        threaded = ThreadedExecutor(max_workers=3)
        try:
            batch = live(threaded)
            actual = []
            for start in range(0, len(records) - cut, 50):
                actual.extend(
                    batch.process(records[cut:][start:start + 50])
                )
            actual.extend(batch.flush())
        finally:
            threaded.close()
        assert [_alert_shape(a) for a in actual] == [
            _alert_shape(a) for a in expected
        ]

    def test_process_stream_flushes_at_end(self, cloud_small):
        records = cloud_small.records
        cut = len(records) * 6 // 10
        live = self._build(records[:cut], SerialExecutor()).stream(
            session_timeout=1e9)
        streamed = list(live.run(records[cut:]))
        assert live.sessionizer.open_sessions == 0
        reference = self._build(records[:cut], SerialExecutor())
        assert [_alert_shape(a) for a in streamed] == [
            _alert_shape(a) for a in reference.run_all(records[cut:])
        ]

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            PipelineSpec(shards=3, batch_size=-1)
