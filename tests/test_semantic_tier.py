"""Tests for the semantic detection tier.

:class:`TemplateEmbeddingCache` generation discipline + counters,
:class:`LofDetector` discrimination and provenance,
:class:`RollingWindowDetector` flood/burst coverage, and both
detectors' registry-to-pipeline integration (spec resolution, executor
parity, embedding-cache telemetry families).
"""

import pickle
import threading

import numpy as np
import pytest

from repro.api import Pipeline, PipelineSpec
from repro.api.registry import REGISTRY
from repro.detection import (
    LofDetector,
    RollingWindowDetector,
    TemplateEmbeddingCache,
)
from repro.detection.semantics import SemanticVectorizer
from repro.detection.windows import sessions_from_parsed
from repro.logs.record import LogRecord, Severity
from repro.parsing import DrainParser

from conftest import make_record  # noqa: F401  (shared fixture import)

_BASE_MESSAGES = [
    "request {r} accepted from client {c}",
    "request {r} fetched {n} bytes from disk",
    "cache lookup hit for key {k}",
    "request {r} completed fine with status 200",
    "heartbeat received from node {b}",
    "connection {c} opened to backend {b}",
    "connection {c} closed normally",
    "scheduled job {k} finished in {n} ms",
]
_ALIEN = "irrecoverable data corruption detected on sector 9 halting"


def _records(messages, session_id, start=0.0, step=1.0):
    return [
        LogRecord(timestamp=start + index * step, source="app",
                  severity=Severity.INFO, message=message,
                  session_id=session_id, sequence=index)
        for index, message in enumerate(messages)
    ]


def _session_messages(s):
    return [
        base.format(r=s * 100, c=s % 9, b=(s + t) % 5,
                    n=512 * (t + 1), k=s * 10 + t)
        for t, base in enumerate(_BASE_MESSAGES)
    ]


@pytest.fixture
def corpus():
    # Function-scoped on purpose: Drain generalizes templates as it
    # parses, so a shared parser would leak one test's template drift
    # into the next test's "known template" expectations.
    parser = DrainParser()
    records = []
    for s in range(12):
        records += _records(_session_messages(s), f"train-{s}",
                            start=s * 100.0)
    train = list(sessions_from_parsed(parser.parse_all(records)).values())
    return parser, train


def _one_session(parser, messages, session_id, start, step=1.0):
    parsed = parser.parse_all(
        _records(messages, session_id, start=start, step=step))
    return list(sessions_from_parsed(parsed).values())[0]


class TestTemplateEmbeddingCache:
    def _cache(self, **kwargs):
        cache = TemplateEmbeddingCache(
            SemanticVectorizer(dimension=16), **kwargs)
        cache.vectorizer.fit(["request accepted", "request completed"])
        return cache

    def test_hit_miss_counters(self):
        cache = self._cache()
        first = cache.vector("request accepted")
        second = cache.vector("request accepted")
        assert np.array_equal(first, second)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.embed_calls == 1

    def test_lru_eviction_beyond_capacity(self):
        cache = self._cache(capacity=2)
        cache.vector("a b")
        cache.vector("c d")
        cache.vector("e f")  # evicts "a b"
        assert cache.evictions == 1
        assert len(cache) == 2
        cache.vector("c d")  # still memoized
        assert cache.hits == 1

    def test_observe_past_tolerance_advances_generation(self):
        cache = self._cache(idf_tolerance=0.05)
        assert cache.generation == 0
        cache.observe("completely fresh statement body")
        assert cache.generation == 1

    def test_observe_under_tolerance_keeps_entries_live(self):
        cache = self._cache(idf_tolerance=100.0)
        cache.vector("request accepted")
        cache.observe("completely fresh statement body")
        cache.vector("request accepted")
        assert cache.generation == 0
        assert cache.hits == 1 and cache.rebuilds == 0

    def test_stale_generation_recomputes_as_rebuild(self):
        cache = self._cache(idf_tolerance=0.05)
        before = cache.vector("request accepted")
        cache.observe("completely fresh statement body")
        after = cache.vector("request accepted")
        assert cache.rebuilds == 1 and cache.misses == 1
        # The rebuilt vector reflects the post-drift IDF weighting.
        assert not np.allclose(before, after)

    def test_drift_accumulates_across_observations(self):
        # Each tiny shift stays under tolerance; enough of them cross.
        cache = self._cache(idf_tolerance=0.75)
        for i in range(40):
            cache.observe("request accepted")
            if cache.generation:
                break
        assert cache.generation == 1

    def test_tfidf_disabled_never_invalidates(self):
        cache = TemplateEmbeddingCache(
            SemanticVectorizer(dimension=16, use_tfidf=False),
            idf_tolerance=0.0)
        cache.vector("request accepted")
        cache.observe("completely fresh statement body")
        assert cache.generation == 0  # unweighted vectors cannot go stale

    def test_validation(self):
        with pytest.raises(ValueError):
            TemplateEmbeddingCache(capacity=0)
        with pytest.raises(ValueError):
            TemplateEmbeddingCache(idf_tolerance=-0.1)

    def test_pickle_drops_and_restores_lock(self):
        cache = self._cache()
        cache.vector("request accepted")
        clone = pickle.loads(pickle.dumps(cache))
        assert isinstance(clone._lock, type(threading.Lock()))
        assert np.array_equal(clone.vector("request accepted"),
                              cache.vector("request accepted"))

    def test_thread_safety_under_concurrent_lookups(self):
        cache = self._cache(capacity=8)
        templates = [f"statement number {i} body" for i in range(16)]
        errors = []

        def worker(offset):
            try:
                for i in range(300):
                    template = templates[(i + offset) % len(templates)]
                    vector = cache.vector(template)
                    assert vector.shape == (16,)
                    if i % 50 == 0:
                        cache.observe(template)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] + stats["rebuilds"] == 1200
        assert len(cache) <= 8

    def test_stats_snapshot_shape(self):
        stats = self._cache().stats()
        assert set(stats) == {"hits", "misses", "evictions", "rebuilds",
                              "entries", "generation", "embed_calls"}


class TestLofDetector:
    def test_registered(self):
        assert "lof" in REGISTRY.names("detector")
        detector = REGISTRY.create("detector", "lof", {"k": 2, "seed": 3})
        assert detector.k == 2 and detector.seed == 3

    def test_flags_alien_passes_benign_variant(self, corpus):
        parser, train = corpus
        detector = LofDetector().fit(train)
        benign = _one_session(
            parser,
            ["request 990 accepted from client 8",
             "request 990 fetched 2048 bytes from disk",
             "request 990 completed okay with status 200"],
            "benign", 5000.0)
        alien_messages = _session_messages(50)
        alien_messages.insert(2, _ALIEN)
        alien = _one_session(parser, alien_messages, "alien", 6000.0)
        assert not detector.detect(benign).anomalous
        result = detector.detect(alien)
        assert result.anomalous
        assert result.score >= 1.0

    def test_reasons_carry_nearest_neighbour_provenance(self, corpus):
        parser, train = corpus
        detector = LofDetector().fit(train)
        messages = _session_messages(60)
        messages.append(_ALIEN)
        result = detector.detect(
            _one_session(parser, messages, "alien", 7000.0))
        assert result.anomalous
        (reason,) = result.reasons
        assert "nearest:" in reason and "lof=" in reason
        assert reason.count("template#") >= detector.k + 1

    def test_known_templates_are_never_outliers(self, corpus):
        parser, train = corpus
        detector = LofDetector().fit(train)
        replay = _one_session(parser, _session_messages(3), "replay", 8000.0)
        result = detector.detect(replay)
        assert not result.anomalous
        assert result.score == 0.0

    def test_deterministic_across_seeds_and_pickling(self, corpus):
        parser, train = corpus
        messages = _session_messages(70)
        messages.insert(1, _ALIEN)
        session = _one_session(parser, messages, "alien", 9000.0)
        results = []
        for seed in (0, 7):
            detector = LofDetector(seed=seed).fit(train)
            detector = pickle.loads(pickle.dumps(detector))
            results.append(detector.detect(session))
        assert results[0] == results[1]

    def test_observation_rebuilds_library_on_drift(self, corpus):
        parser, train = corpus
        detector = LofDetector(idf_tolerance=0.05).fit(train)
        built_under = detector._matrix_generation
        novelty = _one_session(
            parser,
            ["entirely novel maintenance chatter begins now",
             "request 30 completed fine with status 200"],
            "novel", 10000.0)
        detector.detect(novelty)
        assert detector.embedding_cache.generation > built_under
        assert detector._matrix_generation == \
            detector.embedding_cache.generation

    def test_single_template_library_uses_distance_fallback(self, corpus):
        parser, _ = corpus
        train = [_one_session(parser, ["heartbeat received from node 1"],
                              "mono", 0.0)]
        detector = LofDetector().fit(train)
        alien = _one_session(parser, [_ALIEN], "alien", 100.0)
        assert detector.detect(alien).anomalous

    def test_unfitted_raises(self, corpus):
        parser, _ = corpus
        session = _one_session(parser, ["anything goes"], "s", 0.0)
        with pytest.raises(RuntimeError):
            LofDetector().detect(session)
        with pytest.raises(ValueError):
            LofDetector().fit([])

    def test_validation(self):
        with pytest.raises(ValueError):
            LofDetector(k=0)
        with pytest.raises(ValueError):
            LofDetector(lof_threshold=0.0)
        with pytest.raises(ValueError):
            LofDetector(distance_threshold=-1.0)


class TestRollingWindowDetector:
    def test_registered(self):
        assert "rollingwindow" in REGISTRY.names("detector")
        detector = REGISTRY.create(
            "detector", "rollingwindow", {"window_seconds": 5.0})
        assert detector.window_seconds == 5.0

    def test_flags_flood(self, corpus):
        parser, train = corpus
        detector = RollingWindowDetector(window_seconds=10.0).fit(train)
        flood = _one_session(
            parser,
            [f"request {i} accepted from client 1" for i in range(60)],
            "flood", 20000.0, step=0.05)
        result = detector.detect(flood)
        assert result.anomalous
        assert any("flood" in reason for reason in result.reasons)

    def test_flags_repetition_burst(self, corpus):
        parser, train = corpus
        detector = RollingWindowDetector(window_seconds=10.0).fit(train)
        burst = _one_session(
            parser, ["cache lookup hit for key 55"] * 40,
            "burst", 30000.0, step=5.0)  # slow: rate stays normal
        result = detector.detect(burst)
        assert result.anomalous
        assert any("burst" in reason for reason in result.reasons)

    def test_passes_normal_traffic(self, corpus):
        parser, train = corpus
        detector = RollingWindowDetector(window_seconds=10.0).fit(train)
        result = detector.detect(
            _one_session(parser, _session_messages(4), "ok", 40000.0))
        assert not result.anomalous
        assert result.score < 1.0

    def test_min_events_floors_trivial_floods(self, corpus):
        parser, _ = corpus
        sparse = [_one_session(parser, ["heartbeat received from node 1"],
                               "sparse", 0.0)]
        detector = RollingWindowDetector(
            window_seconds=10.0, min_events=8).fit(sparse)
        # 4 events in a window: above 3x the trained max of 1, but
        # under the absolute floor — not a flood worth waking anyone.
        small = _one_session(
            parser, [f"request {i} accepted" for i in range(4)],
            "small", 100.0, step=0.1)
        assert not detector.detect(small).anomalous

    def test_unfitted_and_validation(self):
        with pytest.raises(ValueError):
            RollingWindowDetector(window_seconds=0.0)
        with pytest.raises(ValueError):
            RollingWindowDetector(rate_factor=0.5)
        with pytest.raises(ValueError):
            RollingWindowDetector().fit([])


def _stream_records(prefix, count, alien_every=0):
    records = []
    for s in range(count):
        start = s * 40.0
        request = s * 1000 + 17
        messages = (
            [f"request {request} accepted"]
            + [f"request {request} fetched 4096 bytes"] * 3
            + ([_ALIEN] if alien_every and s % alien_every == 2 else [])
            + [f"request {request} completed fine"]
        )
        for sequence, message in enumerate(messages):
            records.append(LogRecord(
                timestamp=round(start + sequence * 0.040, 3),
                source=prefix, severity=Severity.INFO, message=message,
                session_id=f"{prefix}-{s}", sequence=sequence,
            ))
    return records


def _alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, alert.pool, alert.criticality)


class TestPipelineIntegration:
    def _spec(self, detector, executor="serial", telemetry=None):
        payload = {
            "detector": detector, "executor": executor, "shards": 2,
            "detector_shards": 2, "batch_size": 64,
            "session_timeout": 30.0,
        }
        if telemetry:
            payload["telemetry"] = telemetry
        return PipelineSpec.from_dict(payload)

    def test_lof_resolves_from_spec_and_alerts(self):
        history = _stream_records("hist", 8)
        live = _stream_records("live", 30, alien_every=5)
        with Pipeline.from_spec(self._spec("lof")) as pipeline:
            pipeline.fit(history)
            alerts = pipeline.process(live)
        assert alerts
        assert all("live-" in alert.report.session_id for alert in alerts)

    def test_serial_and_thread_alerts_identical(self):
        history = _stream_records("hist", 8)
        live = _stream_records("live", 30, alien_every=5)
        keys = {}
        for executor in ("serial", "thread"):
            with Pipeline.from_spec(self._spec("lof", executor)) as pipeline:
                pipeline.fit(history)
                keys[executor] = [
                    _alert_key(alert) for alert in pipeline.process(live)
                ]
        assert keys["serial"] == keys["thread"]

    def test_alert_provenance_includes_neighbours(self):
        history = _stream_records("hist", 8)
        live = _stream_records("live", 20, alien_every=5)
        spec = self._spec("lof", telemetry={"enabled": True,
                                            "tracing": True})
        with Pipeline.from_spec(spec) as pipeline:
            pipeline.fit(history)
            alerts = pipeline.process(live)
            assert alerts
            provenance = pipeline.explain(alerts[0].report.report_id)
        assert any("nearest:" in reason for reason in provenance.reasons)
        assert any("template#" in reason for reason in provenance.reasons)

    def test_embedding_cache_telemetry_families(self):
        history = _stream_records("hist", 8)
        live = _stream_records("live", 20, alien_every=5)
        spec = self._spec("lof", telemetry={"enabled": True})
        with Pipeline.from_spec(spec) as pipeline:
            pipeline.fit(history)
            pipeline.process(live)
            metrics = pipeline._telemetry.snapshot()["metrics"]
        for family in ("monilog_embedding_cache_hits_total",
                       "monilog_embedding_cache_misses_total",
                       "monilog_embedding_cache_evictions_total",
                       "monilog_embedding_cache_rebuilds_total",
                       "monilog_embedding_cache_entries",
                       "monilog_embedding_cache_generation",
                       "monilog_embedding_embed_calls_total"):
            assert family in metrics, family
        misses = metrics["monilog_embedding_cache_misses_total"]
        assert misses["values"][0]["value"] > 0

    def test_rollingwindow_resolves_and_flags_floods(self):
        history = _stream_records("hist", 8)
        flood = []
        for i in range(120):
            flood.append(LogRecord(
                timestamp=round(5000.0 + i * 0.01, 3), source="live",
                severity=Severity.INFO,
                message=f"request {i} fetched 4096 bytes",
                session_id="live-flood", sequence=i,
            ))
        with Pipeline.from_spec(self._spec("rollingwindow")) as pipeline:
            pipeline.fit(history)
            alerts = pipeline.process(flood)
        assert alerts
        assert alerts[0].report.session_id == "live-flood"
