"""Tests for the counter-based detectors: PCA, IM, LogClustering."""

import pytest

from repro.detection import (
    InvariantMiningDetector,
    LogClusteringDetector,
    PcaDetector,
)
from repro.detection.invariants import Invariant
from repro.logs.record import ParsedLog

from conftest import make_record


def _session(template_ids, session="s"):
    return [
        ParsedLog(
            record=make_record(f"event {template_id}", session_id=session),
            template_id=template_id,
            template=f"event {template_id}",
        )
        for template_id in template_ids
    ]


def _normal_sessions(count=60):
    """Sessions following two normal flows: [0,1,1,2] and [0,1,1,2,3]."""
    sessions = []
    for index in range(count):
        flow = [0, 1, 1, 2] if index % 2 == 0 else [0, 1, 1, 2, 3]
        sessions.append(_session(flow, session=f"s{index}"))
    return sessions


class TestPcaDetector:
    def test_flags_deviant_count_vector(self):
        detector = PcaDetector(alpha=0.01)
        detector.fit(_normal_sessions())
        anomalous = _session([0, 1, 1, 1, 1, 1, 1, 2])  # wild counts
        assert detector.detect(anomalous).anomalous

    def test_accepts_normal_sessions(self):
        detector = PcaDetector(alpha=0.001)
        sessions = _normal_sessions()
        detector.fit(sessions)
        false_alarms = sum(
            detector.detect(session).anomalous for session in sessions
        )
        assert false_alarms <= len(sessions) * 0.05

    def test_needs_two_sessions(self):
        with pytest.raises(ValueError, match="at least 2"):
            PcaDetector().fit([_session([0])])

    def test_reasons_mention_threshold(self):
        detector = PcaDetector()
        detector.fit(_normal_sessions())
        result = detector.detect(_session([2, 2, 2, 2, 2, 2, 2, 2]))
        if result.anomalous:
            assert "Q-threshold" in result.reasons[0]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            PcaDetector().detect(_session([0]))

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="variance_retained"):
            PcaDetector(variance_retained=0.0)


class TestInvariantMining:
    def test_mines_ratio_invariants(self):
        detector = InvariantMiningDetector(min_cooccurrence=3)
        detector.fit(_normal_sessions())
        mined = {
            (invariant.a, invariant.b)
            for invariant in detector.invariants
        }
        # Every session has one '0' and two '1': invariant 2*x0 == 1*x1.
        assert (2, 1) in mined or (1, 2) in {
            (invariant.b, invariant.a) for invariant in detector.invariants
        }

    def test_flags_violations(self):
        detector = InvariantMiningDetector(min_cooccurrence=3)
        detector.fit(_normal_sessions())
        result = detector.detect(_session([0, 1, 2]))  # only one '1'
        assert result.anomalous
        assert any("invariant violated" in reason for reason in result.reasons)

    def test_flags_unseen_templates(self):
        detector = InvariantMiningDetector()
        detector.fit(_normal_sessions())
        result = detector.detect(_session([0, 1, 1, 2, 99]))
        assert result.anomalous
        assert any("unseen" in reason for reason in result.reasons)

    def test_accepts_normal(self):
        detector = InvariantMiningDetector(min_cooccurrence=3)
        sessions = _normal_sessions()
        detector.fit(sessions)
        assert not any(
            detector.detect(session).anomalous for session in sessions
        )

    def test_invariant_holds(self):
        import numpy as np

        invariant = Invariant(column_i=0, column_j=1, a=2, b=1)
        assert invariant.holds(np.array([1.0, 2.0]))
        assert not invariant.holds(np.array([1.0, 3.0]))

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="support"):
            InvariantMiningDetector(support=0.0)


class TestLogClustering:
    def test_builds_clusters_for_flow_variants(self):
        detector = LogClusteringDetector(cluster_threshold=0.1)
        detector.fit(_normal_sessions())
        assert detector.cluster_count == 2

    def test_flags_far_sessions(self):
        detector = LogClusteringDetector(cluster_threshold=0.3)
        detector.fit(_normal_sessions())
        result = detector.detect(_session([7, 7, 7, 8, 8]))
        assert result.anomalous
        assert result.score > 0.3

    def test_accepts_near_sessions(self):
        detector = LogClusteringDetector(cluster_threshold=0.3)
        sessions = _normal_sessions()
        detector.fit(sessions)
        assert not detector.detect(_session([0, 1, 1, 2])).anomalous

    def test_detect_threshold_separate_from_cluster(self):
        detector = LogClusteringDetector(
            cluster_threshold=0.1, detect_threshold=0.9
        )
        detector.fit(_normal_sessions())
        # Very lenient detection accepts even odd sessions.
        assert not detector.detect(_session([0, 2, 2, 2])).anomalous

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="cluster_threshold"):
            LogClusteringDetector(cluster_threshold=0.0)
