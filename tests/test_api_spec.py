"""Tests for PipelineSpec: loading, env overrides, aggregated validation."""

import json

import pytest

from repro.api import ConfigError, Pipeline, PipelineSpec
from repro.core.config import IngestConfig, MoniLogConfig


class TestDefaultsAndBridges:
    def test_defaults_valid(self):
        spec = PipelineSpec()
        assert spec.parser == "drain"
        assert spec.detector == "deeplog"
        assert spec.shards == 0

    def test_monilog_config_round_trip(self):
        config = MoniLogConfig(windowing="sliding", window_size=25,
                               use_masking=False, min_window_events=3)
        spec = PipelineSpec.from_config(config)
        assert spec.windowing == "sliding"
        assert spec.window_size == 25
        assert spec.masking is False
        back = spec.monilog_config()
        assert back == config

    def test_ingest_config_round_trip(self):
        ingest = IngestConfig(batch_size=32, credits=100, lateness=2.0)
        spec = PipelineSpec.from_config(None, ingest)
        assert spec.ingest_batch_size == 32
        assert spec.ingest_config() == ingest


class TestAggregatedValidation:
    def test_every_bad_knob_reported_at_once(self):
        with pytest.raises(ConfigError) as failure:
            PipelineSpec(windowing="bogus", window_size=0,
                         detector_shards=0, credits=0)
        message = str(failure.value)
        assert "4 problems" in message
        for field in ("windowing", "window_size", "detector_shards",
                      "credits"):
            assert field in message
        assert failure.value.errors[0].startswith("windowing:")

    def test_unknown_component_names_are_field_errors(self):
        with pytest.raises(ConfigError) as failure:
            PipelineSpec(parser="dren", detector="deeplug")
        message = str(failure.value)
        assert "parser" in message and "dren" in message
        assert "detector" in message and "deeplug" in message
        assert "drain" in message  # choices listed

    def test_component_options_checked_against_signature(self):
        with pytest.raises(ConfigError, match="detector_options"):
            PipelineSpec(detector="deeplog",
                         detector_options={"not_a_knob": 1})

    def test_sharding_cross_field_rules(self):
        with pytest.raises(ConfigError, match="session windowing"):
            PipelineSpec(shards=2, windowing="sliding")
        with pytest.raises(ConfigError, match="cannot shard"):
            PipelineSpec(shards=2, parser="spell")

    def test_source_tables_validated(self):
        with pytest.raises(ConfigError, match="sources"):
            PipelineSpec(sources=[{"path": "x.log"}])  # no type
        with pytest.raises(ConfigError, match="sources"):
            PipelineSpec(sources=[{"type": "file", "bogus": 1}])

    def test_legacy_configs_also_aggregate(self):
        with pytest.raises(ConfigError) as failure:
            MoniLogConfig(windowing="bogus", window_size=0)
        assert "windowing" in str(failure.value)
        assert "window_size" in str(failure.value)
        with pytest.raises(ConfigError) as failure:
            IngestConfig(batch_size=0, credits=0, poll_interval=0)
        assert "3 problems" in str(failure.value)

    def test_config_error_is_a_value_error(self):
        # Callers that caught ValueError keep working.
        with pytest.raises(ValueError):
            PipelineSpec(window_size=0)


class TestLoading:
    def test_from_dict_rejects_unknown_fields_aggregated(self):
        with pytest.raises(ConfigError) as failure:
            PipelineSpec.from_dict({"detectr": "pca", "window_size": 0})
        message = str(failure.value)
        assert "detectr" in message and "unknown field" in message
        assert "window_size" in message

    def test_from_toml(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'parser = "drain"\n'
            'detector = "keyword"\n'
            'shards = 3\n'
            'executor = "thread"\n'
            "[parser_options]\n"
            "similarity_threshold = 0.5\n"
            "[[sources]]\n"
            'type = "file"\n'
            'path = "live.log"\n'
        )
        spec = PipelineSpec.from_file(path)
        assert spec.detector == "keyword"
        assert spec.shards == 3
        assert spec.parser_options == {"similarity_threshold": 0.5}
        assert spec.sources == [{"type": "file", "path": "live.log"}]

    def test_from_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"detector": "pca", "batch_size": 64}))
        spec = PipelineSpec.from_file(path)
        assert spec.detector == "pca"
        assert spec.batch_size == 64

    def test_bad_toml_reports_the_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("= nonsense")
        with pytest.raises(ConfigError, match="broken.toml"):
            PipelineSpec.from_file(path)

    def test_replace_revalidates(self):
        spec = PipelineSpec()
        with pytest.raises(ConfigError, match="shards"):
            spec.replace(shards=-1)


class TestEnvOverrides:
    def test_scalar_fields_override(self):
        spec = PipelineSpec().with_env({
            "MONILOG_DETECTOR": "keyword",
            "MONILOG_SHARDS": "4",
            "MONILOG_STREAMING": "true",
            "MONILOG_SESSION_TIMEOUT": "12.5",
        })
        assert spec.detector == "keyword"
        assert spec.shards == 4
        assert spec.streaming is True
        assert spec.session_timeout == 12.5

    def test_no_env_is_identity(self):
        spec = PipelineSpec()
        assert spec.with_env({}) is spec

    def test_bad_env_values_aggregate(self):
        with pytest.raises(ConfigError) as failure:
            PipelineSpec().with_env({
                "MONILOG_SHARDS": "many",
                "MONILOG_STREAMING": "perhaps",
            })
        message = str(failure.value)
        assert "MONILOG_SHARDS" in message
        assert "MONILOG_STREAMING" in message

    def test_executor_env_spelling_matches_legacy_variable(self):
        # MONILOG_EXECUTOR was already the suite-wide executor switch;
        # the spec's env namespace maps it onto the same field.
        spec = PipelineSpec().with_env({"MONILOG_EXECUTOR": "thread"})
        assert spec.executor == "thread"


class TestPipelineFromSpec:
    def test_from_spec_accepts_dict_and_path(self, tmp_path):
        pipeline = Pipeline.from_spec({"detector": "keyword"})
        assert type(pipeline.detector).__name__ == "KeywordMatchDetector"
        path = tmp_path / "spec.toml"
        path.write_text('detector = "keyword"\nshards = 2\n')
        sharded = Pipeline.from_spec(path)
        assert sharded.sharded
        assert sharded.detector_shards == 1
        sharded.close()

    def test_instance_overrides_conflict_with_sharding(self):
        from repro.detection import InvariantMiningDetector

        with pytest.raises(ValueError, match="sharded"):
            Pipeline(PipelineSpec(shards=2),
                     detector=InvariantMiningDetector())
        with pytest.raises(ValueError, match="detector_factory"):
            Pipeline(PipelineSpec(),
                     detector_factory=lambda shard: None)

    def test_build_sources_through_registry(self, tmp_path):
        spec = PipelineSpec(sources=[
            {"type": "file", "path": str(tmp_path / "a.log")},
            {"type": "socket", "host": "localhost", "port": 9}])
        sources = spec.build_sources()
        assert [type(source).__name__ for source in sources] == [
            "FileTailSource", "SocketSource",
        ]


class TestObservabilityTables:
    def test_empty_tables_mean_disabled(self):
        spec = PipelineSpec()
        assert spec.telemetry_config() is None
        assert spec.autoscale_config() is None

    def test_tables_build_registry_validated_configs(self):
        spec = PipelineSpec(
            telemetry={"metrics_port": 0, "rate_window": 2.0},
            autoscale={"interval": 0.5, "max_credits": 1024},
        )
        telemetry = spec.telemetry_config()
        assert telemetry.enabled and telemetry.metrics_port == 0
        autoscale = spec.autoscale_config()
        assert autoscale.interval == 0.5
        assert autoscale.max_credits == 1024

    def test_enabled_false_disables_with_table_present(self):
        spec = PipelineSpec(telemetry={"enabled": False, "metrics_port": 1},
                            autoscale={"enabled": False})
        assert spec.telemetry_config() is None
        assert spec.autoscale_config() is None

    def test_unknown_table_options_aggregate_with_value_errors(self):
        with pytest.raises(ConfigError) as failure:
            PipelineSpec(telemetry={"bogus_knob": 1},
                         autoscale={"interval": -1})
        message = str(failure.value)
        assert "telemetry" in message and "bogus_knob" in message
        assert "autoscale" in message and "interval" in message

    def test_non_dict_table_rejected(self):
        with pytest.raises(ConfigError, match="telemetry"):
            PipelineSpec(telemetry="yes")

    def test_unknown_table_type_rejected(self):
        with pytest.raises(ConfigError, match="unknown telemetry"):
            PipelineSpec(telemetry={"type": "nope"})

    def test_tables_load_from_toml(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'detector = "keyword"\n'
            "[telemetry]\n"
            "metrics_port = 0\n"
            "[autoscale]\n"
            "interval = 2.5\n"
        )
        spec = PipelineSpec.from_file(path)
        assert spec.telemetry == {"metrics_port": 0}
        assert spec.autoscale_config().interval == 2.5

    def test_nested_env_overrides(self):
        spec = PipelineSpec(autoscale={"max_credits": 512}).with_env({
            "MONILOG_TELEMETRY_ENABLED": "true",
            "MONILOG_TELEMETRY_METRICS_PORT": "9100",
            "MONILOG_AUTOSCALE_INTERVAL": "0.75",
        })
        assert spec.telemetry == {"enabled": True, "metrics_port": 9100}
        # Env merges into the existing table, not over it.
        assert spec.autoscale == {"max_credits": 512, "interval": 0.75}

    def test_nested_env_disable_wins(self):
        spec = PipelineSpec(telemetry={"metrics_port": 1}).with_env(
            {"MONILOG_TELEMETRY_ENABLED": "0"})
        assert spec.telemetry_config() is None

    def test_bad_nested_env_values_aggregate(self):
        with pytest.raises(ConfigError) as failure:
            PipelineSpec().with_env({
                "MONILOG_AUTOSCALE_INTERVAL": "soon",
                "MONILOG_TELEMETRY_ENABLED": "perhaps",
            })
        message = str(failure.value)
        assert "MONILOG_AUTOSCALE_INTERVAL" in message
        assert "MONILOG_TELEMETRY_ENABLED" in message

    def test_option_only_env_does_not_arm_an_undeclared_table(self):
        """MONILOG_AUTOSCALE_INTERVAL exported globally tunes where
        autoscaling is declared; it must not enable it elsewhere."""
        spec = PipelineSpec().with_env(
            {"MONILOG_AUTOSCALE_INTERVAL": "2.0"})
        assert spec.autoscale == {"interval": 2.0, "enabled": False}
        assert spec.autoscale_config() is None
        # ...but the tuning is carried: a later explicit enable (CLI
        # flag or table) picks it up.
        armed = spec.replace(autoscale=dict(spec.autoscale, enabled=True))
        assert armed.autoscale_config().interval == 2.0

    def test_none_default_top_level_fields_stay_strings(self):
        """MONILOG_CHECKPOINT=2024 is a path, not a number."""
        spec = PipelineSpec().with_env({"MONILOG_CHECKPOINT": "2024"})
        assert spec.checkpoint == "2024"
        assert isinstance(spec.checkpoint, str)

    def test_wrongly_typed_table_values_aggregate_not_traceback(self):
        """A quoted number in a spec file must come back as a
        field-named ConfigError, not a raw TypeError."""
        with pytest.raises(ConfigError) as failure:
            PipelineSpec(telemetry={"rate_window": "fast"},
                         autoscale={"min_credits": "16"})
        message = str(failure.value)
        assert "telemetry" in message and "autoscale" in message

    def test_fractional_metrics_port_rejected_at_validation(self):
        with pytest.raises(ConfigError, match="metrics_port"):
            PipelineSpec().with_env(
                {"MONILOG_TELEMETRY_METRICS_PORT": "9100.5"})
