"""Tests for detection infrastructure: windows, count vectors, semantics."""

import numpy as np
import pytest

from repro.detection import (
    CountVectorizer,
    SemanticVectorizer,
    sessions_from_parsed,
    sliding_windows,
    time_windows,
)
from repro.logs.record import ParsedLog, WILDCARD

from conftest import make_record


def _event(template_id: int, template: str, *, session: str = "s",
           time: float = 0.0) -> ParsedLog:
    return ParsedLog(
        record=make_record(template.replace(WILDCARD, "7"),
                           session_id=session, timestamp=time),
        template_id=template_id,
        template=template,
    )


class TestSessionWindows:
    def test_groups_by_session_preserving_order(self):
        events = [
            _event(0, "a", session="x", time=0),
            _event(1, "b", session="y", time=1),
            _event(2, "c", session="x", time=2),
        ]
        sessions = sessions_from_parsed(events)
        assert [e.template for e in sessions["x"]] == ["a", "c"]
        assert [e.template for e in sessions["y"]] == ["b"]

    def test_missing_session_groups_under_empty(self):
        events = [_event(0, "a", session=None)]
        # session=None via make_record default requires explicit build:
        event = ParsedLog(record=make_record("a"), template_id=0, template="a")
        sessions = sessions_from_parsed([event])
        assert "" in sessions


class TestSlidingWindows:
    def test_tumbling_by_default(self):
        events = [_event(i, f"t{i}") for i in range(10)]
        windows = list(sliding_windows(events, size=4))
        assert [len(window) for window in windows] == [4, 4, 2]

    def test_overlapping_step(self):
        events = [_event(i, f"t{i}") for i in range(6)]
        windows = list(sliding_windows(events, size=4, step=2))
        # Two windows cover all six events; no redundant suffix window.
        assert [len(w) for w in windows] == [4, 4]
        assert windows[1][0].template_id == 2
        covered = {e.template_id for w in windows for e in w}
        assert covered == set(range(6))

    def test_validation(self):
        with pytest.raises(ValueError, match="size"):
            list(sliding_windows([], size=0))
        with pytest.raises(ValueError, match="step"):
            list(sliding_windows([], size=2, step=0))


class TestTimeWindows:
    def test_splits_on_span(self):
        events = [_event(i, "t", time=float(i)) for i in range(10)]
        windows = list(time_windows(events, span=3.0))
        assert [len(window) for window in windows] == [3, 3, 3, 1]

    def test_gap_skips_empty_windows(self):
        events = [_event(0, "t", time=0.0), _event(1, "t", time=100.0)]
        windows = list(time_windows(events, span=1.0))
        assert len(windows) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="span"):
            list(time_windows([], span=0.0))


class TestCountVectorizer:
    def test_fit_transform_counts(self):
        sessions = [
            [_event(0, "a"), _event(0, "a"), _event(1, "b")],
            [_event(1, "b")],
        ]
        vectorizer = CountVectorizer()
        matrix = vectorizer.fit_transform(sessions)
        assert matrix.shape == (2, 3)  # 2 templates + overflow
        assert matrix[0].tolist() == [2.0, 1.0, 0.0]
        assert matrix[1].tolist() == [0.0, 1.0, 0.0]

    def test_unseen_template_goes_to_overflow(self):
        vectorizer = CountVectorizer()
        vectorizer.fit([[_event(0, "a")]])
        vector = vectorizer.transform([_event(99, "new"), _event(0, "a")])
        assert vector.tolist() == [1.0, 1.0]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            CountVectorizer().transform([])

    def test_empty_sessions_matrix(self):
        vectorizer = CountVectorizer()
        vectorizer.fit([[_event(0, "a")]])
        assert vectorizer.transform_many([]).shape == (0, 2)


class TestSemanticVectorizer:
    def test_identical_templates_identical_vectors(self):
        vectorizer = SemanticVectorizer()
        a = vectorizer.vectorize("Sending bytes to host")
        b = vectorizer.vectorize("Sending bytes to host")
        assert np.array_equal(a, b)

    def test_vectors_are_unit_norm(self):
        vectorizer = SemanticVectorizer()
        vector = vectorizer.vectorize("some log template here")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_similar_templates_closer_than_different(self):
        vectorizer = SemanticVectorizer()
        base = "Receiving block from source address"
        near = "Receiving block from destination address"
        far = "Kernel panic unrecoverable hardware fault"
        assert vectorizer.similarity(base, near) > vectorizer.similarity(
            base, far
        )

    def test_wildcards_ignored(self):
        vectorizer = SemanticVectorizer()
        with_wildcard = vectorizer.vectorize(f"send {WILDCARD} bytes")
        without = vectorizer.vectorize("send bytes")
        assert np.allclose(with_wildcard, without)

    def test_tfidf_downweights_ubiquitous_tokens(self):
        corpus = [f"common prefix event{i}" for i in range(20)]
        weighted = SemanticVectorizer(use_tfidf=True).fit(corpus)
        unweighted = SemanticVectorizer(use_tfidf=False).fit(corpus)
        # Two templates sharing only the ubiquitous words look less
        # similar under TF-IDF weighting.
        left = "common prefix alpha"
        right = "common prefix omega"
        assert weighted.similarity(left, right) < unweighted.similarity(
            left, right
        )

    def test_nearest_match(self):
        vectorizer = SemanticVectorizer()
        candidates = [
            "Connection established to peer",
            "Disk write failed on volume",
        ]
        match, similarity = vectorizer.nearest(
            "Disk write failed on device", candidates
        )
        assert match == candidates[1]
        assert similarity > 0.5

    def test_nearest_with_no_candidates(self):
        vectorizer = SemanticVectorizer()
        match, similarity = vectorizer.nearest("anything", [])
        assert match is None
        assert similarity == 0.0

    def test_empty_template_zero_vector(self):
        vectorizer = SemanticVectorizer()
        assert np.all(vectorizer.vectorize("") == 0.0)

    def test_all_masked_template_zero_vector(self):
        vectorizer = SemanticVectorizer()
        assert np.all(
            vectorizer.vectorize(f"{WILDCARD} {WILDCARD} {WILDCARD}") == 0.0
        )

    def test_vectorize_before_fit_is_well_defined(self):
        # No documents observed: every token weights equally (IDF 1)
        # and the vector is still unit-norm and deterministic.
        vector = SemanticVectorizer().vectorize("disk write failed")
        assert np.linalg.norm(vector) == pytest.approx(1.0)
        again = SemanticVectorizer().vectorize("disk write failed")
        assert np.array_equal(vector, again)

    def test_nearest_zero_vector_query_matches_nothing(self):
        vectorizer = SemanticVectorizer()
        candidates = ["alpha beta", "gamma delta"]
        for query in ("", f"{WILDCARD} {WILDCARD}"):
            match, similarity = vectorizer.nearest(query, candidates)
            assert match is None
            assert similarity == 0.0

    def test_observe_drops_stale_cached_vectors(self):
        vectorizer = SemanticVectorizer()
        vectorizer.fit(["alpha beta", "alpha gamma"])
        before = vectorizer.vectorize("alpha beta")
        for _ in range(10):
            vectorizer.observe("alpha delta")
        after = vectorizer.vectorize("alpha beta")
        # "alpha" got much more common; a memo kept across observe
        # would have returned the pre-drift weighting unchanged.
        assert not np.allclose(before, after)

    def test_embed_counts_uncached_computations(self):
        vectorizer = SemanticVectorizer()
        vectorizer.vectorize("alpha beta")
        vectorizer.vectorize("alpha beta")  # memoized: no new embed
        assert vectorizer.embed_calls == 1
        vectorizer.embed("alpha beta")  # embed() always computes
        assert vectorizer.embed_calls == 2

    def test_observe_updates_idf(self):
        vectorizer = SemanticVectorizer()
        vectorizer.fit(["alpha beta"])
        before = vectorizer._idf("gamma")  # unseen: maximal idf
        for _ in range(10):
            vectorizer.observe("gamma delta")
        after = vectorizer._idf("gamma")
        assert after < before
