"""Edge cases of the incremental sessionizer.

Pins the boundary semantics the streaming runtime depends on: what
happens when a session lands exactly on ``max_session_events``, when an
arrival ties the idle deadline to the second, and how ``flush`` drains
open sessions at shutdown.
"""

from __future__ import annotations

import pytest

from conftest import make_record
from repro.core.streaming import StreamingSessionizer
from repro.logs.record import ParsedLog


def _event(timestamp: float, session_id: str | None = None,
           source: str = "svc") -> ParsedLog:
    record = make_record("tick", timestamp=timestamp, source=source,
                         session_id=session_id)
    return ParsedLog(record=record, template_id=0, template="tick")


class TestMaxEventsBoundary:
    def test_session_closes_exactly_at_max_session_events(self):
        sessionizer = StreamingSessionizer(session_timeout=100.0,
                                           max_session_events=3)
        assert sessionizer.push(_event(0.0, "s")) == []
        assert sessionizer.push(_event(1.0, "s")) == []
        closed = sessionizer.push(_event(2.0, "s"))
        assert len(closed) == 1
        assert len(closed[0]) == 3
        assert sessionizer.open_sessions == 0

    def test_capped_session_reopens_fresh(self):
        sessionizer = StreamingSessionizer(session_timeout=100.0,
                                           max_session_events=2)
        sessionizer.push(_event(0.0, "s"))
        assert sessionizer.push(_event(1.0, "s"))  # closed at the cap
        # The next event under the same id starts a brand-new bucket.
        assert sessionizer.push(_event(2.0, "s")) == []
        assert sessionizer.open_sessions == 1
        [session] = sessionizer.flush()
        assert [e.timestamp for e in session] == [2.0]

    def test_max_one_closes_on_every_push(self):
        sessionizer = StreamingSessionizer(session_timeout=100.0,
                                           max_session_events=1)
        for index in range(4):
            closed = sessionizer.push(_event(float(index), "s"))
            assert [len(s) for s in closed] == [1]
        assert sessionizer.open_sessions == 0


class TestIdleTimeoutBoundary:
    def test_arrival_exactly_at_deadline_closes_the_idle_session(self):
        # Last activity at t=0 with timeout 30: an arrival at exactly
        # t=30 makes the deadline tie (last_seen == now - timeout) and
        # the idle session closes — the timeout is inclusive.
        sessionizer = StreamingSessionizer(session_timeout=30.0)
        sessionizer.push(_event(0.0, "a"))
        closed = sessionizer.push(_event(30.0, "b"))
        assert [s[0].session_id for s in closed] == ["a"]
        assert sessionizer.open_sessions == 1  # only b remains

    def test_arrival_just_inside_the_deadline_keeps_the_session(self):
        sessionizer = StreamingSessionizer(session_timeout=30.0)
        sessionizer.push(_event(0.0, "a"))
        assert sessionizer.push(_event(29.999, "b")) == []
        assert sessionizer.open_sessions == 2

    def test_closing_event_is_not_part_of_the_closed_session(self):
        sessionizer = StreamingSessionizer(session_timeout=10.0)
        sessionizer.push(_event(0.0, "a"))
        [closed] = sessionizer.push(_event(50.0, "b"))
        assert all(e.session_id == "a" for e in closed)
        assert len(closed) == 1

    def test_simultaneous_expiries_close_in_activity_order(self):
        sessionizer = StreamingSessionizer(session_timeout=10.0)
        sessionizer.push(_event(0.0, "a"))
        sessionizer.push(_event(1.0, "b"))
        sessionizer.push(_event(2.0, "a"))  # a is now the most recent
        closed = sessionizer.push(_event(100.0, "c"))
        assert [s[0].session_id for s in closed] == ["b", "a"]

    def test_events_without_session_id_bucket_by_source(self):
        sessionizer = StreamingSessionizer(session_timeout=10.0)
        sessionizer.push(_event(0.0, source="db"))
        sessionizer.push(_event(1.0, source="web"))
        assert sessionizer.open_sessions == 2
        # Both bursts are idle past the deadline at t=20; the arriving
        # web event starts a *new* burst rather than joining the old.
        closed = sessionizer.push(_event(20.0, source="web"))
        assert [s[0].source for s in closed] == ["db", "web"]
        assert sessionizer.open_sessions == 1


class TestOutOfOrderTimestamps:
    """Clock regressions happen on real streams (multi-node skew,
    replayed backlogs); the sessionizer must stay conservative: a stale
    event closes nothing fresh and never rewinds a session's idle
    clock."""

    def test_stale_event_does_not_close_fresh_sessions(self):
        sessionizer = StreamingSessionizer(session_timeout=30.0)
        sessionizer.push(_event(100.0, "a"))
        # A regressed clock (t=10 after t=100) reaches back before
        # everything; nothing may close and _expire must not crash.
        assert sessionizer.push(_event(10.0, "b")) == []
        assert sessionizer.open_sessions == 2

    def test_late_event_does_not_rewind_the_idle_clock(self):
        sessionizer = StreamingSessionizer(session_timeout=30.0)
        sessionizer.push(_event(100.0, "a"))
        # A late-arriving old event joins the session...
        assert sessionizer.push(_event(5.0, "a")) == []
        # ...but must not make it look idle since t=5: an arrival at
        # t=129 is within 30s of the session's true last activity, so
        # the session survives.
        assert sessionizer.push(_event(129.0, "b")) == []
        assert sessionizer.open_sessions == 2
        flushed = {s[0].session_id: len(s) for s in sessionizer.flush()}
        assert flushed == {"a": 2, "b": 1}

    def test_late_events_still_join_their_session_bucket(self):
        sessionizer = StreamingSessionizer(session_timeout=30.0)
        sessionizer.push(_event(100.0, "a"))
        sessionizer.push(_event(90.0, "a"))
        [session] = sessionizer.flush()
        assert [e.timestamp for e in session] == [100.0, 90.0]

    def test_expiry_after_regression_uses_the_true_last_seen(self):
        sessionizer = StreamingSessionizer(session_timeout=30.0)
        sessionizer.push(_event(100.0, "a"))
        sessionizer.push(_event(5.0, "a"))       # regression, clock stays 100
        closed = sessionizer.push(_event(131.0, "b"))
        # 100 <= 131 - 30, so the session is genuinely idle and closes.
        assert [s[0].session_id for s in closed] == ["a"]

    def test_late_event_counts_as_activity_at_the_stream_clock(self):
        # An arrival — even a stale-stamped one — marks its session
        # active as of the high-water clock, so the session neither
        # closes early nor ends up parked behind fresher sessions in
        # the expiry order.
        sessionizer = StreamingSessionizer(session_timeout=30.0)
        sessionizer.push(_event(100.0, "a"))
        sessionizer.push(_event(120.0, "b"))
        assert sessionizer.push(_event(5.0, "a")) == []  # active as of 120
        assert sessionizer.push(_event(135.0, "c")) == []  # deadline 105
        closed = sessionizer.push(_event(151.0, "d"))      # deadline 121
        assert sorted(s[0].session_id for s in closed) == ["a", "b"]
        [session] = [s for s in closed if s[0].session_id == "a"]
        assert [e.timestamp for e in session] == [100.0, 5.0]

    def test_new_session_with_stale_timestamp_cannot_wedge_expiry(self):
        # A brand-new session born from a replayed old event must not
        # sit at the tail of the expiry queue with an ancient activity
        # mark: it is marked active at the clock, so it closes with its
        # contemporaries instead of hours late (or never).
        sessionizer = StreamingSessionizer(session_timeout=30.0)
        sessionizer.push(_event(100.0, "a"))
        assert sessionizer.push(_event(10.0, "b")) == []   # backlog replay
        closed = sessionizer.push(_event(145.0, "c"))      # deadline 115
        assert sorted(s[0].session_id for s in closed) == ["a", "b"]
        assert sessionizer.open_sessions == 1

    def test_interleaved_regressions_do_not_crash_expiry(self):
        sessionizer = StreamingSessionizer(session_timeout=10.0,
                                           max_session_events=4)
        timestamps = [50.0, 3.0, 47.0, 1.0, 49.0, 2.0, 48.0, 0.5]
        closed_total = 0
        for index, timestamp in enumerate(timestamps):
            closed_total += len(
                sessionizer.push(_event(timestamp, f"s{index % 3}"))
            )
        closed_total += len(sessionizer.flush())
        assert sessionizer.open_sessions == 0
        assert closed_total >= 3


class TestFlush:
    def test_flush_returns_all_open_sessions_and_empties(self):
        sessionizer = StreamingSessionizer(session_timeout=100.0)
        sessionizer.push(_event(0.0, "a"))
        sessionizer.push(_event(1.0, "b"))
        sessionizer.push(_event(2.0, "a"))
        flushed = sessionizer.flush()
        assert sorted(s[0].session_id for s in flushed) == ["a", "b"]
        assert {len(s) for s in flushed} == {1, 2}
        assert sessionizer.open_sessions == 0
        assert sessionizer.flush() == []

    def test_flush_then_reuse(self):
        sessionizer = StreamingSessionizer(session_timeout=100.0)
        sessionizer.push(_event(0.0, "a"))
        sessionizer.flush()
        # Flushing must fully reset per-session bookkeeping: the same
        # key starts over with an empty bucket and a fresh clock.
        assert sessionizer.push(_event(1000.0, "a")) == []
        [session] = sessionizer.flush()
        assert [e.timestamp for e in session] == [1000.0]


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamingSessionizer(session_timeout=0.0)
        with pytest.raises(ValueError):
            StreamingSessionizer(max_session_events=0)
