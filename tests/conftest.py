"""Shared fixtures: small, deterministic datasets and parsed corpora."""

from __future__ import annotations

import pytest

from repro.datasets import generate_bgl, generate_cloud_platform, generate_hdfs
from repro.logs.record import LogRecord, Severity
from repro.parsing import DrainParser, default_masker


def make_record(
    message: str,
    *,
    timestamp: float = 0.0,
    source: str = "test",
    severity: Severity = Severity.INFO,
    session_id: str | None = None,
    sequence: int = 0,
    labels: frozenset[str] = frozenset(),
) -> LogRecord:
    """Concise record builder used across test modules."""
    return LogRecord(
        timestamp=timestamp,
        source=source,
        severity=severity,
        message=message,
        session_id=session_id,
        sequence=sequence,
        labels=labels,
    )


@pytest.fixture(scope="session")
def hdfs_small():
    # anomaly_rate above the paper-realistic 3 % so that even this
    # small fixture reliably contains anomalies of both kinds.
    return generate_hdfs(sessions=120, anomaly_rate=0.1, seed=11)


@pytest.fixture(scope="session")
def bgl_small():
    return generate_bgl(records=3000, alert_episodes=5, seed=11)


@pytest.fixture(scope="session")
def cloud_small():
    return generate_cloud_platform(sessions=150, seed=11)


@pytest.fixture(scope="session")
def cloud_json():
    return generate_cloud_platform(sessions=120, json_suffix=True, seed=11)


@pytest.fixture(scope="session")
def hdfs_parsed(hdfs_small):
    parser = DrainParser(masker=default_masker())
    return parser.parse_all(hdfs_small.records)
