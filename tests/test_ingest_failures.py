"""Ingestion failure paths: the ways live sources actually break.

The satellite checklist of the ingestion PR: mid-line EOF on a tailed
file, rotation and truncation during a read, socket disconnect /
reconnect, and cancellation flushing the batcher without dropping
records.  Each test drives the real async machinery with tight
timeouts so the suite stays seconds-scale.
"""

import asyncio
import os
import time

import pytest

from repro.core.config import IngestConfig
from repro.ingest import (
    AsyncSourceAdapter,
    FileTailSource,
    IngestService,
    SocketSource,
)
from repro.logs.formats import render_line
from repro.logs.sources import ReplaySource

from conftest import make_record


def line(message: str, timestamp: float, source: str = "svc") -> str:
    return render_line(make_record(message, timestamp=timestamp,
                                   source=source)) + "\n"


class TailHarness:
    """Run a following FileTailSource in the background; collect items."""

    def __init__(self, source: FileTailSource):
        self.source = source
        self.items = []
        self._task = None

    async def __aenter__(self):
        async def pump():
            async for item in self.source.items():
                self.items.append(item)

        self._task = asyncio.ensure_future(pump())
        return self

    async def __aexit__(self, *exc_info):
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass

    async def wait_for(self, count: int, timeout: float = 5.0):
        deadline = time.monotonic() + timeout
        while len(self.items) < count:
            assert time.monotonic() < deadline, (
                f"timed out waiting for {count} items, "
                f"got {len(self.items)}"
            )
            await asyncio.sleep(0.005)

    @property
    def messages(self):
        return [item.record.message for item in self.items]


class TestMidLineEOF:
    def test_partial_line_held_until_newline_arrives(self, tmp_path):
        path = tmp_path / "svc.log"
        path.write_text(line("before the break", 1.0), encoding="utf-8")

        async def scenario():
            source = FileTailSource(path, follow=True, poll_interval=0.01)
            async with TailHarness(source) as tail:
                await tail.wait_for(1)
                # Simulate a writer caught mid-line: no trailing newline.
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(line("completed later", 2.0)[:-20])
                    handle.flush()
                await asyncio.sleep(0.05)
                assert len(tail.items) == 1, \
                    "a partial line must not be emitted while following"
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(line("completed later", 2.0)[-20:])
                await tail.wait_for(2)
                assert tail.messages == ["before the break",
                                         "completed later"]

        asyncio.run(scenario())

    def test_crlf_lines_match_offline_text_mode_reader(self, tmp_path):
        # Byte-mode splitting must not leak the \r of CRLF files into
        # messages the offline universal-newlines reader never sees.
        path = tmp_path / "crlf.log"
        body = (line("windows shipper line", 1.0).rstrip("\n")
                + "\r\nnot a header at all\r\n")
        path.write_bytes(body.encode("utf-8"))
        from repro.logs.formats import read_log_lines
        with open(path, encoding="utf-8") as handle:
            offline = list(read_log_lines(handle, source="crlf.log"))

        async def scenario():
            source = FileTailSource(path, follow=False)
            return [item.record async for item in source.items()]

        records = asyncio.run(scenario())
        assert records == offline
        assert not any(record.message.endswith("\r") for record in records)

    def test_drain_mode_emits_trailing_partial_line(self, tmp_path):
        path = tmp_path / "svc.log"
        content = line("whole line", 1.0) + "tail without newline"
        path.write_text(content, encoding="utf-8")

        async def scenario():
            source = FileTailSource(path, follow=False)
            return [item async for item in source.items()]

        items = asyncio.run(scenario())
        assert [item.record.message for item in items][-1] == \
            "tail without newline"
        assert items[-1].offset == len(content.encode("utf-8"))


class TestRotationAndTruncation:
    def test_rotation_during_read_is_followed(self, tmp_path):
        path = tmp_path / "svc.log"
        path.write_text(line("old file 1", 1.0) + line("old file 2", 2.0),
                        encoding="utf-8")

        async def scenario():
            source = FileTailSource(path, follow=True, poll_interval=0.01)
            async with TailHarness(source) as tail:
                await tail.wait_for(2)
                os.rename(path, tmp_path / "svc.log.1")  # logrotate move
                path.write_text(line("new file 1", 3.0), encoding="utf-8")
                await tail.wait_for(3)
                assert tail.messages == ["old file 1", "old file 2",
                                         "new file 1"]
                assert source.rotations == 1
                # Offsets restart with the new file's byte positions.
                assert tail.items[-1].offset == path.stat().st_size

        asyncio.run(scenario())

    def test_truncation_rewinds_to_start(self, tmp_path):
        path = tmp_path / "svc.log"
        path.write_text(line("long old content a", 1.0)
                        + line("long old content b", 2.0), encoding="utf-8")

        async def scenario():
            source = FileTailSource(path, follow=True, poll_interval=0.01)
            async with TailHarness(source) as tail:
                await tail.wait_for(2)
                path.write_text(line("fresh", 3.0), encoding="utf-8")
                await tail.wait_for(3)
                assert tail.messages[-1] == "fresh"
                assert source.truncations == 1

        asyncio.run(scenario())

    def test_checkpoint_beyond_file_size_restarts_from_top(self, tmp_path):
        path = tmp_path / "svc.log"
        path.write_text(line("only line", 1.0), encoding="utf-8")

        async def scenario():
            source = FileTailSource(path, follow=False)
            return source, [item async for item in
                            source.items(start_offset=10_000)]

        source, items = asyncio.run(scenario())
        assert [item.record.message for item in items] == ["only line"]
        assert source.truncations == 1


class TestSocketDisconnectReconnect:
    def test_reconnects_and_keeps_offsets_monotone(self):
        async def scenario():
            batches = [
                [line(f"first {index}", float(index)) for index in range(3)],
                [line(f"second {index}", 10.0 + index) for index in range(3)],
            ]
            served = 0

            async def serve(reader, writer):
                nonlocal served
                payload = batches[min(served, len(batches) - 1)]
                served += 1
                writer.write("".join(payload).encode())
                await writer.drain()
                writer.close()  # drop the client mid-stream

            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            source = SocketSource("127.0.0.1", port, name="flaky",
                                  reconnect=True, reconnect_delay=0.01)
            items = []

            async def pump():
                async for item in source.items():
                    items.append(item)

            task = asyncio.ensure_future(pump())
            deadline = time.monotonic() + 5.0
            while len(items) < 6 and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            server.close()
            await server.wait_closed()
            return source, items

        source, items = asyncio.run(scenario())
        assert len(items) >= 6
        assert source.connects >= 2
        assert source.disconnects >= 1
        offsets = [item.offset for item in items]
        assert offsets == sorted(offsets)
        assert [item.record.message for item in items[:6]] == [
            "first 0", "first 1", "first 2",
            "second 0", "second 1", "second 2",
        ]

    def test_vanished_server_eventually_gives_up(self):
        async def scenario():
            server = await asyncio.start_server(
                lambda reader, writer: writer.close(), "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            source = SocketSource("127.0.0.1", port, reconnect_delay=0.01,
                                  max_connect_attempts=2)
            return [item async for item in source.items()]

        assert asyncio.run(scenario()) == []


class TestCancellationFlushesBatcher:
    def test_stop_flushes_partial_batch_without_drops(self):
        class Recording:
            def __init__(self):
                self.records = []
                self.flushed = False

            def process_batch(self, records):
                self.records.extend(records)
                return []

            def flush(self):
                self.flushed = True
                return []

        pipeline = Recording()
        records = [make_record(f"m{index}", timestamp=float(index))
                   for index in range(7)]

        class Stalling(AsyncSourceAdapter):
            """Emits everything, then hangs like a quiet live source."""

            async def items(self, start_offset=0):
                async for item in super().items(start_offset):
                    yield item
                await asyncio.Event().wait()  # never set: quiet forever

        service = IngestService(
            [Stalling(ReplaySource("quiet", records))],
            pipeline,
            # Batch bigger than the corpus and a long age: nothing
            # would flush before the stop without the shutdown path.
            config=IngestConfig(batch_size=100, max_batch_age=60.0,
                                lateness=0.0),
        )

        async def scenario():
            task = asyncio.ensure_future(service.run())
            deadline = time.monotonic() + 5.0
            while (service.stats().records_in.get("quiet", 0) < 7
                   and time.monotonic() < deadline):
                await asyncio.sleep(0.005)
            service.stop()
            await task

        asyncio.run(scenario())
        assert [record.message for record in pipeline.records] == \
            [f"m{index}" for index in range(7)]
        assert pipeline.flushed, "shutdown must flush the pipeline's sessions"
        assert service.stats().committed == {"quiet": 7}

    def test_reader_error_surfaces_even_when_racing_stop(self):
        # A source that dies in the same instant stop() fires delivers
        # its failure sentinel to the shutdown drain, not the main
        # loop — the run must still fail loudly, after flushing.
        class Recording:
            def __init__(self):
                self.records = []

            def process_batch(self, records):
                self.records.extend(records)
                return []

        records = [make_record(f"m{index}", timestamp=float(index))
                   for index in range(3)]

        class Dying(AsyncSourceAdapter):
            def __init__(self, source, service_box):
                super().__init__(source)
                self._box = service_box

            async def items(self, start_offset=0):
                async for item in super().items(start_offset):
                    yield item
                self._box[0].stop()  # stop lands first ...
                raise OSError("source directory vanished")  # ... then this

        pipeline = Recording()
        box = []
        service = IngestService(
            [Dying(ReplaySource("doomed", records), box)],
            pipeline,
            config=IngestConfig(batch_size=100, max_batch_age=60.0,
                                lateness=0.0),
        )
        box.append(service)
        with pytest.raises(OSError, match="vanished"):
            asyncio.run(service.run())
        assert len(pipeline.records) == 3, "flush must precede the raise"

    def test_hard_cancellation_still_flushes_read_records(self):
        class Recording:
            def __init__(self):
                self.records = []

            def process_batch(self, records):
                self.records.extend(records)
                return []

        pipeline = Recording()
        records = [make_record(f"m{index}", timestamp=float(index))
                   for index in range(5)]

        class Stalling(AsyncSourceAdapter):
            async def items(self, start_offset=0):
                async for item in super().items(start_offset):
                    yield item
                await asyncio.Event().wait()

        service = IngestService(
            [Stalling(ReplaySource("quiet", records))],
            pipeline,
            config=IngestConfig(batch_size=100, max_batch_age=60.0,
                                lateness=0.0),
        )

        async def scenario():
            task = asyncio.ensure_future(service.run())
            deadline = time.monotonic() + 5.0
            while (service.stats().records_in.get("quiet", 0) < 5
                   and time.monotonic() < deadline):
                await asyncio.sleep(0.005)
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

        asyncio.run(scenario())
        assert len(pipeline.records) == 5, \
            "records already read must reach the pipeline even on cancel"
