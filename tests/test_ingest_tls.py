"""TLS transport tests: real ``ssl`` sockets on localhost.

The secure half of the gateway transport satellite.  An ephemeral
self-signed certificate (OpenSSL CLI, SAN ``DNS:localhost`` +
``IP:127.0.0.1``) backs a TLS ``asyncio.start_server``; the claims:

* every framing (``lines``/``jsonl``/``framed``) round-trips records
  over TLS byte-identically to its plaintext run;
* certificate verification actually runs — dialing with the wrong
  trust root fails, ``tls_verify=False`` is the only way around it;
* a framed-TLS source feeds an :class:`IngestService` end to end.

Skipped wholesale when no ``openssl`` binary is on PATH.
"""

import asyncio
import shutil
import ssl
import subprocess

import pytest

from repro.api import Pipeline, PipelineSpec
from repro.ingest import IngestService, SocketSource, render_framed_record
from repro.logs.formats import render_line
from repro.ingest.sources import render_json_line

from conftest import make_record

pytestmark = pytest.mark.skipif(
    shutil.which("openssl") is None,
    reason="openssl CLI unavailable; cannot mint an ephemeral certificate",
)


@pytest.fixture(scope="module")
def tls_cert(tmp_path_factory):
    """An ephemeral self-signed cert/key pair for 127.0.0.1."""
    directory = tmp_path_factory.mktemp("tls")
    cert, key = directory / "cert.pem", directory / "key.pem"
    subprocess.run(
        [
            "openssl", "req", "-x509", "-newkey", "rsa:2048",
            "-keyout", str(key), "-out", str(cert),
            "-days", "1", "-nodes", "-subj", "/CN=localhost",
            "-addext", "subjectAltName=DNS:localhost,IP:127.0.0.1",
        ],
        check=True, capture_output=True,
    )
    return cert, key


def server_context(tls_cert) -> ssl.SSLContext:
    cert, key = tls_cert
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(str(cert), str(key))
    return context


def serve_tls(tls_cert, chunks, **source_kwargs):
    """One-shot TLS server emitting ``chunks``; return (source, items)."""

    async def scenario():
        async def serve(reader, writer):
            for chunk in chunks:
                writer.write(chunk)
            await writer.drain()
            writer.close()

        server = await asyncio.start_server(
            serve, "127.0.0.1", 0, ssl=server_context(tls_cert))
        port = server.sockets[0].getsockname()[1]
        source = SocketSource("127.0.0.1", port, name="shipper",
                              reconnect=False, tls=True,
                              tls_cafile=str(tls_cert[0]), **source_kwargs)
        items = [item async for item in source.items()]
        server.close()
        await server.wait_closed()
        return source, items

    return asyncio.run(scenario())


def records_for(count=8, session=False):
    """Test records; ``session`` only for framings whose wire format
    carries ``session_id`` (the ``lines`` header format does not)."""
    return [
        make_record(f"request {index} ok", timestamp=float(index),
                    source="shipper",
                    session_id=f"s{index % 2}" if session else None,
                    sequence=index)
        for index in range(count)
    ]


class TestTlsTransport:
    def test_lines_over_tls_round_trip(self, tls_cert):
        records = records_for()
        chunks = [(render_line(r) + "\n").encode() for r in records]
        source, items = serve_tls(tls_cert, chunks)
        assert [item.record for item in items] == records
        assert source.connects == 1

    def test_jsonl_over_tls_round_trip(self, tls_cert):
        records = records_for(session=True)
        chunks = [render_json_line(r).encode() + b"\n" for r in records]
        _, items = serve_tls(tls_cert, chunks, framing="jsonl")
        assert [item.record for item in items] == records

    def test_framed_over_tls_round_trip_with_tenant(self, tls_cert):
        from dataclasses import replace
        records = [replace(r, tenant="acme")
                   for r in records_for(session=True)]
        chunks = [render_framed_record(r) for r in records]
        _, items = serve_tls(tls_cert, chunks, framing="framed")
        assert [item.record for item in items] == records
        assert all(item.tenant == "acme" for item in items)

    def test_tls_matches_plaintext_byte_for_byte(self, tls_cert):
        """TLS is transport only: the records are the very ones the
        plaintext run yields."""
        records = records_for()
        chunks = [(render_line(r) + "\n").encode() for r in records]
        _, tls_items = serve_tls(tls_cert, chunks)

        async def plaintext():
            async def serve(reader, writer):
                for chunk in chunks:
                    writer.write(chunk)
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            source = SocketSource("127.0.0.1", port, name="shipper",
                                  reconnect=False)
            items = [item async for item in source.items()]
            server.close()
            await server.wait_closed()
            return items

        plain_items = asyncio.run(plaintext())
        assert [item.record for item in tls_items] == \
            [item.record for item in plain_items]

    def test_untrusted_certificate_fails_the_dial(self, tls_cert):
        """Without the cert pinned as trust root, verification rejects
        the self-signed peer — counted as a failed dial, not a crash."""

        async def scenario():
            async def serve(reader, writer):
                writer.close()

            server = await asyncio.start_server(
                serve, "127.0.0.1", 0, ssl=server_context(tls_cert))
            port = server.sockets[0].getsockname()[1]
            source = SocketSource("127.0.0.1", port, name="shipper",
                                  reconnect=False, tls=True,
                                  reconnect_delay=0.01,
                                  max_connect_attempts=2)
            items = [item async for item in source.items()]
            server.close()
            await server.wait_closed()
            return source, items

        source, items = asyncio.run(scenario())
        assert items == []
        assert source.connects == 0

    def test_tls_verify_false_accepts_untrusted_peer(self, tls_cert):
        record = make_record("insecure ok", timestamp=1.0, source="shipper")

        async def scenario():
            async def serve(reader, writer):
                writer.write((render_line(record) + "\n").encode())
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(
                serve, "127.0.0.1", 0, ssl=server_context(tls_cert))
            port = server.sockets[0].getsockname()[1]
            source = SocketSource("127.0.0.1", port, name="shipper",
                                  reconnect=False, tls=True,
                                  tls_verify=False)
            items = [item async for item in source.items()]
            server.close()
            await server.wait_closed()
            return items

        items = asyncio.run(scenario())
        assert [item.record for item in items] == [record]


class TestTlsEndToEnd:
    def test_framed_tls_source_feeds_ingest_service(self, tls_cert):
        """The full secure path: TLS dial, framed decode, credit-gated
        ingestion, streaming pipeline, alerts out."""
        history = []
        for session in range(6):
            for index in range(8):
                history.append(make_record(
                    f"request {index} handled", source="shipper",
                    timestamp=float(session * 100 + index),
                    session_id=f"h{session}"))
        live = [
            make_record(f"request {index} handled", source="shipper",
                        timestamp=1000.0 + index, session_id="ok")
            for index in range(6)
        ] + [
            make_record("backend error timeout detected", source="shipper",
                        timestamp=1100.0 + index, session_id="bad")
            for index in range(4)
        ]

        async def scenario():
            async def serve(reader, writer):
                for record in live:
                    writer.write(render_framed_record(record, tenant="acme"))
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(
                serve, "127.0.0.1", 0, ssl=server_context(tls_cert))
            port = server.sockets[0].getsockname()[1]
            source = SocketSource("127.0.0.1", port, name="shipper",
                                  framing="framed", reconnect=False,
                                  tls=True, tls_cafile=str(tls_cert[0]))
            pipeline = Pipeline(PipelineSpec(
                detector="keyword", streaming=True, session_timeout=5.0,
            ))
            pipeline.fit(history)
            service = IngestService([source], pipeline)
            alerts = await service.run()
            server.close()
            await server.wait_closed()
            pipeline.close()
            return service, alerts

        service, alerts = asyncio.run(scenario())
        assert service.stats().records_processed == len(live)
        assert len(alerts) == 1
        assert alerts[0].report.session_id == "bad"
        assert all(event.tenant == "acme"
                   for event in alerts[0].report.events)
