"""Tests for the command-line interface."""

import re

import pytest

from repro.cli import main


@pytest.fixture
def corpus_file(tmp_path):
    path = tmp_path / "cloud.log"
    labels = tmp_path / "labels.tsv"
    exit_code = main([
        "generate", "--dataset", "cloud", "--sessions", "150",
        "--anomaly-rate", "0.08", "--seed", "3",
        "--output", str(path), "--labels", str(labels),
    ])
    assert exit_code == 0
    return path, labels


class TestGenerate:
    def test_writes_parseable_log_file(self, corpus_file, capsys):
        path, labels = corpus_file
        lines = path.read_text().splitlines()
        assert len(lines) > 300
        assert " - api - " in "\n".join(lines[:50]) or " - storage - " in \
            "\n".join(lines[:50]) or " - network - " in "\n".join(lines[:50])
        label_lines = labels.read_text().splitlines()
        assert len(label_lines) == 150
        assert any(line.split("\t")[1] == "1" for line in label_lines)


class TestParse:
    def test_prints_template_table(self, corpus_file, capsys):
        path, _ = corpus_file
        exit_code = main([
            "parse", "--input", str(path), "--parser", "drain", "--masking",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "templates" in output
        assert "<*>" in output

    def test_batch_parser_supported(self, corpus_file, capsys):
        path, _ = corpus_file
        assert main([
            "parse", "--input", str(path), "--parser", "slct", "--masking",
        ]) == 0
        assert "templates" in capsys.readouterr().out

    def test_unknown_parser_rejected(self, corpus_file):
        path, _ = corpus_file
        with pytest.raises(SystemExit):
            main(["parse", "--input", str(path), "--parser", "nonsense"])

    def test_sharded_parse_output_is_executor_invariant(self, corpus_file,
                                                        capsys):
        path, _ = corpus_file
        outputs = []
        for executor in ("serial", "thread"):
            capsys.readouterr()
            exit_code = main([
                "parse", "--input", str(path), "--parser", "drain",
                "--masking", "--shards", "3", "--executor", executor,
            ])
            assert exit_code == 0
            output = capsys.readouterr().out
            assert "shard loads" in output
            outputs.append(output.replace(executor, "<executor>"))
        assert outputs[0] == outputs[1]

    def test_shards_require_drain(self, corpus_file):
        path, _ = corpus_file
        with pytest.raises(SystemExit, match="distributed Drain"):
            main(["parse", "--input", str(path), "--parser", "spell",
                  "--shards", "2"])

    def test_bad_shard_counts_rejected_at_the_flag(self, corpus_file):
        path, _ = corpus_file
        with pytest.raises(SystemExit):
            main(["parse", "--input", str(path), "--shards", "-1"])
        with pytest.raises(SystemExit):
            main(["pipeline", "--history", str(path), "--live", str(path),
                  "--shards", "2", "--detector-shards", "0"])


class TestDetect:
    def test_keyword_detector_runs(self, corpus_file, capsys):
        path, _ = corpus_file
        exit_code = main([
            "detect", "--input", str(path), "--detector", "keyword",
            "--masking",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "sessions flagged by keyword" in output

    def test_counter_detector_runs(self, corpus_file, capsys):
        path, _ = corpus_file
        exit_code = main([
            "detect", "--input", str(path), "--detector", "invariants",
            "--masking",
        ])
        assert exit_code == 0
        assert "invariants" in capsys.readouterr().out

    def test_batch_parser_supported(self, corpus_file, capsys):
        # Batch miners need a fit pass before parsing; the detect
        # command must provide it like the parse command does.
        path, _ = corpus_file
        exit_code = main([
            "detect", "--input", str(path), "--detector", "keyword",
            "--parser", "slct", "--masking",
        ])
        assert exit_code == 0
        assert "sessions flagged" in capsys.readouterr().out


class TestPipeline:
    def test_full_pipeline_over_files(self, tmp_path, capsys):
        history = tmp_path / "history.log"
        live = tmp_path / "live.log"
        main(["generate", "--dataset", "cloud", "--sessions", "200",
              "--anomaly-rate", "0.0", "--seed", "1",
              "--output", str(history)])
        main(["generate", "--dataset", "cloud", "--sessions", "80",
              "--anomaly-rate", "0.1", "--seed", "2",
              "--output", str(live)])
        capsys.readouterr()
        exit_code = main([
            "pipeline", "--history", str(history), "--live", str(live),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "parsed" in output
        assert "anomalies" in output

    def test_sharded_pipeline_is_executor_invariant(self, tmp_path, capsys):
        history = tmp_path / "history.log"
        live = tmp_path / "live.log"
        main(["generate", "--dataset", "cloud", "--sessions", "120",
              "--anomaly-rate", "0.0", "--seed", "5",
              "--output", str(history)])
        main(["generate", "--dataset", "cloud", "--sessions", "50",
              "--anomaly-rate", "0.1", "--seed", "6",
              "--output", str(live)])
        outputs = []
        for executor in ("serial", "thread"):
            capsys.readouterr()
            exit_code = main([
                "pipeline", "--history", str(history), "--live", str(live),
                "--shards", "3", "--detector-shards", "1",
                "--executor", executor,
            ])
            assert exit_code == 0
            output = capsys.readouterr().out
            assert "across 3 shards" in output
            outputs.append(output.replace(executor, "<executor>"))
        assert outputs[0] == outputs[1]
        # --batch-size 0 means per-record; for the sharded runtime that
        # is micro-batches of one, and alerts must not change.
        capsys.readouterr()
        assert main([
            "pipeline", "--history", str(history), "--live", str(live),
            "--shards", "3", "--detector-shards", "1",
            "--executor", "serial", "--batch-size", "0",
        ]) == 0
        assert capsys.readouterr().out.replace("serial", "<executor>") == \
            outputs[0]


class TestTail:
    @pytest.fixture
    def corpus(self, tmp_path):
        history = tmp_path / "history.log"
        live = tmp_path / "live.log"
        main(["generate", "--dataset", "cloud", "--sessions", "150",
              "--anomaly-rate", "0.0", "--seed", "7",
              "--output", str(history)])
        main(["generate", "--dataset", "cloud", "--sessions", "60",
              "--anomaly-rate", "0.12", "--seed", "8",
              "--output", str(live)])
        return history, live

    @staticmethod
    def _ingested(output: str) -> int:
        match = re.search(r"ingested (\d+) records", output)
        assert match, f"no ingest summary in output:\n{output}"
        return int(match.group(1))

    def test_once_drains_file_and_reports(self, corpus, capsys):
        history, live = corpus
        exit_code = main([
            "tail", "--history", str(history), "--source", str(live),
            "--once", "--session-timeout", "10", "--batch-size", "64",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        total = len(live.read_text().splitlines())
        assert self._ingested(output) == total
        assert "pool=" in output  # the anomalous sessions must alert
        assert "credit waits" in output

    def test_checkpoint_resume_skips_processed_records(self, corpus, tmp_path,
                                                       capsys):
        history, live = corpus
        checkpoint = tmp_path / "offsets.json"
        lines = live.read_text().splitlines(keepends=True)
        cut = len(lines) * 2 // 3
        live.write_text("".join(lines[:cut]), encoding="utf-8")

        base = ["tail", "--history", str(history), "--source", str(live),
                "--once", "--session-timeout", "10",
                "--checkpoint", str(checkpoint)]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert self._ingested(first) == cut
        first_alerts = [l for l in first.splitlines() if "pool=" in l]
        assert checkpoint.exists()

        # Interrupted-and-restarted: the writer appended the rest.
        live.write_text("".join(lines), encoding="utf-8")
        assert main(base) == 0
        second = capsys.readouterr().out
        assert self._ingested(second) == len(lines) - cut, \
            "resume must not re-emit already-processed records"
        second_alerts = [l for l in second.splitlines() if "pool=" in l]
        # Re-run over the appended suffix only: no alert from the first
        # run may reappear.
        assert not set(first_alerts) & set(second_alerts)

        # A third run with nothing appended ingests nothing.
        assert main(base) == 0
        assert self._ingested(capsys.readouterr().out) == 0

    def test_sharded_tail_runs(self, corpus, capsys):
        history, live = corpus
        exit_code = main([
            "tail", "--history", str(history), "--source", str(live),
            "--once", "--session-timeout", "10",
            "--shards", "2", "--detector-shards", "1",
            "--executor", "thread",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert self._ingested(output) == len(live.read_text().splitlines())

    def test_spec_sources_honor_once(self, corpus, tmp_path, capsys):
        # [[sources]] declared in a spec file must inherit the run
        # mode: with --once the file tail drains and terminates
        # instead of following forever.
        history, live = corpus
        spec = tmp_path / "tail.toml"
        spec.write_text(
            'detector = "keyword"\n'
            "session_timeout = 10.0\n"
            "[[sources]]\n"
            'type = "file"\n'
            f'path = "{live}"\n'
        )
        exit_code = main([
            "tail", "--history", str(history), "--spec", str(spec), "--once",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert self._ingested(output) == len(live.read_text().splitlines())

    def test_tail_requires_a_source(self, corpus):
        history, _ = corpus
        with pytest.raises(SystemExit, match="--source or --socket"):
            main(["tail", "--history", str(history), "--once"])

    def test_bad_socket_spec_rejected(self, corpus):
        history, _ = corpus
        with pytest.raises(SystemExit):
            main(["tail", "--history", str(history),
                  "--socket", "no-port-here", "--once"])

    def test_once_with_unreachable_socket_terminates(self, corpus, capsys):
        # --once promises termination; a dead peer must give up after
        # bounded dial attempts instead of retrying forever.
        history, _ = corpus
        exit_code = main([
            "tail", "--history", str(history),
            "--socket", "127.0.0.1:1", "--once",
        ])
        assert exit_code == 0
        assert self._ingested(capsys.readouterr().out) == 0


class TestStats:
    @pytest.fixture
    def corpus(self, tmp_path):
        history = tmp_path / "history.log"
        live = tmp_path / "live.log"
        main(["generate", "--dataset", "cloud", "--sessions", "100",
              "--anomaly-rate", "0.0", "--seed", "9",
              "--output", str(history)])
        main(["generate", "--dataset", "cloud", "--sessions", "40",
              "--anomaly-rate", "0.1", "--seed", "10",
              "--output", str(live)])
        return history, live

    def test_prints_json_snapshot(self, corpus, capsys):
        import json

        history, live = corpus
        capsys.readouterr()
        exit_code = main([
            "stats", "--history", str(history), "--live", str(live),
        ])
        assert exit_code == 0
        snapshot = json.loads(capsys.readouterr().out)
        metrics = snapshot["metrics"]
        parsed = metrics["monilog_records_parsed_total"]["values"][0]["value"]
        total = len(history.read_text().splitlines()) + \
            len(live.read_text().splitlines())
        assert parsed == total
        assert metrics["monilog_parse_seconds"]["values"][0]["count"] > 0
        assert "advisories" in snapshot

    def test_scrape_serves_well_formed_prometheus_text(self, corpus, capsys):
        history, live = corpus
        capsys.readouterr()
        exit_code = main([
            "stats", "--history", str(history), "--live", str(live),
            "--metrics-port", "0", "--scrape", "--autoscale",
        ])
        assert exit_code == 0
        text = capsys.readouterr().out
        assert "# TYPE monilog_records_parsed_total counter" in text
        assert "# TYPE monilog_parse_seconds histogram" in text
        assert 'monilog_parse_seconds_bucket{le="+Inf"}' in text
        assert "monilog_autoscale_ticks_total 1" in text
        # Every sample line is "name{labels} value" with a float value.
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name, _, value = line.rpartition(" ")
                assert name and float(value) is not None

    def test_tail_with_metrics_and_autoscale(self, corpus, capsys):
        history, live = corpus
        capsys.readouterr()
        exit_code = main([
            "tail", "--history", str(history), "--source", str(live),
            "--once", "--session-timeout", "10",
            "--metrics-port", "0", "--autoscale",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "serving metrics on http://127.0.0.1:" in output
        assert "autoscale:" in output


class TestServe:
    """The multi-tenant gateway command."""

    @pytest.fixture
    def gateway_spec(self, tmp_path):
        history = tmp_path / "history.log"
        live_a = tmp_path / "acme.log"
        live_b = tmp_path / "globex.log"
        main(["generate", "--dataset", "cloud", "--sessions", "80",
              "--anomaly-rate", "0.0", "--seed", "3",
              "--output", str(history)])
        main(["generate", "--dataset", "cloud", "--sessions", "30",
              "--anomaly-rate", "0.2", "--seed", "4",
              "--output", str(live_a)])
        main(["generate", "--dataset", "cloud", "--sessions", "20",
              "--anomaly-rate", "0.0", "--seed", "5",
              "--output", str(live_b)])
        spec = tmp_path / "gateway.toml"
        spec.write_text(
            'detector = "keyword"\n'
            "session_timeout = 10.0\n"
            f'history = "{history}"\n'
            "[tenants.acme]\n"
            "[[tenants.acme.sources]]\n"
            'type = "file"\n'
            f'path = "{live_a}"\n'
            "[tenants.globex]\n"
            "[[tenants.globex.sources]]\n"
            'type = "file"\n'
            f'path = "{live_b}"\n'
        )
        return spec, history, live_a

    def test_serve_once_tags_alerts_and_summarizes_tenants(
            self, gateway_spec, capsys):
        spec, _, _ = gateway_spec
        capsys.readouterr()
        exit_code = main(["serve", "--spec", str(spec), "--once"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "serving tenants: acme, globex" in output
        assert "tenant=acme" in output  # live_a carries anomalies
        assert "tenant acme" in output and "tenant globex" in output
        assert "total alerts:" in output

    def test_serve_rejects_single_tenant_spec(self, tmp_path):
        spec = tmp_path / "plain.toml"
        spec.write_text('detector = "keyword"\n')
        with pytest.raises(SystemExit, match="repro tail"):
            main(["serve", "--spec", str(spec), "--once"])

    def test_serve_requires_tenant_history(self, gateway_spec, tmp_path):
        text = gateway_spec[0].read_text()
        spec = tmp_path / "nohist.toml"
        spec.write_text("\n".join(
            line for line in text.splitlines()
            if not line.startswith("history")) + "\n")
        with pytest.raises(SystemExit, match="training corpus"):
            main(["serve", "--spec", str(spec), "--once"])

    def test_serve_requires_tenant_sources(self, gateway_spec, tmp_path):
        text = gateway_spec[0].read_text()
        spec = tmp_path / "nosrc.toml"
        spec.write_text(text + "[tenants.initech]\n")
        with pytest.raises(SystemExit, match="initech"):
            main(["serve", "--spec", str(spec), "--once"])

    def test_stats_tenant_filters_the_scrape(self, gateway_spec, capsys):
        spec, history, live = gateway_spec
        capsys.readouterr()
        exit_code = main([
            "stats", "--history", str(history), "--live", str(live),
            "--spec", str(spec),
            "--scrape", "--tenant", "acme",
        ])
        assert exit_code == 0
        text = capsys.readouterr().out
        sample_lines = [line for line in text.splitlines()
                        if line and not line.startswith("#")]
        assert sample_lines
        assert all('tenant="acme"' in line for line in sample_lines)
        assert 'tenant="globex"' not in text

    def test_stats_tenant_needs_multitenant_spec(self, tmp_path):
        live = tmp_path / "live.log"
        main(["generate", "--dataset", "cloud", "--sessions", "10",
              "--output", str(live)])
        with pytest.raises(SystemExit, match="tenants"):
            main(["stats", "--history", str(live), "--live", str(live),
                  "--tenant", "acme"])

    def test_stats_unknown_tenant_rejected(self, gateway_spec):
        spec, history, live = gateway_spec
        with pytest.raises(SystemExit, match="declared"):
            main(["stats", "--history", str(history), "--live", str(live),
                  "--spec", str(spec), "--tenant", "nope"])
