"""The telemetry subsystem: metric primitives, exposition, the HTTP
endpoint, and correctness under concurrent updates."""

import json
import threading
import urllib.request

import pytest

from repro.telemetry import (
    MetricsRegistry,
    MetricsServer,
    PipelineTelemetry,
    RateMeter,
    TelemetryConfig,
)
from repro.core.validation import ConfigError


class TestCounter:
    def test_counts_up(self):
        counter = MetricsRegistry().counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_children_are_independent(self):
        counter = MetricsRegistry().counter("c_total", "help", ("source",))
        counter.labels(source="a").inc(3)
        counter.labels(source="b").inc()
        assert counter.labels(source="a").value == 3
        assert counter.labels(source="b").value == 1

    def test_wrong_label_names_rejected(self):
        counter = MetricsRegistry().counter("c_total", "help", ("source",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels(shard=1)

    def test_unlabeled_update_on_labeled_family_rejected(self):
        counter = MetricsRegistry().counter("c_total", "help", ("source",))
        with pytest.raises(ValueError, match="labeled by"):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistogram:
    def test_buckets_are_cumulative_le(self):
        histogram = MetricsRegistry().histogram("h", "help", (1, 10, 100))
        for value in (0.5, 1, 5, 10, 99, 1000):
            histogram.observe(value)
        snap = histogram.snapshot_values()[0]
        # le semantics: the boundary value lands in its own bucket.
        assert snap["buckets"] == {"1": 2, "10": 4, "100": 5, "+Inf": 6}
        assert snap["count"] == 6
        assert snap["sum"] == pytest.approx(1115.5)

    def test_rejects_unsorted_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("h", "help", (10, 1))
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("h2", "help", ())


class TestRegistry:
    def test_redeclaration_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("c", "help") is registry.counter("c", "help")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name", "help")
        with pytest.raises(ValueError, match="already declared"):
            registry.gauge("name", "help")

    def test_bad_metric_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "1abc", "with-dash", "with space"):
            with pytest.raises(ValueError):
                registry.counter(bad, "help")

    def test_collectors_run_before_exposition(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "help")
        state = {"depth": 0}
        registry.collect(lambda: gauge.set(state["depth"]))
        state["depth"] = 42
        assert registry.snapshot()["depth"]["values"][0]["value"] == 42
        state["depth"] = 7
        assert "depth 7" in registry.render_prometheus()

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("source",)).labels(
            source="svc-a").inc()
        registry.histogram("h", "help", (1, 2)).observe(1.5)
        json.dumps(registry.snapshot())


class TestPrometheusRendering:
    def test_full_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "records", ("source",)).labels(
            source="a").inc(3)
        registry.gauge("g", "depth").set(2)
        registry.histogram("h_seconds", "latency", (0.1, 1)).observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE c_total counter" in text
        assert 'c_total{source="a"} 3' in text
        assert "# TYPE g gauge" in text
        assert "g 2" in text.splitlines()
        assert 'h_seconds_bucket{le="0.1"} 0' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 0.5" in text
        assert "h_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("source",)).labels(
            source='we"ird\nname\\x').inc()
        line = [line for line in registry.render_prometheus().splitlines()
                if line.startswith("c_total{")][0]
        assert line == 'c_total{source="we\\"ird\\nname\\\\x"} 1'

    def test_histogram_buckets_carry_key_labels(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "help", (1,), ("shard",))
        histogram.labels(shard=0).observe(0.5)
        text = registry.render_prometheus()
        assert 'h_bucket{shard="0",le="1"} 1' in text
        assert 'h_sum{shard="0"} 0.5' in text


class TestConcurrency:
    def test_concurrent_counter_and_histogram_updates_are_exact(self):
        """The satellite claim: shard threads hammering one family
        lose no updates and histograms stay internally consistent."""
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("shard",))
        histogram = registry.histogram("h", "help", (10, 100, 1000))
        threads, per_thread = 8, 2000

        def hammer(shard: int) -> None:
            child = counter.labels(shard=shard)
            for index in range(per_thread):
                child.inc()
                histogram.observe(index % 1500)

        workers = [threading.Thread(target=hammer, args=(shard % 4,))
                   for shard in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        totals = [counter.labels(shard=shard).value for shard in range(4)]
        assert totals == [per_thread * 2] * 4
        snap = histogram.snapshot_values()[0]
        assert snap["count"] == threads * per_thread
        assert snap["buckets"]["+Inf"] == threads * per_thread
        # Cumulative buckets are monotone.
        counts = list(snap["buckets"].values())
        assert counts == sorted(counts)


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter(window=2.0)
        meter.mark(10, 0.0)
        meter.mark(10, 1.0)
        assert meter.rate(1.999) == pytest.approx(10.0, rel=0.01)
        assert meter.total == 20

    def test_rate_decays_when_quiet(self):
        meter = RateMeter(window=1.0)
        meter.mark(100, 0.0)
        assert meter.rate(0.5) > 0
        assert meter.rate(10.0) == 0.0

    def test_blends_previous_window(self):
        meter = RateMeter(window=1.0)
        meter.mark(10, 0.5)
        # The marks' bucket spans [0.5, 1.5); just past its end the
        # whole bucket is still inside the lookback...
        assert meter.rate(1.5) == pytest.approx(10.0)
        # ...and half a window later only half of it still counts.
        assert meter.rate(2.0) == pytest.approx(5.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            RateMeter(0)


class TestMetricsServer:
    def test_serves_prometheus_and_json(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help").inc(5)
        with MetricsServer(registry, port=0) as server:
            assert server.port > 0
            with urllib.request.urlopen(
                f"{server.url}/metrics", timeout=10
            ) as response:
                text = response.read().decode()
                assert response.headers["Content-Type"].startswith(
                    "text/plain")
            assert "c_total 5" in text
            with urllib.request.urlopen(
                f"{server.url}/telemetry", timeout=10
            ) as response:
                snapshot = json.loads(response.read())
            assert snapshot["c_total"]["values"][0]["value"] == 5

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(f"{server.url}/nope", timeout=10)
            assert failure.value.code == 404

    def test_close_is_idempotent(self):
        server = MetricsServer(MetricsRegistry(), port=0)
        server.close()
        server.close()


class TestTelemetryConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.enabled and config.metrics_port is None

    def test_validation_aggregates(self):
        with pytest.raises(ConfigError) as failure:
            TelemetryConfig(metrics_port=99999, rate_window=0)
        message = str(failure.value)
        assert "metrics_port" in message and "rate_window" in message


class TestPipelineTelemetry:
    def test_catalog_snapshot_shape(self):
        telemetry = PipelineTelemetry()
        telemetry.observe_parse(100, 0.01)
        telemetry.observe_detect(5, 0.002)
        telemetry.advise("shard imbalance 3.0x")
        telemetry.advise("shard imbalance 3.0x")  # dedup of repeats
        snapshot = telemetry.snapshot()
        assert snapshot["advisories"] == ["shard imbalance 3.0x"]
        metrics = snapshot["metrics"]
        assert metrics["monilog_parse_seconds"]["values"][0]["count"] == 1
        assert metrics["monilog_advisories_total"]["values"][0]["value"] == 1
        assert "monilog_handoff_depth" in metrics


class TestRuntimeResourceContract:
    def test_instrumented_pipeline_survives_deepcopy(self):
        """Snapshot-style deepcopies (consistency probes, bench
        replicas) must not try to clone locks or bound sockets —
        telemetry is a shared runtime resource, like executors."""
        import copy

        from repro.api import Pipeline, PipelineSpec

        with Pipeline.from_spec(PipelineSpec(
                detector="keyword", telemetry={"enabled": True})) as pipeline:
            clone = copy.deepcopy(pipeline)
            assert clone._telemetry is pipeline._telemetry


class TestDeclarationConflicts:
    """Re-declaration must agree on labels and buckets, not just type —
    a mismatch is two subsystems fighting over one name."""

    def test_label_set_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("source",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("c_total", "help")
        with pytest.raises(ValueError, match="labels"):
            registry.counter("c_total", "help", ("shard",))

    def test_bucket_bounds_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", "help", (1, 10))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", "help", (1, 100))
        assert registry.histogram("h", "help", (1, 10)) is not None
