"""Tests for the classification stage: pools, features, passive learning."""

import pytest

from repro.classify import (
    AdministratorSimulator,
    AnomalyClassifier,
    Criticality,
    PoolManager,
    featurize_report,
)
from repro.classify.feedback import source_based_policy
from repro.classify.pools import DEFAULT_POOL
from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.detection.base import DetectionResult
from repro.logs.record import ParsedLog, Severity

from conftest import make_record


def _report(report_id=0, source="api", severity=Severity.ERROR,
            template="request failed with code", session="s1",
            reasons=("unexpected event",)):
    event = ParsedLog(
        record=make_record(template, source=source, severity=severity,
                           session_id=session),
        template_id=0,
        template=template,
    )
    return AnomalyReport(
        report_id=report_id,
        session_id=session,
        events=(event,),
        detection=DetectionResult(anomalous=True, score=1.0, reasons=reasons),
    )


def _multi_source_report(report_id=0):
    events = tuple(
        ParsedLog(
            record=make_record(f"{source} trouble detected", source=source,
                               severity=Severity.WARNING, session_id="s2",
                               timestamp=float(index)),
            template_id=index,
            template=f"{source} trouble detected",
        )
        for index, source in enumerate(("storage", "network"))
    )
    return AnomalyReport(
        report_id=report_id,
        session_id="s2",
        events=events,
        detection=DetectionResult(anomalous=True, score=2.0),
    )


class TestAnomalyReport:
    def test_sources_in_first_seen_order(self):
        report = _multi_source_report()
        assert report.sources == ("storage", "network")

    def test_time_span(self):
        report = _multi_source_report()
        assert report.start_time == 0.0
        assert report.end_time == 1.0
        assert report.duration == 1.0

    def test_max_severity(self):
        report = _report(severity=Severity.CRITICAL)
        assert report.max_severity is Severity.CRITICAL

    def test_summary_mentions_key_fields(self):
        summary = _report(session="blk_42").summary()
        assert "blk_42" in summary
        assert "api" in summary


class TestFeaturization:
    def test_namespaced_features(self):
        features = featurize_report(_report())
        assert features["source:api"] == 1
        assert features["token:request"] == 1
        assert features["severity:ERROR"] == 1
        assert features["span:single-source"] == 1

    def test_multi_source_span_feature(self):
        features = featurize_report(_multi_source_report())
        assert features["span:multi-source"] == 1

    def test_reason_tokens_included(self):
        features = featurize_report(_report(reasons=("invariant violated",)))
        assert features["reason:invariant"] == 1


class TestPoolManager:
    def test_default_pool_exists(self):
        manager = PoolManager()
        assert manager.pool_names == [DEFAULT_POOL]

    def test_create_and_delete(self):
        manager = PoolManager()
        manager.create_pool("team-a")
        assert "team-a" in manager.pool_names
        manager.delete_pool("team-a")
        assert "team-a" not in manager.pool_names

    def test_duplicate_pool_rejected(self):
        manager = PoolManager()
        manager.create_pool("team-a")
        with pytest.raises(ValueError, match="already exists"):
            manager.create_pool("team-a")

    def test_default_pool_protected(self):
        with pytest.raises(ValueError, match="default"):
            PoolManager().delete_pool(DEFAULT_POOL)

    def test_delete_returns_alerts_to_default(self):
        manager = PoolManager()
        manager.create_pool("team-a")
        alert = ClassifiedAlert(report=_report(), pool="team-a",
                                criticality="low")
        manager.deliver(alert)
        manager.delete_pool("team-a")
        assert len(manager.pool(DEFAULT_POOL)) == 1

    def test_deliver_unknown_pool_falls_back(self):
        manager = PoolManager()
        alert = ClassifiedAlert(report=_report(), pool="ghost",
                                criticality="low")
        placed = manager.deliver(alert)
        assert placed.pool == DEFAULT_POOL

    def test_move_alert_notifies_listeners(self):
        manager = PoolManager()
        manager.create_pool("team-a")
        actions = []
        manager.subscribe(lambda alert, kind, old, new: actions.append(
            (kind, old, new)))
        alert = manager.deliver(
            ClassifiedAlert(report=_report(), pool=DEFAULT_POOL,
                            criticality="low")
        )
        manager.move_alert(alert, "team-a")
        assert actions == [("pool", DEFAULT_POOL, "team-a")]

    def test_set_criticality_notifies(self):
        manager = PoolManager()
        actions = []
        manager.subscribe(lambda alert, kind, old, new: actions.append(kind))
        alert = manager.deliver(
            ClassifiedAlert(report=_report(), pool=DEFAULT_POOL,
                            criticality="low")
        )
        manager.set_criticality(alert, "high")
        assert actions == ["criticality"]

    def test_move_unknown_alert_raises(self):
        manager = PoolManager()
        manager.create_pool("team-a")
        stranger = ClassifiedAlert(report=_report(), pool=DEFAULT_POOL,
                                   criticality="low")
        with pytest.raises(KeyError, match="not in pool"):
            manager.move_alert(stranger, "team-a")

    def test_delete_pool_notifies_relocations(self):
        manager = PoolManager()
        manager.create_pool("team-a")
        actions = []
        manager.subscribe(lambda alert, kind, old, new: actions.append(
            (alert.report.report_id, kind, old, new)))
        for report_id in range(2):
            manager.deliver(ClassifiedAlert(report=_report(report_id),
                                            pool="team-a",
                                            criticality="low"))
        manager.delete_pool("team-a")
        # Every relocated alert reaches the passive-learning hook as a
        # pool move into the default pool.
        assert actions == [
            (0, "pool", "team-a", DEFAULT_POOL),
            (1, "pool", "team-a", DEFAULT_POOL),
        ]
        assert all(a.pool == DEFAULT_POOL
                   for a in manager.pool(DEFAULT_POOL).alerts)

    def test_delete_pool_notify_opt_out(self):
        manager = PoolManager()
        manager.create_pool("team-a")
        actions = []
        manager.subscribe(lambda alert, kind, old, new: actions.append(kind))
        manager.deliver(ClassifiedAlert(report=_report(), pool="team-a",
                                        criticality="low"))
        manager.delete_pool("team-a", notify=False)
        assert actions == []
        assert len(manager.pool(DEFAULT_POOL)) == 1

    def test_delete_pool_feedback_reaches_the_classifier(self):
        manager = PoolManager()
        manager.create_pool("team-a")
        classifier = AnomalyClassifier().attach(manager)
        manager.deliver(ClassifiedAlert(report=_report(), pool="team-a",
                                        criticality="low"))
        before = classifier.feedback_count
        manager.delete_pool("team-a")
        assert classifier.feedback_count == before + 1


class TestClassifier:
    def test_cold_start_routes_to_default(self):
        classifier = AnomalyClassifier()
        alert = classifier.classify(_report())
        assert alert.pool == DEFAULT_POOL
        assert alert.criticality == Criticality.LOW

    def test_learns_from_pool_moves(self):
        manager = PoolManager()
        manager.create_pool("team-api")
        classifier = AnomalyClassifier().attach(manager)
        for index in range(3):
            alert = manager.deliver(classifier.classify(_report(index)))
            manager.move_alert(alert, "team-api")
        prediction = classifier.classify(_report(99))
        assert prediction.pool == "team-api"
        assert classifier.feedback_count == 3

    def test_learns_criticality_edits(self):
        manager = PoolManager()
        classifier = AnomalyClassifier().attach(manager)
        for index in range(3):
            alert = manager.deliver(classifier.classify(_report(index)))
            manager.set_criticality(alert, Criticality.HIGH)
        assert classifier.classify(_report(99)).criticality == Criticality.HIGH

    def test_distinguishes_sources_after_feedback(self):
        manager = PoolManager()
        manager.create_pool("team-api")
        manager.create_pool("team-storage")
        classifier = AnomalyClassifier().attach(manager)
        for index in range(4):
            api_alert = manager.deliver(
                classifier.classify(_report(index, source="api"))
            )
            manager.move_alert(api_alert, "team-api")
            storage_alert = manager.deliver(
                classifier.classify(
                    _report(100 + index, source="storage",
                            template="volume stuck in degraded state")
                )
            )
            manager.move_alert(storage_alert, "team-storage")
        assert classifier.classify(_report(999, source="api")).pool == "team-api"
        assert classifier.classify(
            _report(998, source="storage",
                    template="volume stuck in degraded state")
        ).pool == "team-storage"

    def test_confirm_counts_as_feedback(self):
        classifier = AnomalyClassifier()
        alert = ClassifiedAlert(report=_report(), pool="ops",
                                criticality="moderate")
        classifier.confirm(alert)
        assert classifier.feedback_count == 1
        assert classifier.classify(_report(5)).pool == "ops"


class TestAdministratorSimulator:
    def test_moves_misrouted_alerts(self):
        manager = PoolManager()
        manager.create_pool("team-api")
        policy = source_based_policy({"api": "team-api"})
        admin = AdministratorSimulator(manager, policy, diligence=1.0)
        alert = manager.deliver(
            ClassifiedAlert(report=_report(source="api"), pool=DEFAULT_POOL,
                            criticality="low")
        )
        final = admin.review(alert)
        assert final.pool == "team-api"
        assert admin.pool_moves == 1

    def test_corrects_criticality(self):
        manager = PoolManager()
        policy = source_based_policy({})
        admin = AdministratorSimulator(manager, policy, diligence=1.0)
        alert = manager.deliver(
            ClassifiedAlert(report=_report(severity=Severity.ERROR),
                            pool=DEFAULT_POOL, criticality="low")
        )
        final = admin.review(alert)
        assert final.criticality == "high"
        assert admin.criticality_edits == 1

    def test_lazy_admin_skips_reviews(self):
        manager = PoolManager()
        policy = source_based_policy({})
        admin = AdministratorSimulator(manager, policy, diligence=0.0, seed=1)
        alert = manager.deliver(
            ClassifiedAlert(report=_report(), pool=DEFAULT_POOL,
                            criticality="low")
        )
        final = admin.review(alert)
        assert final is alert
        assert admin.reviews == 0

    def test_cross_source_escalates(self):
        manager = PoolManager()
        policy = source_based_policy({"storage": "default"})
        admin = AdministratorSimulator(manager, policy, diligence=1.0)
        alert = manager.deliver(
            ClassifiedAlert(report=_multi_source_report(), pool=DEFAULT_POOL,
                            criticality="low")
        )
        final = admin.review(alert)
        assert final.criticality == "high"

    def test_diligence_validation(self):
        with pytest.raises(ValueError, match="diligence"):
            AdministratorSimulator(PoolManager(), source_based_policy({}),
                                   diligence=1.5)
