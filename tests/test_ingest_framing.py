"""Tests for the length-prefixed ``framed`` socket transport.

The framing satellite of the multi-tenant gateway: tenant-carrying
binary frames must round-trip records byte-identically, survive length
prefixes split across TCP segments, and reject oversized or malformed
frames by dropping the connection and re-dialing from a clean frame
boundary — never by guessing a resync point inside a corrupt stream.
``lines``/``jsonl`` parity pins that the new framing changed nothing
for the legacy transports.
"""

import asyncio

from repro.ingest import (
    SocketSource,
    encode_frame,
    render_framed_record,
    render_json_line,
)
from repro.logs.record import DEFAULT_TENANT

from conftest import make_record


def serve_chunks(chunk_lists, **source_kwargs):
    """Serve ``chunk_lists[i]`` (a list of byte chunks, drained and
    slightly spaced) to the i-th accepted connection; return the
    ``(source, items)`` a framed SocketSource read from it."""

    async def scenario():
        connection = 0

        async def serve(reader, writer):
            nonlocal connection
            chunks = chunk_lists[min(connection, len(chunk_lists) - 1)]
            connection += 1
            for chunk in chunks:
                writer.write(chunk)
                await writer.drain()
                await asyncio.sleep(0.01)
            writer.close()
            if connection >= len(chunk_lists):
                server.close()

        server = await asyncio.start_server(serve, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        kwargs = {"name": "shipper", "framing": "framed",
                  "reconnect": False, **source_kwargs}
        source = SocketSource("127.0.0.1", port, **kwargs)
        items = [item async for item in source.items()]
        server.close()
        await server.wait_closed()
        return source, items

    return asyncio.run(scenario())


class TestFrameEncoding:
    def test_encode_frame_layout(self):
        frame = encode_frame("payload", tenant="acme")
        body = b"\x00\x04" + b"acme" + b"payload"
        assert frame == len(body).to_bytes(4, "big") + body

    def test_empty_tenant_encodes_zero_length_header(self):
        frame = encode_frame("p")
        assert frame[:4] == (3).to_bytes(4, "big")
        assert frame[4:6] == b"\x00\x00"

    def test_oversized_tenant_rejected(self):
        try:
            encode_frame("p", tenant="x" * 70000)
        except ValueError as error:
            assert "tenant" in str(error)
        else:
            raise AssertionError("expected ValueError")

    def test_render_framed_record_carries_record_tenant(self):
        from dataclasses import replace
        record = replace(make_record("m", timestamp=1.0), tenant="acme")
        assert render_framed_record(record) == encode_frame(
            render_json_line(record), tenant="acme")

    def test_render_framed_record_default_tenant(self):
        record = make_record("m", timestamp=1.0)
        assert render_framed_record(record) == encode_frame(
            render_json_line(record), tenant=DEFAULT_TENANT)

    def test_render_json_line_omits_default_tenant(self):
        """Legacy jsonl output stays byte-identical: the tenant key
        only appears for non-default tenants."""
        record = make_record("m", timestamp=1.0)
        assert "tenant" not in render_json_line(record)
        from dataclasses import replace
        tagged = replace(record, tenant="acme")
        assert '"tenant": "acme"' in render_json_line(tagged)


class TestFramedTransport:
    def test_round_trips_records_with_tenants(self):
        from dataclasses import replace
        records = [
            replace(make_record(f"request {index} ok", timestamp=float(index),
                                source="shipper", sequence=index,
                                session_id=f"s{index % 2}"),
                    tenant="acme" if index % 2 else DEFAULT_TENANT)
            for index in range(6)
        ]
        chunks = [render_framed_record(record) for record in records]
        source, items = serve_chunks([chunks])
        assert [item.record for item in items] == records
        assert [item.offset for item in items] == [1, 2, 3, 4, 5, 6]
        assert [item.tenant for item in items] == \
            [record.tenant for record in records]
        assert source.frame_errors == 0

    def test_frame_tenant_overrides_record_tenant(self):
        record = make_record("m", timestamp=1.0)
        frame = encode_frame(render_json_line(record), tenant="globex")
        _, items = serve_chunks([[frame]])
        assert items[0].record.tenant == "globex"
        assert items[0].tenant == "globex"

    def test_empty_frame_tenant_falls_back_to_source_default(self):
        record = make_record("m", timestamp=1.0)
        frame = encode_frame(render_json_line(record), tenant="")
        _, items = serve_chunks([[frame]], tenant="globex")
        assert items[0].record.tenant == "globex"

    def test_embedded_newline_survives_one_frame(self):
        record = make_record("trace:\n  frame 0\n  frame 1", timestamp=2.0,
                             source="shipper")
        _, items = serve_chunks([[render_framed_record(record)]])
        assert len(items) == 1
        assert items[0].record.message == record.message

    def test_non_json_payload_falls_back_to_plain_conversion(self):
        frame = encode_frame("not json at all", tenant="acme")
        _, items = serve_chunks([[frame]])
        assert items[0].record.message == "not json at all"
        assert items[0].record.tenant == "acme"

    def test_length_prefix_split_across_reads(self):
        """readexactly must reassemble a header the TCP layer split."""
        record = make_record("split prefix ok", timestamp=3.0,
                             source="shipper")
        frame = render_framed_record(record)
        # 2 bytes of the length prefix, then the rest — each chunk is
        # drained and spaced so the reader genuinely sees two reads.
        _, items = serve_chunks([[frame[:2], frame[2:]]])
        assert [item.record for item in items] == [record]

    def test_body_split_across_reads(self):
        record = make_record("split body ok", timestamp=4.0,
                             source="shipper")
        frame = render_framed_record(record)
        middle = len(frame) // 2
        _, items = serve_chunks([[frame[:middle], frame[middle:]]])
        assert [item.record for item in items] == [record]

    def test_oversized_frame_rejected_with_clean_reconnect(self):
        """A frame above max_frame_bytes is a protocol error: count it,
        drop the connection, re-dial, and read on from the next clean
        frame boundary."""
        record = make_record("after reconnect", timestamp=5.0,
                             source="shipper")
        oversized = (500).to_bytes(4, "big") + b"\x00\x00" + b"x" * 500
        source, items = serve_chunks(
            [[oversized], [render_framed_record(record)]],
            reconnect=True, reconnect_delay=0.01, max_connect_attempts=1,
            max_frame_bytes=256,
        )
        assert [item.record for item in items] == [record]
        assert source.frame_errors == 1
        assert source.connects == 2

    def test_tenant_length_past_body_is_a_frame_error(self):
        body = b"\x00\x63" + b"short"  # tenant length 99 > body
        malformed = len(body).to_bytes(4, "big") + body
        source, items = serve_chunks([[malformed]])
        assert items == []
        assert source.frame_errors == 1

    def test_truncated_frame_at_eof_is_a_frame_error(self):
        frame = render_framed_record(make_record("m", timestamp=1.0))
        source, items = serve_chunks([[frame[:len(frame) - 3]]])
        assert items == []
        assert source.frame_errors == 1

    def test_clean_eof_between_frames_is_not_an_error(self):
        record = make_record("m", timestamp=1.0, source="shipper")
        source, items = serve_chunks([[render_framed_record(record)]])
        assert len(items) == 1
        assert source.frame_errors == 0
        assert source.disconnects == 1


class TestFramingParity:
    """The framed transport yields the very records jsonl yields."""

    def _records(self):
        return [
            make_record(f"request {index} ok", timestamp=float(index),
                        source="shipper", session_id=f"s{index % 3}",
                        sequence=index)
            for index in range(10)
        ]

    def test_framed_matches_jsonl_byte_for_byte(self):
        records = self._records()
        _, framed = serve_chunks(
            [[render_framed_record(record) for record in records]])

        async def jsonl_scenario():
            async def serve(reader, writer):
                for record in records:
                    writer.write(render_json_line(record).encode() + b"\n")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            source = SocketSource("127.0.0.1", port, name="shipper",
                                  framing="jsonl", reconnect=False)
            items = [item async for item in source.items()]
            server.close()
            await server.wait_closed()
            return items

        jsonl = asyncio.run(jsonl_scenario())
        assert [item.record for item in framed] == \
            [item.record for item in jsonl]
        assert [item.offset for item in framed] == \
            [item.offset for item in jsonl]


class TestTlsOptionValidation:
    def test_tls_options_require_tls(self):
        try:
            SocketSource("h", 1, tls_cafile="ca.pem")
        except ValueError as error:
            assert "tls" in str(error)
        else:
            raise AssertionError("expected ValueError")

    def test_tls_verify_false_requires_tls(self):
        try:
            SocketSource("h", 1, tls_verify=False)
        except ValueError as error:
            assert "tls" in str(error)
        else:
            raise AssertionError("expected ValueError")

    def test_tiny_max_frame_bytes_rejected(self):
        try:
            SocketSource("h", 1, framing="framed", max_frame_bytes=2)
        except ValueError as error:
            assert "max_frame_bytes" in str(error)
        else:
            raise AssertionError("expected ValueError")
