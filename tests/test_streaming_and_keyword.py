"""Tests for the streaming runtime and the keyword baseline."""

import pytest

from repro import Pipeline, PipelineSpec
from repro.core.streaming import StreamingSessionizer
from repro.datasets import generate_cloud_platform, generate_hdfs
from repro.detection import DeepLogDetector, sessions_from_parsed
from repro.detection.keyword import KeywordMatchDetector
from repro.logs.record import ParsedLog, Severity
from repro.parsing import DrainParser, default_masker

from conftest import make_record


def _event(message: str, *, time: float, session: str | None = None,
            source: str = "svc",
            severity: Severity = Severity.INFO) -> ParsedLog:
    return ParsedLog(
        record=make_record(message, timestamp=time, session_id=session,
                           source=source, severity=severity),
        template_id=0,
        template=message,
    )


class TestStreamingSessionizer:
    def test_groups_by_session_until_timeout(self):
        sessionizer = StreamingSessionizer(session_timeout=10.0)
        assert sessionizer.push(_event("a", time=0.0, session="s1")) == []
        assert sessionizer.push(_event("b", time=1.0, session="s1")) == []
        closed = sessionizer.push(_event("c", time=20.0, session="s2"))
        assert len(closed) == 1
        assert [event.record.message for event in closed[0]] == ["a", "b"]

    def test_flush_closes_everything(self):
        sessionizer = StreamingSessionizer(session_timeout=10.0)
        sessionizer.push(_event("a", time=0.0, session="s1"))
        sessionizer.push(_event("b", time=1.0, session="s2"))
        closed = sessionizer.flush()
        assert len(closed) == 2
        assert sessionizer.open_sessions == 0

    def test_max_session_events_caps_memory(self):
        sessionizer = StreamingSessionizer(session_timeout=1e9,
                                           max_session_events=3)
        closed = []
        for index in range(7):
            closed += sessionizer.push(
                _event(f"e{index}", time=float(index), session="s")
            )
        assert [len(window) for window in closed] == [3, 3]

    def test_sessionless_events_bucket_by_source(self):
        sessionizer = StreamingSessionizer(session_timeout=5.0)
        sessionizer.push(_event("a", time=0.0, source="api"))
        sessionizer.push(_event("b", time=1.0, source="net"))
        assert sessionizer.open_sessions == 2
        closed = sessionizer.push(_event("c", time=100.0, source="api"))
        assert len(closed) == 2

    def test_interleaved_sessions_stay_separate(self):
        sessionizer = StreamingSessionizer(session_timeout=50.0)
        for index in range(6):
            sessionizer.push(
                _event(f"e{index}", time=float(index),
                       session="s1" if index % 2 == 0 else "s2")
            )
        closed = sessionizer.flush()
        assert sorted(len(window) for window in closed) == [3, 3]

    def test_validation(self):
        with pytest.raises(ValueError, match="session_timeout"):
            StreamingSessionizer(session_timeout=0.0)
        with pytest.raises(ValueError, match="max_session_events"):
            StreamingSessionizer(max_session_events=0)


class TestStreamingPipeline:
    @pytest.fixture(scope="class")
    def trained(self):
        data = generate_cloud_platform(sessions=300, seed=21)
        cut = len(data.records) * 6 // 10
        system = Pipeline(detector=DeepLogDetector(epochs=8, seed=1))
        system.fit(data.records[:cut])
        return system, data, data.records[cut:]

    def test_requires_trained_pipeline(self):
        untrained = Pipeline(PipelineSpec(streaming=True))
        with pytest.raises(RuntimeError, match="fit"):
            untrained.process_record(make_record("x"))

    def test_streaming_matches_batch_verdicts(self, trained):
        system, data, live = trained
        batch_flagged = {
            alert.report.session_id for alert in system.run_offline(live)
        }
        streaming = system.stream(session_timeout=60.0)
        streaming_flagged = {
            alert.report.session_id
            for alert in streaming.run(live)
        }
        # Timeout-based closing may split boundary sessions; verdicts
        # on whole sessions must agree.
        agreement = len(batch_flagged & streaming_flagged) / max(
            1, len(batch_flagged | streaming_flagged)
        )
        assert agreement >= 0.8, (batch_flagged, streaming_flagged)

    def test_alerts_arrive_before_stream_end(self, trained):
        system, data, live = trained
        streaming = system.stream(session_timeout=5.0)
        seen_before_end = 0
        for record in live[: len(live) * 3 // 4]:
            seen_before_end += len(streaming.process_record(record))
        if seen_before_end == 0:
            # At minimum, flushing mid-stream must produce the alerts.
            seen_before_end = len(streaming.flush())
        assert seen_before_end > 0

    def test_bounded_open_sessions(self, trained):
        system, _, live = trained
        streaming = system.stream(session_timeout=2.0)
        peak = 0
        for record in live:
            streaming.process_record(record)
            peak = max(peak, streaming.sessionizer.open_sessions)
        # Session timeout keeps concurrent state far below total count.
        total_sessions = len({r.session_id for r in live})
        assert peak < total_sessions / 2


class TestKeywordBaseline:
    def test_catches_keyword_sessions(self):
        detector = KeywordMatchDetector()
        session = [
            _event("task started", time=0.0),
            _event("fatal error while writing", time=1.0),
        ]
        result = detector.detect(session)
        assert result.anomalous
        assert any("keyword" in reason for reason in result.reasons)

    def test_catches_high_severity(self):
        detector = KeywordMatchDetector(keywords=())
        session = [
            _event("looks harmless", time=0.0, severity=Severity.CRITICAL)
        ]
        result = detector.detect(session)
        assert result.anomalous
        assert any("severity" in reason for reason in result.reasons)

    def test_custom_patterns(self):
        detector = KeywordMatchDetector(keywords=(),
                                        patterns=(r"code 5\d\d",))
        assert detector.detect(
            [_event("finished with code 503", time=0.0)]
        ).anomalous
        assert not detector.detect(
            [_event("finished with code 200", time=0.0)]
        ).anomalous

    def test_misses_quiet_sequential_anomalies(self):
        # The paper's core critique: a truncated flow made of normal
        # lines carries no keyword to match.
        detector = KeywordMatchDetector()
        truncated = [
            _event("allocate block", time=0.0),
            _event("receiving block", time=1.0),
        ]
        assert not detector.detect(truncated).anomalous

    def test_misses_quantitative_anomalies(self):
        detector = KeywordMatchDetector()
        session = [_event("Sending 745675869 bytes to peer", time=0.0)]
        assert not detector.detect(session).anomalous

    def test_fit_is_noop(self, hdfs_parsed, hdfs_small):
        detector = KeywordMatchDetector()
        sessions = list(sessions_from_parsed(hdfs_parsed).values())
        assert detector.fit(sessions) is detector

    def test_hdfs_recall_structure(self, hdfs_small):
        # On HDFS it finds exception-style anomalies but not the
        # quantitative/truncated ones (the §I claim, quantified in the
        # ablation bench).
        parser = DrainParser(masker=default_masker())
        parsed = parser.parse_all(hdfs_small.records)
        detector = KeywordMatchDetector()
        missed_kinds = set()
        caught_kinds = set()
        for session_id, session in sessions_from_parsed(parsed).items():
            truth = hdfs_small.sessions[session_id]
            if not truth.anomalous:
                continue
            if detector.detect(session).anomalous:
                caught_kinds.add(truth.kind)
            else:
                missed_kinds.add(truth.kind)
        assert "quantitative" in missed_kinds
        assert "truncated_replication" in missed_kinds
        assert "write_failure" in caught_kinds
