"""Tests for raw-line header parsing (the Fig. 2 HEADER step)."""

import pytest

from repro.logs.formats import (
    BUILTIN_FORMATS,
    DASHED_FORMAT,
    EPOCH_FORMAT,
    SYSLOG_FORMAT,
    detect_format,
    read_log_lines,
    render_line,
)
from repro.logs.record import LogRecord, Severity


PAPER_LINE = (
    "2020-03-19 15:38:55,977 - serviceManager - INFO - "
    "New process started: process x92 started on port 42"
)


class TestDashedFormat:
    def test_parses_the_paper_example(self):
        record = DASHED_FORMAT.parse(PAPER_LINE)
        assert record is not None
        assert record.source == "serviceManager"
        assert record.severity is Severity.INFO
        assert record.message.startswith("New process started")

    def test_timestamp_decoded(self):
        record = DASHED_FORMAT.parse(PAPER_LINE)
        assert record is not None
        # 2020-03-19 15:38:55.977 UTC
        assert record.timestamp == pytest.approx(1584632335.977, abs=1.0)

    def test_rejects_other_layouts(self):
        assert DASHED_FORMAT.parse("free text line") is None

    def test_render_roundtrip(self):
        record = DASHED_FORMAT.parse(PAPER_LINE)
        assert record is not None
        rendered = render_line(record)
        reparsed = DASHED_FORMAT.parse(rendered)
        assert reparsed is not None
        assert reparsed.message == record.message
        assert reparsed.source == record.source
        assert reparsed.timestamp == pytest.approx(record.timestamp, abs=0.01)


class TestSyslogFormat:
    def test_parses_classic_syslog(self):
        record = SYSLOG_FORMAT.parse(
            "Mar 19 15:38:55 web01 sshd[4242]: Accepted publickey for root"
        )
        assert record is not None
        assert record.source == "sshd"
        assert record.message == "Accepted publickey for root"

    def test_without_pid(self):
        record = SYSLOG_FORMAT.parse(
            "Jan  7 03:01:12 db02 cron: job finished"
        )
        assert record is not None
        assert record.source == "cron"


class TestEpochFormat:
    def test_parses_epoch_lines(self):
        record = EPOCH_FORMAT.parse("1584625135.977 scheduler WARN queue full")
        assert record is not None
        assert record.timestamp == pytest.approx(1584625135.977)
        assert record.severity is Severity.WARNING
        assert record.message == "queue full"


class TestDetectFormat:
    def test_picks_matching_format(self):
        sample = [PAPER_LINE] * 10
        assert detect_format(sample) is DASHED_FORMAT

    def test_mixed_sample_picks_majority(self):
        sample = [PAPER_LINE] * 8 + ["garbage line"] * 2
        assert detect_format(sample) is DASHED_FORMAT

    def test_no_match_returns_none(self):
        assert detect_format(["free text"] * 10) is None
        assert detect_format([]) is None

    def test_all_builtin_formats_detectable(self):
        lines = {
            DASHED_FORMAT: PAPER_LINE,
            SYSLOG_FORMAT: "Mar 19 15:38:55 web01 sshd[1]: hello",
            EPOCH_FORMAT: "1584625135.9 svc INFO hello",
        }
        for expected, line in lines.items():
            assert detect_format([line] * 5, BUILTIN_FORMATS) is expected


class TestReadLogLines:
    def test_autodetects_and_converts(self):
        lines = [PAPER_LINE + "\n"] * 5
        records = list(read_log_lines(lines))
        assert len(records) == 5
        assert all(record.source == "serviceManager" for record in records)
        assert [record.sequence for record in records] == list(range(5))

    def test_unparseable_lines_become_messages(self):
        records = list(read_log_lines(["no header at all\n"] * 3))
        assert len(records) == 3
        assert records[0].message == "no header at all"

    def test_blank_lines_skipped(self):
        records = list(read_log_lines([PAPER_LINE, "", "   ", PAPER_LINE]))
        assert len(records) == 2

    def test_long_streams_past_detection_buffer(self):
        lines = [PAPER_LINE] * 250
        records = list(read_log_lines(lines))
        assert len(records) == 250
        assert records[-1].source == "serviceManager"
