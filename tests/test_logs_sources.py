"""Unit tests for log sources and the ground-truth template library."""

import random

import pytest

from repro.logs.record import Severity, WILDCARD
from repro.logs.sources import (
    Flow,
    GroundTruthTemplate,
    ReplaySource,
    ScriptedSource,
    TemplateLibrary,
    choice,
    constant,
    hex_id,
    integer,
    ip_address,
)

from conftest import make_record


class TestSamplers:
    def setup_method(self):
        self.rng = random.Random(0)

    def test_constant(self):
        assert constant("x")(self.rng) == "x"

    def test_integer_in_range(self):
        for _ in range(50):
            value = int(integer(5, 9)(self.rng))
            assert 5 <= value <= 9

    def test_choice_from_pool(self):
        sampler = choice(["a", "b"])
        assert all(sampler(self.rng) in ("a", "b") for _ in range(20))

    def test_ip_address_shape(self):
        parts = ip_address()(self.rng).split(".")
        assert len(parts) == 4
        assert parts[0] == "10"

    def test_hex_id_length_and_alphabet(self):
        value = hex_id(12)(self.rng)
        assert len(value) == 12
        assert all(character in "0123456789abcdef" for character in value)


class TestGroundTruthTemplate:
    def test_sampler_count_must_match_wildcards(self):
        with pytest.raises(ValueError, match="wildcards"):
            GroundTruthTemplate(0, f"a {WILDCARD} b", samplers=())

    def test_variable_positions(self):
        template = GroundTruthTemplate(
            0, f"a {WILDCARD} b {WILDCARD}",
            samplers=(constant("1"), constant("2")),
        )
        assert template.variable_positions == {1, 3}

    def test_instantiate_substitutes_in_order(self):
        template = GroundTruthTemplate(
            0, f"x {WILDCARD} y {WILDCARD}",
            samplers=(constant("1"), constant("2")),
        )
        message, values = template.instantiate(random.Random(0))
        assert message == "x 1 y 2"
        assert values == ("1", "2")


class TestTemplateLibrary:
    def _library(self) -> TemplateLibrary:
        library = TemplateLibrary()
        library.add(f"Sending {WILDCARD} bytes", (integer(1, 9),))
        library.add("Connection closed")
        return library

    def test_sequential_ids(self):
        library = self._library()
        assert [entry.template_id for entry in library] == [0, 1]
        assert len(library) == 2

    def test_truth_for_matches_static_and_wildcards(self):
        library = self._library()
        truth = library.truth_for("Sending 7 bytes")
        assert truth is not None and truth.template_id == 0
        truth = library.truth_for("Connection closed")
        assert truth is not None and truth.template_id == 1

    def test_truth_for_unknown_message(self):
        library = self._library()
        assert library.truth_for("Unrelated line here") is None

    def test_truth_for_respects_token_count(self):
        library = self._library()
        assert library.truth_for("Sending 7 bytes now") is None

    def test_truth_for_index_tracks_additions(self):
        # truth_for consults a token-count index, which must stay
        # consistent as templates are registered incrementally.
        library = self._library()
        assert library.truth_for("Sending 7 widgets") is None
        added = library.add(f"Sending {WILDCARD} widgets", (integer(1, 9),))
        truth = library.truth_for("Sending 7 widgets")
        assert truth is added

    def test_truth_for_prefers_earlier_registration_on_ambiguity(self):
        # Two templates can both match a message (wildcards overlap
        # static tokens); the linear scan always returned the earlier
        # registration, and the indexed lookup must preserve that.
        library = TemplateLibrary()
        first = library.add(f"job {WILDCARD} done", (integer(1, 9),))
        library.add(f"job {WILDCARD} {WILDCARD}",
                    (integer(1, 9), constant("done")))
        assert library.truth_for("job 3 done") is first

    def test_truth_for_index_matches_linear_scan(self):
        # The index is a pure optimization: on a mixed library, every
        # probe must agree with the brute-force definition.
        library = TemplateLibrary()
        library.add("alpha beta")
        library.add(f"alpha {WILDCARD}", (integer(0, 99),))
        library.add(f"{WILDCARD} beta gamma", (integer(0, 99),))
        library.add("one two three four")

        def linear(message):
            from repro.logs.record import tokenize
            tokens = tokenize(message)
            for entry in library:
                template_tokens = tokenize(entry.template)
                if len(template_tokens) != len(tokens):
                    continue
                if all(expected == WILDCARD or expected == actual
                       for expected, actual in zip(template_tokens, tokens)):
                    return entry
            return None

        probes = [
            "alpha beta", "alpha 42", "17 beta gamma",
            "one two three four", "no match at all here", "alpha",
        ]
        for probe in probes:
            assert library.truth_for(probe) is linear(probe)


class TestReplaySource:
    def test_replays_in_order_and_restarts(self):
        records = [make_record(f"m{i}", sequence=i) for i in range(3)]
        source = ReplaySource("replay", records)
        first = list(source)
        second = list(source)
        assert [r.message for r in first] == ["m0", "m1", "m2"]
        assert first == second
        assert len(source) == 3


class TestScriptedSource:
    def _source(self, **kwargs) -> ScriptedSource:
        library = TemplateLibrary()
        start = library.add("job started", severity=Severity.INFO)
        end = library.add("job finished", severity=Severity.INFO)
        fail = library.add("job crashed", severity=Severity.ERROR)
        flows = [
            Flow("ok", (start.template_id, end.template_id), weight=9.0),
            Flow("bad", (start.template_id, fail.template_id), weight=1.0,
                 anomalous=True),
        ]
        defaults = dict(sessions=50, seed=3)
        defaults.update(kwargs)
        return ScriptedSource("svc", library, flows, **defaults)

    def test_requires_flows(self):
        library = TemplateLibrary()
        with pytest.raises(ValueError, match="at least one flow"):
            ScriptedSource("svc", library, [])

    def test_emits_expected_record_count(self):
        records = list(self._source())
        assert len(records) == 50 * 2  # every flow has 2 steps

    def test_timestamps_monotonic(self):
        records = list(self._source())
        times = [record.timestamp for record in records]
        assert times == sorted(times)

    def test_sessions_play_complete_flows(self):
        records = list(self._source(concurrency=1))
        by_session = {}
        for record in records:
            by_session.setdefault(record.session_id, []).append(record.message)
        for messages in by_session.values():
            assert messages[0] == "job started"
            assert messages[1] in ("job finished", "job crashed")

    def test_anomalous_flows_label_records(self):
        records = list(self._source(sessions=200))
        anomalous = [record for record in records if record.is_anomalous]
        assert anomalous, "weight-1 flow should appear in 200 sessions"
        assert all(record.message in ("job started", "job crashed")
                   for record in anomalous)

    def test_deterministic_for_seed(self):
        first = [(r.message, r.timestamp) for r in self._source(seed=5)]
        second = [(r.message, r.timestamp) for r in self._source(seed=5)]
        assert first == second

    def test_concurrency_interleaves_sessions(self):
        records = list(self._source(sessions=30, concurrency=5))
        transitions = 0
        for earlier, later in zip(records, records[1:]):
            if earlier.session_id != later.session_id:
                transitions += 1
        # With concurrency, far more session switches than sessions.
        assert transitions > 30
