"""Checkpoint file signatures: resume must notice rotation and rewrite.

A byte offset alone cannot tell which file it refers to.  The
signature (inode/device + head-bytes hash) stored next to each
committed offset lets a restarted tail distinguish the three cases:

* untouched or appended file  → resume at the offset (no re-emit);
* rotated file, even to one of the same size → restart from the top;
* rewritten-in-place file     → restart from the top.
"""

import asyncio
import json
import os

import pytest

from repro.core.config import IngestConfig
from repro.ingest import CheckpointStore, FileTailSource, IngestService
from repro.ingest.sources import _SIGNATURE_HEAD_BYTES


def _drain(path, checkpoint):
    """Run one --once-style ingest over ``path``; return record messages."""

    class Sink:
        def __init__(self):
            self.messages = []

        def process_batch(self, records):
            self.messages.extend(record.message for record in records)
            return []

    sink = Sink()
    source = FileTailSource(path, name="tail", follow=False)
    service = IngestService(
        [source], sink,
        config=IngestConfig(batch_size=8, max_batch_age=5.0, lateness=0.0),
        checkpoint=checkpoint,
    )
    asyncio.run(service.run())
    return sink.messages, source


def _write(path, lines):
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")


@pytest.fixture
def log(tmp_path):
    path = tmp_path / "svc.log"
    _write(path, [f"2024-01-01 00:00:{i:02d} - svc - INFO - event {i}"
                  for i in range(8)])
    return path


class TestSignatureCapture:
    def test_signature_identifies_the_file(self, log):
        source = FileTailSource(log, name="tail")
        signature = source.signature()
        status = os.stat(log)
        assert signature["inode"] == status.st_ino
        assert signature["device"] == status.st_dev
        assert signature["head_len"] == min(status.st_size,
                                            _SIGNATURE_HEAD_BYTES)
        assert len(signature["head_sha1"]) == 40

    def test_signature_none_for_missing_file(self, tmp_path):
        assert FileTailSource(tmp_path / "nope.log").signature() is None

    def test_signature_stable_across_appends(self, log):
        source = FileTailSource(log, name="tail")
        before = source.signature()
        with open(log, "a", encoding="utf-8") as handle:
            handle.write("2024-01-01 00:01:00 - svc - INFO - more\n")
        assert source.signature() == before

    def test_checkpoint_persists_signature(self, log, tmp_path):
        store_path = tmp_path / "offsets.json"
        _, source = _drain(log, CheckpointStore(store_path))
        payload = json.loads(store_path.read_text())
        assert payload["tail"]["offset"] == os.path.getsize(log)
        assert payload["tail"]["signature"]["inode"] == os.stat(log).st_ino

    def test_legacy_integer_checkpoints_still_load(self, tmp_path):
        store_path = tmp_path / "offsets.json"
        store_path.write_text(json.dumps({"tail": 123}))
        store = CheckpointStore(store_path)
        assert store.get("tail") == 123
        assert store.get_signature("tail") is None

    def test_none_signature_keeps_the_stored_identity(self, tmp_path):
        # A commit landing while the file is mid-rotation (signature
        # momentarily unavailable) must not erase the stored identity —
        # that would silently disable the stale-offset protection.
        store = CheckpointStore(tmp_path / "offsets.json")
        signature = {"inode": 1, "device": 2, "head_len": 3,
                     "head_sha1": "ab"}
        store.update("tail", 100, signature)
        store.update("tail", 150, None)
        assert store.get("tail") == 150
        assert store.get_signature("tail") == signature


class TestResumeDecisions:
    def test_append_resumes_without_reemitting(self, log, tmp_path):
        store_path = tmp_path / "offsets.json"
        first, _ = _drain(log, CheckpointStore(store_path))
        assert len(first) == 8
        with open(log, "a", encoding="utf-8") as handle:
            handle.write("2024-01-01 00:01:00 - svc - INFO - appended\n")
        second, source = _drain(log, CheckpointStore(store_path))
        assert [m.split(" - ")[-1] for m in second] == ["appended"]
        assert source.rotations == 0
        assert source.truncations == 0

    def test_rotation_with_same_size_restarts(self, log, tmp_path):
        # The case a bare offset cannot see: the rotated-in file has
        # exactly the old size, so seek(offset) would "succeed" at EOF
        # and silently emit nothing.
        store_path = tmp_path / "offsets.json"
        first, _ = _drain(log, CheckpointStore(store_path))
        size = os.path.getsize(log)
        rotated = log.parent / "svc.log.rotated"
        os.rename(log, rotated)
        _write(log, [f"2024-01-01 00:02:{i:02d} - svc - INFO - fresh {i}"
                     for i in range(8)])
        assert os.path.getsize(log) == size  # same-size rotation, by design
        second, source = _drain(log, CheckpointStore(store_path))
        assert len(second) == 8, "the fresh file must re-emit from the top"
        assert all("fresh" in message for message in second)
        assert source.rotations == 1
        assert source.truncations == 0

    def test_in_place_rewrite_restarts(self, log, tmp_path):
        store_path = tmp_path / "offsets.json"
        _drain(log, CheckpointStore(store_path))
        size = os.path.getsize(log)
        # Same inode, same size, different bytes: an in-place rewrite.
        _write(log, [f"2024-01-01 00:03:{i:02d} - svc - INFO - fixed {i}"
                     for i in range(8)])
        assert os.path.getsize(log) == size
        second, source = _drain(log, CheckpointStore(store_path))
        assert len(second) == 8
        assert all("fixed" in message for message in second)
        assert source.rotations == 0
        assert source.truncations == 1

    def test_legacy_checkpoint_without_signature_trusts_offset(
        self, log, tmp_path
    ):
        store_path = tmp_path / "offsets.json"
        _drain(log, CheckpointStore(store_path))
        # Strip the signature, as a pre-signature checkpoint would be.
        payload = json.loads(store_path.read_text())
        store_path.write_text(json.dumps(
            {name: entry["offset"] for name, entry in payload.items()}
        ))
        with open(log, "a", encoding="utf-8") as handle:
            handle.write("2024-01-01 00:04:00 - svc - INFO - late\n")
        second, _ = _drain(log, CheckpointStore(store_path))
        assert [m.split(" - ")[-1] for m in second] == ["late"]

    def test_missing_file_keeps_offset_for_reappearance(self, log, tmp_path):
        store_path = tmp_path / "offsets.json"
        _drain(log, CheckpointStore(store_path))
        signature = CheckpointStore(store_path).get_signature("tail")
        offset = CheckpointStore(store_path).get("tail")
        os.remove(log)
        source = FileTailSource(log, name="tail", follow=False)
        assert source.resume_offset(offset, signature) == offset


class TestNamespacedCheckpoints:
    """Per-tenant views over one shared store (the gateway's layout)."""

    def test_namespaces_keep_same_source_names_disjoint(self, tmp_path):
        store = CheckpointStore(tmp_path / "shared.json")
        acme = store.namespaced("acme")
        globex = store.namespaced("globex")
        acme.update("tail", 100, {"kind": "sig"})
        globex.update("tail", 7, None)
        acme.save()
        assert acme.get("tail") == 100
        assert globex.get("tail") == 7
        assert acme.get_signature("tail") == {"kind": "sig"}
        assert globex.get_signature("tail") is None
        # The backing store sees the prefixed keys, nothing else.
        reloaded = CheckpointStore(tmp_path / "shared.json")
        assert reloaded.get("acme/tail") == 100
        assert reloaded.get("globex/tail") == 7
        assert reloaded.get("tail") == 0

    def test_legacy_unprefixed_keys_are_untouched(self, tmp_path):
        store = CheckpointStore(tmp_path / "shared.json")
        store.update("tail", 42)
        view = store.namespaced("acme")
        view.update("tail", 5)
        assert store.get("tail") == 42
        assert view.get("tail") == 5

    @pytest.mark.parametrize("bad", ["", "a/b", "/"])
    def test_invalid_namespace_rejected(self, bad, tmp_path):
        store = CheckpointStore(tmp_path / "shared.json")
        with pytest.raises(ValueError, match="namespace"):
            store.namespaced(bad)
