"""Tests for detector save/load round-trips."""

import pytest

from repro.api.registry import REGISTRY
from repro.detection import DeepLogDetector, LogRobustDetector
from repro.detection.persistence import (
    _PERSISTENCE,
    load_deeplog,
    load_detector,
    load_logrobust,
    save_deeplog,
    save_detector,
    save_logrobust,
)
from repro.logs.record import ParsedLog, WILDCARD

from conftest import make_record


TEMPLATES = {
    0: "worker started",
    1: f"request served in {WILDCARD} ms",
    2: "worker stopped",
    3: "hard crash detected",
}


def _event(template_id, value=None, session="s"):
    template = TEMPLATES[template_id]
    message = template.replace(WILDCARD, str(value)) if value is not None \
        else template
    return ParsedLog(
        record=make_record(message, session_id=session),
        template_id=template_id,
        template=template,
        variables=(str(value),) if value is not None else (),
    )


def _normal_session(index):
    events = [_event(0, session=f"s{index}")]
    events += [
        _event(1, value=40 + step, session=f"s{index}") for step in range(5)
    ]
    events.append(_event(2, session=f"s{index}"))
    return events


class TestDeepLogPersistence:
    @pytest.fixture(scope="class")
    def fitted(self):
        detector = DeepLogDetector(window=4, top_g=2, epochs=6, hidden=16,
                                   min_value_observations=20, seed=0)
        detector.fit([_normal_session(index) for index in range(40)])
        return detector

    def test_roundtrip_preserves_verdicts(self, fitted, tmp_path):
        save_deeplog(fitted, tmp_path / "deeplog")
        restored = load_deeplog(tmp_path / "deeplog")
        sessions = [_normal_session(0)]
        bad = _normal_session(1)
        bad.insert(3, _event(3, session="bad"))
        sessions.append(bad)
        quantitative = _normal_session(2)
        quantitative[3] = _event(1, value=9_999_999, session="s2")
        sessions.append(quantitative)
        for session in sessions:
            assert restored.detect(session).anomalous == \
                fitted.detect(session).anomalous

    def test_roundtrip_preserves_scores(self, fitted, tmp_path):
        save_deeplog(fitted, tmp_path / "deeplog")
        restored = load_deeplog(tmp_path / "deeplog")
        session = _normal_session(5)
        assert restored.detect(session).score == pytest.approx(
            fitted.detect(session).score
        )

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_deeplog(DeepLogDetector(), tmp_path / "nope")

    def test_wrong_kind_rejected(self, fitted, tmp_path):
        save_deeplog(fitted, tmp_path / "deeplog")
        with pytest.raises(ValueError, match="expected 'logrobust'"):
            load_logrobust(tmp_path / "deeplog")


class TestLogRobustPersistence:
    @pytest.fixture(scope="class")
    def fitted(self):
        sessions = [_normal_session(index) for index in range(25)]
        labels = [False] * 25
        for index in range(8):
            bad = _normal_session(100 + index)
            bad.insert(3, _event(3, session=f"bad{index}"))
            sessions.append(bad)
            labels.append(True)
        detector = LogRobustDetector(max_length=10, epochs=25, hidden=16,
                                     seed=0)
        detector.fit(sessions, labels)
        return detector

    def test_roundtrip_preserves_probability(self, fitted, tmp_path):
        save_logrobust(fitted, tmp_path / "logrobust")
        restored = load_logrobust(tmp_path / "logrobust")
        bad = _normal_session(0)
        bad.insert(3, _event(3))
        assert restored.detect(bad).score == pytest.approx(
            fitted.detect(bad).score
        )
        assert restored.detect(bad).anomalous == fitted.detect(bad).anomalous

    def test_degenerate_flag_roundtrips(self, tmp_path):
        detector = LogRobustDetector(epochs=2)
        detector.fit([_normal_session(0)], [False])
        save_logrobust(detector, tmp_path / "degenerate")
        restored = load_logrobust(tmp_path / "degenerate")
        result = restored.detect(_normal_session(1))
        assert not result.anomalous
        assert any("without labelled anomalies" in r for r in result.reasons)

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_logrobust(LogRobustDetector(), tmp_path / "nope")


#: Deep detectors train at full size in minutes; the registry-wide
#: round-trip only needs *fidelity*, so shrink their training knobs.
_FAST_OPTIONS = {
    "deeplog": {"window": 4, "top_g": 2, "epochs": 2, "hidden": 8,
                "min_value_observations": 100, "seed": 0},
    "loganomaly": {"window": 4, "epochs": 2, "hidden": 8, "seed": 0},
    "logrobust": {"max_length": 10, "epochs": 4, "hidden": 8, "seed": 0},
}


class TestEveryRegisteredDetectorRoundTrips:
    """Save/load fidelity for the whole registry, not a curated list.

    Parametrized over ``REGISTRY.names("detector")`` so a 9th/10th
    detector registration cannot ship without persistence support:
    :func:`save_detector` raises for any type missing from the
    dispatch table, failing the new parameter automatically.
    """

    @pytest.fixture(scope="class")
    def corpus(self):
        sessions = [_normal_session(index) for index in range(30)]
        labels = [False] * 30
        for index in range(6):
            bad = _normal_session(100 + index)
            bad.insert(3, _event(3, session=f"bad{index}"))
            sessions.append(bad)
            labels.append(True)
        anomalous_probe = _normal_session(77)
        anomalous_probe.insert(3, _event(3, session="probe"))
        probes = [_normal_session(55), anomalous_probe]
        return sessions, labels, probes

    def test_dispatch_table_covers_the_registry(self):
        assert set(_PERSISTENCE) == set(REGISTRY.names("detector"))

    @pytest.mark.parametrize("name", sorted(REGISTRY.names("detector")))
    def test_roundtrip_preserves_detection(self, name, corpus, tmp_path):
        sessions, labels, probes = corpus
        detector = REGISTRY.create(
            "detector", name, dict(_FAST_OPTIONS.get(name, {})))
        detector.fit(sessions, labels)
        before = [detector.detect(probe) for probe in probes]
        save_detector(detector, tmp_path / name)
        restored = load_detector(tmp_path / name)
        after = [restored.detect(probe) for probe in probes]
        assert after == before

    def test_save_detector_rejects_unknown_types(self, tmp_path):
        with pytest.raises(ValueError, match="no persistence support"):
            save_detector(object(), tmp_path / "nope")
