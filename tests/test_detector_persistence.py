"""Tests for deep-detector save/load round-trips."""

import pytest

from repro.detection import DeepLogDetector, LogRobustDetector
from repro.detection.persistence import (
    load_deeplog,
    load_logrobust,
    save_deeplog,
    save_logrobust,
)
from repro.logs.record import ParsedLog, WILDCARD

from conftest import make_record


TEMPLATES = {
    0: "worker started",
    1: f"request served in {WILDCARD} ms",
    2: "worker stopped",
    3: "hard crash detected",
}


def _event(template_id, value=None, session="s"):
    template = TEMPLATES[template_id]
    message = template.replace(WILDCARD, str(value)) if value is not None \
        else template
    return ParsedLog(
        record=make_record(message, session_id=session),
        template_id=template_id,
        template=template,
        variables=(str(value),) if value is not None else (),
    )


def _normal_session(index):
    events = [_event(0, session=f"s{index}")]
    events += [
        _event(1, value=40 + step, session=f"s{index}") for step in range(5)
    ]
    events.append(_event(2, session=f"s{index}"))
    return events


class TestDeepLogPersistence:
    @pytest.fixture(scope="class")
    def fitted(self):
        detector = DeepLogDetector(window=4, top_g=2, epochs=6, hidden=16,
                                   min_value_observations=20, seed=0)
        detector.fit([_normal_session(index) for index in range(40)])
        return detector

    def test_roundtrip_preserves_verdicts(self, fitted, tmp_path):
        save_deeplog(fitted, tmp_path / "deeplog")
        restored = load_deeplog(tmp_path / "deeplog")
        sessions = [_normal_session(0)]
        bad = _normal_session(1)
        bad.insert(3, _event(3, session="bad"))
        sessions.append(bad)
        quantitative = _normal_session(2)
        quantitative[3] = _event(1, value=9_999_999, session="s2")
        sessions.append(quantitative)
        for session in sessions:
            assert restored.detect(session).anomalous == \
                fitted.detect(session).anomalous

    def test_roundtrip_preserves_scores(self, fitted, tmp_path):
        save_deeplog(fitted, tmp_path / "deeplog")
        restored = load_deeplog(tmp_path / "deeplog")
        session = _normal_session(5)
        assert restored.detect(session).score == pytest.approx(
            fitted.detect(session).score
        )

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_deeplog(DeepLogDetector(), tmp_path / "nope")

    def test_wrong_kind_rejected(self, fitted, tmp_path):
        save_deeplog(fitted, tmp_path / "deeplog")
        with pytest.raises(ValueError, match="expected 'logrobust'"):
            load_logrobust(tmp_path / "deeplog")


class TestLogRobustPersistence:
    @pytest.fixture(scope="class")
    def fitted(self):
        sessions = [_normal_session(index) for index in range(25)]
        labels = [False] * 25
        for index in range(8):
            bad = _normal_session(100 + index)
            bad.insert(3, _event(3, session=f"bad{index}"))
            sessions.append(bad)
            labels.append(True)
        detector = LogRobustDetector(max_length=10, epochs=25, hidden=16,
                                     seed=0)
        detector.fit(sessions, labels)
        return detector

    def test_roundtrip_preserves_probability(self, fitted, tmp_path):
        save_logrobust(fitted, tmp_path / "logrobust")
        restored = load_logrobust(tmp_path / "logrobust")
        bad = _normal_session(0)
        bad.insert(3, _event(3))
        assert restored.detect(bad).score == pytest.approx(
            fitted.detect(bad).score
        )
        assert restored.detect(bad).anomalous == fitted.detect(bad).anomalous

    def test_degenerate_flag_roundtrips(self, tmp_path):
        detector = LogRobustDetector(epochs=2)
        detector.fit([_normal_session(0)], [False])
        save_logrobust(detector, tmp_path / "degenerate")
        restored = load_logrobust(tmp_path / "degenerate")
        result = restored.detect(_normal_session(1))
        assert not result.anomalous
        assert any("without labelled anomalies" in r for r in result.reasons)

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_logrobust(LogRobustDetector(), tmp_path / "nope")
