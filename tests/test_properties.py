"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.detection import CountVectorizer, SemanticVectorizer
from repro.logs.instability import InstabilityInjector
from repro.logs.record import (
    LogRecord,
    ParsedLog,
    Severity,
    WILDCARD,
    template_of,
    tokenize,
)
from repro.logs.sources import ReplaySource
from repro.logs.stream import DuplicationNoise, ReorderingNoise, interleave
from repro.metrics.detection import confusion_counts
from repro.metrics.unsupervised import (
    cluster_cohesion,
    mdl_score,
    unsupervised_quality,
)
from repro.parsing.base import MinedTemplate
from repro.parsing.spell import _lcs_length

token_text = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"), max_codepoint=0x24F),
    min_size=1,
    max_size=8,
)
message_text = st.lists(token_text, min_size=0, max_size=12).map(" ".join)


def _record(message: str, timestamp: float = 0.0, sequence: int = 0) -> LogRecord:
    return LogRecord(
        timestamp=timestamp,
        source="prop",
        severity=Severity.INFO,
        message=message,
        sequence=sequence,
    )


class TestTokenizeProperties:
    @given(message_text)
    def test_tokens_contain_no_whitespace(self, message):
        assert all(" " not in token for token in tokenize(message))

    @given(message_text)
    def test_join_of_tokens_retokenizes_identically(self, message):
        tokens = tokenize(message)
        assert tokenize(" ".join(tokens)) == tokens


class TestTemplateOfProperties:
    @given(st.lists(token_text, min_size=1, max_size=10), st.data())
    def test_reconstruction_roundtrip(self, tokens, data):
        message = " ".join(tokens)
        positions = data.draw(
            st.sets(st.integers(0, len(tokens) - 1))
        )
        template, variables = template_of(message, positions)
        parsed = ParsedLog(
            record=_record(message),
            template_id=0,
            template=template,
            variables=variables,
        )
        assert parsed.reconstruct() == " ".join(tokenize(message))

    @given(st.lists(token_text, min_size=1, max_size=10), st.data())
    def test_variable_count_matches_positions(self, tokens, data):
        positions = data.draw(st.sets(st.integers(0, len(tokens) - 1)))
        template, variables = template_of(" ".join(tokens), positions)
        assert len(variables) == len(positions)
        assert tokenize(template).count(WILDCARD) == len(positions)


class TestMinedTemplateProperties:
    @given(st.lists(token_text, min_size=1, max_size=8), st.data())
    def test_merge_only_generalizes(self, tokens, data):
        template = MinedTemplate(0, list(tokens))
        other = data.draw(
            st.lists(token_text, min_size=len(tokens), max_size=len(tokens))
        )
        before = list(template.tokens)
        template.merge(other)
        for old, new in zip(before, template.tokens):
            assert new == old or new == WILDCARD

    @given(st.lists(token_text, min_size=1, max_size=8))
    def test_merge_identical_is_identity(self, tokens):
        template = MinedTemplate(0, list(tokens))
        template.merge(list(tokens))
        assert template.tokens == list(tokens)

    @given(st.lists(token_text, min_size=1, max_size=8), st.data())
    def test_similarity_bounds(self, tokens, data):
        template = MinedTemplate(0, list(tokens))
        other = data.draw(st.lists(token_text, max_size=10))
        similarity = template.similarity(other)
        assert 0.0 <= similarity <= 1.0


class TestLcsProperties:
    @given(st.lists(token_text, max_size=10), st.lists(token_text, max_size=10))
    def test_lcs_bounded_by_shorter(self, left, right):
        lcs = _lcs_length(left, right)
        assert 0 <= lcs <= min(len(left), len(right))

    @given(st.lists(token_text, max_size=10))
    def test_lcs_with_self_is_length(self, tokens):
        assert _lcs_length(tokens, tokens) == len(tokens)

    @given(st.lists(token_text, max_size=8), st.lists(token_text, max_size=8))
    def test_lcs_symmetric(self, left, right):
        assert _lcs_length(left, right) == _lcs_length(right, left)


class TestStreamProperties:
    @given(
        st.lists(st.floats(0, 1000, allow_nan=False), max_size=30),
        st.lists(st.floats(0, 1000, allow_nan=False), max_size=30),
    )
    def test_interleave_sorted_and_complete(self, times_a, times_b):
        source_a = ReplaySource(
            "a", [_record(f"a{i}", t, i) for i, t in enumerate(sorted(times_a))]
        )
        source_b = ReplaySource(
            "b", [_record(f"b{i}", t, i) for i, t in enumerate(sorted(times_b))]
        )
        merged = list(interleave([source_a, source_b]))
        assert len(merged) == len(times_a) + len(times_b)
        timestamps = [record.timestamp for record in merged]
        assert timestamps == sorted(timestamps)

    @given(
        st.integers(0, 50),
        st.floats(0.0, 1.0),
        st.integers(0, 10),
    )
    @settings(max_examples=25)
    def test_reordering_preserves_multiset(self, count, max_delay, seed):
        records = [_record(f"m{i}", float(i), i) for i in range(count)]
        noise = ReorderingNoise(max_delay=max_delay, seed=seed)
        output = list(noise.apply(iter(records)))
        assert sorted(r.message for r in output) == sorted(
            r.message for r in records
        )

    @given(st.integers(0, 50), st.floats(0.0, 1.0), st.integers(0, 10))
    @settings(max_examples=25)
    def test_duplication_never_loses_records(self, count, rate, seed):
        records = [_record(f"m{i}", float(i), i) for i in range(count)]
        noise = DuplicationNoise(rate=rate, seed=seed)
        output = [r.message for r in noise.apply(iter(records))]
        for record in records:
            assert record.message in output
        assert len(output) <= 2 * count


class TestInstabilityProperties:
    @given(st.floats(0.0, 1.0), st.integers(0, 20))
    @settings(max_examples=25)
    def test_never_loses_content_entirely(self, ratio, seed):
        records = [
            _record(f"event number {i} occurred", float(i), i)
            for i in range(30)
        ]
        injector = InstabilityInjector(ratio=ratio, seed=seed)
        output = list(injector.apply(records))
        assert len(output) >= 30  # only NOISE duplicates, never drops
        # Anomaly labels survive alteration.
        assert not any(record.is_anomalous for record in output)


class TestConfusionProperties:
    @given(st.lists(st.tuples(st.booleans(), st.booleans()), max_size=60))
    def test_counts_partition_the_data(self, pairs):
        predictions = [p for p, _ in pairs]
        truths = [t for _, t in pairs]
        report = confusion_counts(predictions, truths)
        total = (
            report.true_positives + report.false_positives
            + report.false_negatives + report.true_negatives
        )
        assert total == len(pairs)
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        epsilon = 1e-12
        low = min(report.precision, report.recall) - epsilon
        high = max(report.precision, report.recall) + epsilon
        assert (low <= report.f1 <= high) or report.f1 == 0.0


class TestCountVectorProperties:
    @given(
        st.lists(
            st.lists(st.integers(0, 6), min_size=1, max_size=10),
            min_size=1,
            max_size=10,
        )
    )
    def test_row_sum_equals_session_length(self, id_sessions):
        sessions = [
            [
                ParsedLog(record=_record(f"t{i}"), template_id=i,
                          template=f"t{i}")
                for i in ids
            ]
            for ids in id_sessions
        ]
        vectorizer = CountVectorizer()
        matrix = vectorizer.fit_transform(sessions)
        for row, session in zip(matrix, sessions):
            assert row.sum() == len(session)


class TestSemanticProperties:
    @given(st.lists(token_text, min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_self_similarity_is_one(self, tokens):
        vectorizer = SemanticVectorizer()
        template = " ".join(tokens)
        np.testing.assert_allclose(
            vectorizer.similarity(template, template), 1.0, atol=1e-9
        )

    @given(st.lists(token_text, min_size=1, max_size=8),
           st.lists(token_text, min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_similarity_symmetric_and_bounded(self, left, right):
        vectorizer = SemanticVectorizer()
        a = " ".join(left)
        b = " ".join(right)
        assert vectorizer.similarity(a, b) == vectorizer.similarity(b, a)
        assert -1.0 - 1e-9 <= vectorizer.similarity(a, b) <= 1.0 + 1e-9


class TestUnsupervisedMetricProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.lists(token_text, min_size=1,
                                                  max_size=6)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=25)
    def test_scores_bounded(self, items):
        parsed = [
            ParsedLog(
                record=_record(" ".join(tokens)),
                template_id=template_id,
                template=" ".join(tokens),
            )
            for template_id, tokens in items
        ]
        assert 0.0 <= mdl_score(parsed) <= 1.0
        assert 0.0 <= cluster_cohesion(parsed) <= 1.0
        assert 0.0 <= unsupervised_quality(parsed) <= 1.0
