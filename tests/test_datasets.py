"""Unit tests for the synthetic dataset generators and split machinery."""

import pytest

from repro.datasets import (
    generate_bgl,
    generate_cloud_platform,
    generate_hdfs,
    train_test_split,
)
from repro.datasets.common import records_as_sessions
from repro.logs.structured import extract_structured_payload


class TestHdfs:
    def test_session_count(self, hdfs_small):
        assert len(hdfs_small.sessions) == 120

    def test_anomaly_rate_near_target(self):
        data = generate_hdfs(sessions=2000, anomaly_rate=0.03, seed=0)
        assert 0.015 <= data.anomaly_rate <= 0.05

    def test_every_record_has_its_session_label(self, hdfs_small):
        for record in hdfs_small.records:
            truth = hdfs_small.sessions[record.session_id]
            assert record.is_anomalous == truth.anomalous

    def test_block_id_consistent_within_session(self, hdfs_small):
        for session_id, records in hdfs_small.session_records().items():
            for record in records:
                blk_tokens = [
                    token for token in record.tokens if token.startswith("blk_")
                ]
                assert all(token == session_id for token in blk_tokens)

    def test_ground_truth_templates_match_messages(self, hdfs_small):
        for record in hdfs_small.records[:200]:
            assert hdfs_small.library.truth_for(record.message) is not None

    def test_quantitative_anomalies_have_normal_flow(self):
        data = generate_hdfs(sessions=800, anomaly_rate=0.2,
                             quantitative_share=1.0, seed=2)
        sessions = data.session_records()
        normal_lengths = {
            len(sessions[sid]) for sid in data.normal_sessions()
        }
        for session_id in data.anomalous_sessions():
            assert data.sessions[session_id].kind == "quantitative"
            assert len(sessions[session_id]) in normal_lengths

    def test_deterministic(self):
        one = generate_hdfs(sessions=50, seed=9)
        two = generate_hdfs(sessions=50, seed=9)
        assert [r.message for r in one.records] == [r.message for r in two.records]

    def test_invalid_anomaly_rate(self):
        with pytest.raises(ValueError, match="anomaly_rate"):
            generate_hdfs(sessions=10, anomaly_rate=2.0)


class TestBgl:
    def test_record_count(self, bgl_small):
        assert len(bgl_small) == 3000

    def test_per_record_labels_bucket_truth(self, bgl_small):
        for bucket_id, records in bgl_small.session_records().items():
            truth = bgl_small.sessions[bucket_id]
            assert truth.anomalous == any(r.is_anomalous for r in records)

    def test_alerts_are_bursty(self):
        data = generate_bgl(records=10_000, alert_episodes=5, seed=1)
        positions = [
            index for index, record in enumerate(data.records)
            if record.is_anomalous
        ]
        assert positions
        # Within a burst, consecutive alerts are a couple of records
        # apart; uniform placement would put them ~100 apart.  The
        # median gap separates the two regimes robustly.
        import statistics

        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert statistics.median(gaps) <= 5
        assert len(data.records) / len(positions) > 20

    def test_timestamps_monotonic(self, bgl_small):
        times = [record.timestamp for record in bgl_small.records]
        assert times == sorted(times)


class TestCloud:
    def test_sources_span_sessions(self, cloud_small):
        sessions = cloud_small.session_records()
        multi_source = sum(
            1
            for records in sessions.values()
            if len({record.source for record in records}) > 1
        )
        assert multi_source > len(sessions) / 2

    def test_three_sources_present(self, cloud_small):
        sources = {record.source for record in cloud_small.records}
        assert sources == {"api", "network", "storage"}

    def test_cross_source_anomaly_uses_two_sources(self):
        data = generate_cloud_platform(sessions=300, anomaly_rate=0.2, seed=4)
        sessions = data.session_records()
        cross = [
            sid for sid, truth in data.sessions.items()
            if truth.kind == "cross_source"
        ]
        assert cross
        for session_id in cross:
            sources = {record.source for record in sessions[session_id]}
            assert {"storage", "network"} <= sources

    def test_json_suffix_extractable(self, cloud_json):
        api_records = [r for r in cloud_json.records if r.source == "api"]
        assert api_records
        for record in api_records[:50]:
            extraction = extract_structured_payload(record.message)
            assert extraction.fmt == "json"
            assert "request_id" in extraction.payload

    def test_no_json_by_default(self, cloud_small):
        api_records = [r for r in cloud_small.records if r.source == "api"]
        for record in api_records[:50]:
            assert not extract_structured_payload(record.message).extracted


class TestSplit:
    def test_anomaly_free_training(self, hdfs_small):
        train, test = train_test_split(
            hdfs_small, train_fraction=0.5, anomaly_free_training=True, seed=1
        )
        assert not train.anomalous_sessions()
        assert set(test.anomalous_sessions()) == set(
            hdfs_small.anomalous_sessions()
        )

    def test_proportional_split(self):
        data = generate_hdfs(sessions=400, anomaly_rate=0.2, seed=3)
        train, test = train_test_split(
            data, train_fraction=0.5, anomaly_free_training=False, seed=1
        )
        assert train.anomalous_sessions()
        assert test.anomalous_sessions()

    def test_partition_is_exact(self, hdfs_small):
        train, test = train_test_split(hdfs_small, seed=2)
        train_ids = set(train.sessions)
        test_ids = set(test.sessions)
        assert train_ids.isdisjoint(test_ids)
        assert train_ids | test_ids == set(hdfs_small.sessions)
        assert len(train.records) + len(test.records) == len(hdfs_small.records)

    def test_invalid_fraction(self, hdfs_small):
        with pytest.raises(ValueError, match="train_fraction"):
            train_test_split(hdfs_small, train_fraction=1.0)

    def test_subset_consistency(self, hdfs_small):
        some = list(hdfs_small.sessions)[:10]
        subset = hdfs_small.subset(some)
        assert set(subset.sessions) == set(some)
        assert all(record.session_id in set(some) for record in subset.records)


class TestHelpers:
    def test_records_as_sessions_preserves_order(self, hdfs_small):
        grouped = records_as_sessions(hdfs_small.records)
        for records in grouped.values():
            sequences = [record.sequence for record in records]
            assert sequences == sorted(sequences)
