"""Full deployment-lifecycle integration test.

Walks the complete story a downstream operator would live through:
generate logs to disk → read them back with header auto-detection →
derive sessions from message identifiers → auto-calibrate the parser →
train → stream live records with alert dedup and admin feedback →
persist the parser inventory and the detector → restart and verify
verdicts survive the restart.
"""

import pytest

from repro import Pipeline, PipelineSpec
from repro.classify import AlertDeduplicator
from repro.classify.feedback import AdministratorSimulator, source_based_policy
from repro.datasets import generate_hdfs
from repro.detection import DeepLogDetector, sessions_from_parsed
from repro.detection.persistence import load_deeplog, save_deeplog
from repro.logs.formats import read_log_lines, render_line
from repro.logs.sessions import SessionKeyExtractor
from repro.parsing import (
    default_masker,
    load_templates,
    save_templates,
    seed_drain,
)


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    """One trained deployment over on-disk logs."""
    root = tmp_path_factory.mktemp("deployment")
    data = generate_hdfs(sessions=250, anomaly_rate=0.08, seed=17)
    log_path = root / "platform.log"
    log_path.write_text(
        "".join(render_line(record) + "\n" for record in data.records)
    )

    with open(log_path, encoding="utf-8") as handle:
        records = list(SessionKeyExtractor().assign(read_log_lines(handle)))
    cut = len(records) * 6 // 10

    system = Pipeline(
        PipelineSpec(auto_calibrate=True, calibration_sample=800),
        detector=DeepLogDetector(epochs=8, seed=0),
    )
    system.fit(records[:cut])
    return root, data, records, cut, system


class TestDeploymentLifecycle:
    def test_sessions_recovered_from_disk(self, deployment):
        _, data, records, _, _ = deployment
        recovered_sessions = {record.session_id for record in records}
        assert recovered_sessions == set(data.sessions)

    def test_live_run_with_dedup_and_admin(self, deployment):
        _, data, records, cut, system = deployment
        system.pools.create_pool("team-hdfs")
        policy = source_based_policy({"hdfs": "team-hdfs"})
        admin = AdministratorSimulator(system.pools, policy, diligence=1.0)
        dedup = AlertDeduplicator(window=120.0)

        raw_alerts = []
        delivered = []
        for alert in system.run_offline(records[cut:]):
            raw_alerts.append(alert)
            surviving = dedup.offer(alert)
            if surviving is not None:
                delivered.append(admin.review(surviving))
        assert delivered, "live split contains anomalies"
        assert dedup.total_seen == len(delivered) + dedup.total_suppressed
        # Precision is judged before dedup: dedup intentionally folds
        # repeats of the *same* incident signature, which collapses
        # true positives more than false ones.
        anomalous = set(data.anomalous_sessions())
        precision = sum(
            1 for alert in raw_alerts if alert.report.session_id in anomalous
        ) / len(raw_alerts)
        assert precision >= 0.7
        assert len(delivered) <= len(raw_alerts)

    def test_streaming_mode_on_same_deployment(self, deployment):
        _, data, records, cut, system = deployment
        streaming = system.stream(session_timeout=10.0)
        flagged = {
            alert.report.session_id
            for alert in streaming.run(records[cut:])
        }
        anomalous = set(data.anomalous_sessions())
        assert flagged & anomalous

    def test_restart_preserves_verdicts(self, deployment):
        root, data, records, cut, system = deployment
        templates_path = root / "templates.json"
        detector_dir = root / "detector"
        save_templates(system.parser, templates_path)
        save_deeplog(system.detector, detector_dir)

        parser = seed_drain(
            load_templates(templates_path), masker=system.parser.masker
        )
        detector = load_deeplog(detector_dir)

        live_sessions = sessions_from_parsed(parser.parse_all(records[cut:]))
        original_sessions = sessions_from_parsed(
            system.parser.parse_all(records[cut:])
        )
        mismatches = 0
        for session_id, session in live_sessions.items():
            if len(session) < 2:
                continue
            restored = detector.predict(session)
            original = system.detector.predict(original_sessions[session_id])
            mismatches += restored != original
        assert mismatches == 0
