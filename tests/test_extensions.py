"""Tests for the extension modules: Markov baseline, parser
persistence, alert deduplication."""

import pytest

from repro.classify import AlertDeduplicator, alert_signature
from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.detection import MarkovDetector
from repro.detection.base import DetectionResult
from repro.logs.record import ParsedLog
from repro.parsing import (
    DrainParser,
    default_masker,
    load_templates,
    save_templates,
    seed_drain,
)

from conftest import make_record


def _session(template_ids, session="s"):
    return [
        ParsedLog(
            record=make_record(f"event {tid}", session_id=session),
            template_id=tid,
            template=f"event {tid}",
        )
        for tid in template_ids
    ]


class TestMarkovDetector:
    @pytest.fixture(scope="class")
    def fitted(self):
        sessions = [_session([0, 1, 1, 2]) for _ in range(30)]
        sessions += [_session([0, 1, 1, 1, 2]) for _ in range(30)]
        return MarkovDetector(threshold=0.01).fit(sessions)

    def test_accepts_trained_flows(self, fitted):
        assert not fitted.detect(_session([0, 1, 1, 2])).anomalous
        assert not fitted.detect(_session([0, 1, 1, 1, 2])).anomalous

    def test_flags_unseen_transition(self, fitted):
        result = fitted.detect(_session([0, 2, 1]))
        assert result.anomalous
        assert any("transition" in reason for reason in result.reasons)

    def test_flags_wrong_start_and_end(self, fitted):
        assert fitted.detect(_session([1, 1, 2])).anomalous  # starts at 1
        assert fitted.detect(_session([0, 1, 1])).anomalous  # ends at 1

    def test_probability_api(self, fitted):
        assert fitted.probability(0, 1) == pytest.approx(1.0)
        assert fitted.probability(0, 2) == 0.0

    def test_smoothing_keeps_rare_transitions_positive(self):
        sessions = [_session([0, 1]) for _ in range(99)]
        sessions.append(_session([0, 2]))
        detector = MarkovDetector(threshold=0.001, smoothing=0.5)
        detector.fit(sessions)
        assert detector.probability(0, 2) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            MarkovDetector(threshold=1.0)
        with pytest.raises(ValueError, match="non-empty"):
            MarkovDetector().fit([])

    def test_hdfs_behaviour(self, hdfs_parsed, hdfs_small):
        from repro.detection import sessions_from_parsed
        from repro.metrics.detection import confusion_counts

        session_map = sessions_from_parsed(hdfs_parsed)
        normal_train = [
            session
            for session_id, session in session_map.items()
            if not hdfs_small.sessions[session_id].anomalous
        ][:50]
        detector = MarkovDetector(threshold=0.01).fit(normal_train)
        predictions = []
        truths = []
        for session_id, session in session_map.items():
            predictions.append(detector.predict(session))
            truths.append(hdfs_small.sessions[session_id].anomalous)
        report = confusion_counts(predictions, truths)
        # A one-step model catches the exception flows (unseen
        # transitions) with decent precision.
        assert report.recall >= 0.5
        assert report.precision >= 0.5


class TestParserPersistence:
    def test_roundtrip_preserves_inventory(self, tmp_path, hdfs_small):
        parser = DrainParser(masker=default_masker())
        parser.parse_all(hdfs_small.records)
        path = tmp_path / "templates.json"
        save_templates(parser, path)
        store = load_templates(path)
        assert store.templates() == parser.store.templates()
        assert [t.count for t in store] == [t.count for t in parser.store]

    def test_seeded_parser_keeps_ids(self, tmp_path, hdfs_small):
        original = DrainParser(masker=default_masker())
        original_parsed = original.parse_all(hdfs_small.records)
        path = tmp_path / "templates.json"
        save_templates(original, path)

        restarted = seed_drain(load_templates(path), masker=default_masker())
        restarted_parsed = restarted.parse_all(hdfs_small.records)
        assert [event.template_id for event in restarted_parsed] == [
            event.template_id for event in original_parsed
        ]
        # No duplicate templates minted for known statements.
        assert restarted.template_count == original.template_count

    def test_seeded_parser_extends_for_new_statements(self, tmp_path):
        original = DrainParser()
        original.parse_record(make_record("alpha beta 1"))
        path = tmp_path / "templates.json"
        save_templates(original, path)
        restarted = seed_drain(load_templates(path))
        parsed = restarted.parse_record(make_record("totally new statement"))
        assert parsed.template_id == 1  # after the saved range

    def test_corrupt_inventory_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "templates": []}')
        with pytest.raises(ValueError, match="version"):
            load_templates(path)
        path.write_text(
            '{"version": 1, "templates": [{"id": 5, "tokens": ["a"]}]}'
        )
        with pytest.raises(ValueError, match="dense"):
            load_templates(path)


def _alert(report_id, template, source="api", start=0.0):
    event = ParsedLog(
        record=make_record(template, source=source, timestamp=start,
                           session_id=f"s{report_id}"),
        template_id=0,
        template=template,
    )
    report = AnomalyReport(
        report_id=report_id,
        session_id=f"s{report_id}",
        events=(event,),
        detection=DetectionResult(anomalous=True, score=1.0),
    )
    return ClassifiedAlert(report=report, pool="default", criticality="low")


class TestAlertDeduplicator:
    def test_first_alert_passes(self):
        dedup = AlertDeduplicator(window=60.0)
        alert = _alert(0, "disk failing")
        assert dedup.offer(alert) is alert

    def test_repeat_within_window_suppressed(self):
        dedup = AlertDeduplicator(window=60.0)
        first = _alert(0, "disk failing", start=0.0)
        repeat = _alert(1, "disk failing", start=30.0)
        dedup.offer(first)
        assert dedup.offer(repeat) is None
        assert dedup.suppressed_count(first) == 1
        assert dedup.total_suppressed == 1

    def test_different_signature_passes(self):
        dedup = AlertDeduplicator(window=60.0)
        dedup.offer(_alert(0, "disk failing", source="storage"))
        other = _alert(1, "link down", source="network")
        assert dedup.offer(other) is other

    def test_quiet_signature_fires_again(self):
        dedup = AlertDeduplicator(window=10.0)
        dedup.offer(_alert(0, "disk failing", start=0.0))
        resumed = _alert(1, "disk failing", start=100.0)
        assert dedup.offer(resumed) is resumed

    def test_repeats_extend_the_window(self):
        dedup = AlertDeduplicator(window=10.0)
        dedup.offer(_alert(0, "disk failing", start=0.0))
        assert dedup.offer(_alert(1, "disk failing", start=8.0)) is None
        # 8s + 10s window: still suppressed at t=16 (last_seen moved).
        assert dedup.offer(_alert(2, "disk failing", start=16.0)) is None

    def test_expire_drops_stale_state(self):
        dedup = AlertDeduplicator(window=10.0)
        dedup.offer(_alert(0, "disk failing", start=0.0))
        dedup.offer(_alert(1, "link down", start=5.0))
        dedup.expire(now=100.0)
        assert dedup.live_signatures == 0

    def test_signature_ignores_event_order(self):
        left = _alert(0, "a b c")
        right = _alert(1, "a b c")
        assert alert_signature(left) == alert_signature(right)

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            AlertDeduplicator(window=0.0)
