"""Tests for the component registry behind the unified pipeline API."""

import pytest

from repro.api import REGISTRY, register_component
from repro.api.registry import ComponentRegistry


class TestBuiltinInventory:
    def test_all_nine_parsers_registered(self):
        assert REGISTRY.names("parser") == [
            "drain", "drain-distributed", "iplom", "lenma", "logcluster",
            "logram", "shiso", "slct", "spell",
        ]

    def test_detectors_cover_study_set_and_baselines(self):
        names = REGISTRY.names("detector")
        for expected in ("deeplog", "loganomaly", "logrobust", "pca",
                         "invariants", "logclustering", "keyword", "markov"):
            assert expected in names

    def test_executors_sessionizers_sources(self):
        assert REGISTRY.names("executor") == ["process", "serial", "thread"]
        assert REGISTRY.names("sessionizer") == ["streaming"]
        assert set(REGISTRY.names("source")) == {
            "adapter", "file", "replay", "socket",
        }

    def test_classes_carry_their_registry_identity(self):
        from repro.parsing import DrainParser

        assert DrainParser.component_kind == "parser"
        assert DrainParser.component_name == "drain"


class TestLookupAndCreate:
    def test_create_builds_with_options(self):
        detector = REGISTRY.create("detector", "deeplog",
                                   {"epochs": 3, "seed": 7})
        assert detector.epochs == 3
        assert detector.seed == 7

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="choose from"):
            REGISTRY.get("detector", "nonsense")

    def test_bad_option_names_component_and_signature(self):
        with pytest.raises(ValueError, match="deeplog"):
            REGISTRY.create("detector", "deeplog", {"bogus_knob": 1})

    def test_option_errors_are_nonraising(self):
        assert REGISTRY.option_errors("detector", "deeplog", {}) == []
        assert REGISTRY.option_errors("detector", "deeplog", {"nope": 1})
        assert REGISTRY.option_errors("detector", "missing", {})

    def test_describe_shows_signature(self):
        entry = REGISTRY.get("executor", "thread")
        assert entry.describe().startswith("thread(")
        assert "max_workers" in entry.describe()


class TestRegistration:
    def test_reregistering_same_class_is_idempotent(self):
        registry = ComponentRegistry()

        class Widget:
            def __init__(self, size: int = 1):
                self.size = size

        registry.add("parser", "widget", Widget)
        registry.add("parser", "widget", Widget)  # same class: fine
        assert registry.create("parser", "widget", {"size": 3}).size == 3

    def test_conflicting_registration_rejected(self):
        registry = ComponentRegistry()

        class A:
            pass

        class B:
            pass

        registry.add("parser", "dup", A)
        with pytest.raises(ValueError, match="already registered"):
            registry.add("parser", "dup", B)

    def test_decorator_conflict_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_component("executor", "serial")
            class Impostor:
                pass
