"""Unit tests for JSON/XML payload extraction (paper §IV)."""

import pytest

from repro.logs.structured import extract_structured_payload


class TestJsonExtraction:
    def test_trailing_json_object(self):
        result = extract_structured_payload(
            'Send 42 bytes {"user_id": 125, "service": "dart_vader"}'
        )
        assert result.fmt == "json"
        assert result.text == "Send 42 bytes"
        assert result.payload == {"user_id": 125, "service": "dart_vader"}

    def test_trailing_json_array_wraps_items(self):
        result = extract_structured_payload("values are [1, 2, 3]")
        assert result.fmt == "json"
        assert result.payload == {"_items": [1, 2, 3]}

    def test_nested_json(self):
        result = extract_structured_payload(
            'req done {"meta": {"region": "eu", "zone": 2}}'
        )
        assert result.payload["meta"] == {"region": "eu", "zone": 2}

    def test_whole_message_is_json(self):
        result = extract_structured_payload('{"a": 1}')
        assert result.text == ""
        assert result.payload == {"a": 1}


class TestRelaxedExtraction:
    def test_paper_example(self):
        # The exact example from §IV.
        result = extract_structured_payload(
            "Send 42 bytes to 121.13.4.26 {user_id=125, service_name=dart_vader}"
        )
        assert result.fmt == "relaxed"
        assert result.text == "Send 42 bytes to 121.13.4.26"
        assert result.payload == {"user_id": 125, "service_name": "dart_vader"}

    def test_colon_separated_pairs(self):
        result = extract_structured_payload("done {a: 1, b: two}")
        assert result.payload == {"a": 1, "b": "two"}

    def test_value_coercion(self):
        result = extract_structured_payload(
            "x {i=3, f=2.5, t=true, n=null, s=word}"
        )
        assert result.payload == {
            "i": 3, "f": 2.5, "t": True, "n": None, "s": "word",
        }

    def test_quoted_values_keep_spaces_out(self):
        result = extract_structured_payload('x {name="dart vader"}')
        assert result.payload == {"name": "dart vader"}


class TestXmlExtraction:
    def test_trailing_xml_elements(self):
        result = extract_structured_payload(
            "request logged <user>125</user><region>eu</region>"
        )
        assert result.fmt == "xml"
        assert result.text == "request logged"
        assert result.payload == {"user": 125, "region": "eu"}

    def test_xml_with_attributes(self):
        result = extract_structured_payload(
            'saved <item id="4">disk</item>'
        )
        assert result.fmt == "xml"
        assert result.payload == {"item": "disk"}


class TestNoExtraction:
    @pytest.mark.parametrize(
        "message",
        [
            "plain message with no payload",
            "odd braces { not a payload",
            "math uses {x} sometimes",  # unparsable bag
            "",
        ],
    )
    def test_passthrough(self, message):
        result = extract_structured_payload(message)
        assert not result.extracted
        assert result.text == message
        assert result.payload == {}

    def test_extracted_flag(self):
        assert extract_structured_payload('a {"b": 1}').extracted
        assert not extract_structured_payload("a b").extracted
