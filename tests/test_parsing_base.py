"""Unit tests for shared parser machinery and masking."""

import pytest

from repro.logs.record import WILDCARD
from repro.parsing.base import BatchParser, MinedTemplate, TemplateStore
from repro.parsing.drain import DrainParser
from repro.parsing.masking import (
    Masker,
    MaskingRule,
    default_masker,
    no_masker,
)

from conftest import make_record


class TestMinedTemplate:
    def test_merge_generalizes_disagreements(self):
        template = MinedTemplate(0, ["send", "10", "bytes"])
        template.merge(["send", "25", "bytes"])
        assert template.tokens == ["send", WILDCARD, "bytes"]
        assert template.count == 2

    def test_merge_is_monotone(self):
        template = MinedTemplate(0, ["a", WILDCARD])
        template.merge(["a", "anything"])
        assert template.tokens == ["a", WILDCARD]

    def test_merge_rejects_length_mismatch(self):
        template = MinedTemplate(0, ["a", "b"])
        with pytest.raises(ValueError, match="length"):
            template.merge(["a"])

    def test_extract_variables(self):
        template = MinedTemplate(0, ["send", WILDCARD, "bytes", WILDCARD])
        assert template.extract_variables(["send", "10", "bytes", "now"]) == (
            "10", "now",
        )

    def test_similarity_counts_static_matches_only(self):
        template = MinedTemplate(0, ["send", WILDCARD, "bytes"])
        assert template.similarity(["send", "10", "bytes"]) == pytest.approx(2 / 3)
        assert template.similarity(["recv", "10", "bytes"]) == pytest.approx(1 / 3)
        assert template.similarity(["send", "10"]) == 0.0

    def test_similarity_empty(self):
        template = MinedTemplate(0, [])
        assert template.similarity([]) == 1.0


class TestTemplateStore:
    def test_ids_are_sequential_and_stable(self):
        store = TemplateStore()
        first = store.create(["a"])
        second = store.create(["b"])
        assert (first.template_id, second.template_id) == (0, 1)
        first.merge(["c"])  # generalizing does not change the id
        assert store[0] is first
        assert len(store) == 2

    def test_templates_listing(self):
        store = TemplateStore()
        store.create(["a", "b"])
        store.create([WILDCARD])
        assert store.templates() == ["a b", WILDCARD]


class TestMasker:
    def test_no_masker_is_identity(self):
        assert no_masker().mask("a 1 2.3.4.5") == "a 1 2.3.4.5"

    def test_default_masks_ips(self):
        masked = default_masker().mask("src: 10.1.2.3 dest: 10.4.5.6:8080")
        assert "10.1.2.3" not in masked
        assert "8080" not in masked

    def test_default_masks_block_ids(self):
        masked = default_masker().mask("Receiving block blk_123456789")
        assert "blk_123456789" not in masked
        assert WILDCARD in masked

    def test_default_masks_numbers_not_words(self):
        masked = default_masker().mask("sent 42 bytes to host7")
        assert masked == f"sent {WILDCARD} bytes to host7"

    def test_default_masks_hex_and_paths(self):
        masked = default_masker().mask("read 0xdeadbeef from /var/log/app.log")
        assert "0xdeadbeef" not in masked
        assert "/var/log/app.log" not in masked

    def test_custom_rule_order_matters(self):
        masker = Masker([
            MaskingRule.make("word_a", r"\ba\b"),
        ])
        assert masker.mask("a b a") == f"{WILDCARD} b {WILDCARD}"
        assert len(masker) == 1


class TestParserApi:
    def test_parse_record_returns_structured_event(self):
        parser = DrainParser()
        record = make_record("send 10 bytes")
        parser.parse_record(record)  # learn the shape
        parsed = parser.parse_record(make_record("send 20 bytes"))
        assert parsed.template == f"send {WILDCARD} bytes"
        assert parsed.variables == ("20",)

    def test_variables_survive_masking(self):
        parser = DrainParser(masker=default_masker())
        parsed = parser.parse_record(make_record("send 42 bytes"))
        # The mask hides 42 from the miner, but the value must surface
        # in the parsed event for quantitative detection.
        assert "42" in parsed.variables

    def test_structured_extraction_populates_payload(self):
        parser = DrainParser(extract_structured=True)
        parsed = parser.parse_record(
            make_record('done {"user": 5}')
        )
        assert parsed.payload == {"user": 5}
        assert "user" not in parsed.template

    def test_parse_stream_is_lazy(self):
        parser = DrainParser()
        iterator = parser.parse_stream(
            make_record(f"m {i}") for i in range(3)
        )
        first = next(iterator)
        assert first.template_id == 0
        assert parser.template_count == 1

    def test_template_ids_stable_across_stream(self):
        parser = DrainParser()
        parsed = parser.parse_all(
            [make_record("send 1 bytes"), make_record("send 2 bytes"),
             make_record("recv packet"), make_record("send 3 bytes")]
        )
        assert parsed[0].template_id == parsed[1].template_id
        assert parsed[0].template_id == parsed[3].template_id
        assert parsed[2].template_id != parsed[0].template_id


class TestBatchParserContract:
    def test_unfitted_batch_parser_refuses(self):
        from repro.parsing import IplomParser

        parser = IplomParser()
        with pytest.raises(RuntimeError, match="fit"):
            parser.parse_record(make_record("a b"))

    def test_unseen_shape_gets_one_off_template(self):
        from repro.parsing import SlctParser

        parser = SlctParser(support=2)
        parser.fit([make_record("x y 1"), make_record("x y 2")] * 3)
        before = parser.template_count
        parsed = parser.parse_record(
            make_record("completely different shape entirely now")
        )
        assert parser.template_count == before + 1
        assert parsed.template == "completely different shape entirely now"
