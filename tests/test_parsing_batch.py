"""Behavioural tests for the batch parsers (IPLoM, SLCT, LogCluster)."""

import pytest

from repro.logs.record import WILDCARD
from repro.metrics.parsing import grouping_accuracy
from repro.parsing import (
    BATCH_PARSERS,
    IplomParser,
    LogClusterParser,
    SlctParser,
    default_masker,
)

from conftest import make_record


def _corpus(repetitions: int = 20):
    records = []
    for index in range(repetitions):
        records.append(make_record(f"job {index} started on node{index % 4}"))
        records.append(make_record(f"job {index} finished with code 0"))
        records.append(make_record("scheduler heartbeat"))
    return records


@pytest.mark.parametrize("name", sorted(BATCH_PARSERS))
class TestBatchContract:
    def test_fit_then_parse_groups(self, name):
        parser = BATCH_PARSERS[name](masker=default_masker())
        corpus = _corpus()
        parser.fit(corpus)
        parsed = parser.parse_all(corpus)
        heartbeat_ids = {
            event.template_id
            for event in parsed
            if event.record.message == "scheduler heartbeat"
        }
        assert len(heartbeat_ids) == 1

    def test_hdfs_grouping_reasonable(self, name, hdfs_small):
        parser = BATCH_PARSERS[name](masker=default_masker())
        parser.fit(hdfs_small.records)
        parsed = parser.parse_all(hdfs_small.records)
        accuracy = grouping_accuracy(parsed, hdfs_small.library)
        assert accuracy >= 0.85, f"{name}: {accuracy:.3f}"

    def test_deterministic(self, name, hdfs_small):
        def run():
            parser = BATCH_PARSERS[name](masker=default_masker())
            parser.fit(hdfs_small.records)
            return [e.template for e in parser.parse_all(hdfs_small.records[:200])]

        assert run() == run()


class TestIplomSpecific:
    def test_partitions_by_token_count_first(self):
        parser = IplomParser()
        parser.fit([make_record("a b"), make_record("c d e")] * 5)
        lengths = {
            len(template.split()) for template in parser.store.templates()
        }
        assert lengths == {2, 3}

    def test_variable_position_becomes_wildcard(self):
        parser = IplomParser()
        parser.fit([make_record(f"load {i} done") for i in range(10)])
        templates = parser.store.templates()
        assert f"load {WILDCARD} done" in templates

    def test_partition_support_pools_outliers(self):
        records = [make_record(f"evt common {i}") for i in range(95)]
        records += [make_record(f"evt rare{j} {j}") for j in range(5)]
        parser = IplomParser(partition_support=0.2)
        parser.fit(records)
        # Rare branches pooled rather than one template each.
        assert parser.template_count <= 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="partition_support"):
            IplomParser(partition_support=1.0)


class TestSlctSpecific:
    def test_support_threshold_controls_clusters(self):
        records = [make_record(f"common event {i}") for i in range(20)]
        records += [make_record("rare event once")]
        low = SlctParser(support=2)
        low.fit(records)
        high = SlctParser(support=25)
        high.fit(records)
        assert low.template_count >= 1
        assert high.template_count == 0  # nothing frequent enough

    def test_infrequent_words_become_wildcards(self):
        parser = SlctParser(support=5)
        parser.fit([make_record(f"send {i} bytes") for i in range(10)])
        assert parser.store.templates() == [f"send {WILDCARD} bytes"]

    def test_support_validation(self):
        with pytest.raises(ValueError, match="support"):
            SlctParser(support=0)


class TestLogClusterSpecific:
    def test_position_independent_word_counting(self):
        # "status" is frequent though it moves position.
        records = [make_record(f"status {i} ok") for i in range(10)]
        records += [make_record(f"final status {i}") for i in range(10)]
        parser = LogClusterParser(support=8)
        parser.fit(records)
        templates = parser.store.templates()
        assert any("status" in template for template in templates)

    def test_templates_fixed_width_per_length(self):
        records = [make_record(f"connect from {i}") for i in range(12)]
        parser = LogClusterParser(support=10)
        parser.fit(records)
        assert parser.store.templates() == [f"connect from {WILDCARD}"]

    def test_support_validation(self):
        with pytest.raises(ValueError, match="support"):
            LogClusterParser(support=0)
