"""Tests for the deep detectors: DeepLog, LogAnomaly, LogRobust.

Training uses tiny models/epochs; the assertions target behaviour
(learns normal flow, flags deviations, handles unseen templates), not
benchmark-grade accuracy — that's what benchmarks/ measures.
"""

import pytest

from repro.detection import (
    DeepLogDetector,
    LogAnomalyDetector,
    LogRobustDetector,
)
from repro.logs.record import ParsedLog, WILDCARD

from conftest import make_record


def _event(template_id, template, value=None, session="s"):
    message = template.replace(WILDCARD, str(value) if value is not None else "7")
    variables = (str(value),) if value is not None else ()
    return ParsedLog(
        record=make_record(message, session_id=session),
        template_id=template_id,
        template=template,
        variables=variables,
    )


TEMPLATES = {
    0: "service starting up",
    1: f"handled request in {WILDCARD} ms",
    2: "service shutting down",
    3: "unexpected fatal crash",
}


def _normal_session(index, length=6, latency=50):
    events = [_event(0, TEMPLATES[0], session=f"s{index}")]
    for step in range(length):
        events.append(
            _event(1, TEMPLATES[1], value=latency + step, session=f"s{index}")
        )
    events.append(_event(2, TEMPLATES[2], session=f"s{index}"))
    return events


def _training_sessions(count=40):
    return [_normal_session(index) for index in range(count)]


class TestDeepLog:
    @pytest.fixture(scope="class")
    def fitted(self):
        detector = DeepLogDetector(window=4, top_g=2, epochs=8,
                                   hidden=16, min_value_observations=20)
        detector.fit(_training_sessions())
        return detector

    def test_accepts_normal_sessions(self, fitted):
        false_alarms = sum(
            fitted.detect(session).anomalous
            for session in _training_sessions(10)
        )
        assert false_alarms <= 1

    def test_flags_sequence_deviation(self, fitted):
        session = _normal_session(0)
        # Crash template in the middle of the flow.
        session.insert(3, _event(3, TEMPLATES[3], session="bad"))
        result = fitted.detect(session)
        assert result.anomalous
        assert any("unexpected event" in reason for reason in result.reasons)

    def test_flags_unseen_template_as_violation(self, fitted):
        session = _normal_session(0)
        session.insert(
            3, _event(42, "never seen statement before", session="bad")
        )
        assert fitted.detect(session).anomalous

    def test_flags_quantitative_anomaly(self, fitted):
        session = [_event(0, TEMPLATES[0])]
        for step in range(6):
            session.append(_event(1, TEMPLATES[1], value=50 + step))
        session[-1] = _event(1, TEMPLATES[1], value=5_000_000)
        session.append(_event(2, TEMPLATES[2]))
        result = fitted.detect(session)
        assert result.anomalous
        assert any("abnormal values" in reason for reason in result.reasons)

    def test_quantitative_head_ablation(self):
        detector = DeepLogDetector(window=4, top_g=2, epochs=6,
                                   quantitative=False)
        detector.fit(_training_sessions())
        session = _normal_session(0)
        session[3] = _event(1, TEMPLATES[1], value=5_000_000, session="s0")
        assert not detector.detect(session).anomalous

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DeepLogDetector().detect([])

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="window"):
            DeepLogDetector(window=0)
        with pytest.raises(ValueError, match="top_g"):
            DeepLogDetector(top_g=0)


class TestLogAnomaly:
    @pytest.fixture(scope="class")
    def fitted(self):
        detector = LogAnomalyDetector(window=4, top_g=2, epochs=8, hidden=16)
        detector.fit(_training_sessions())
        return detector

    def test_accepts_normal_sessions(self, fitted):
        false_alarms = sum(
            fitted.detect(session).anomalous
            for session in _training_sessions(10)
        )
        assert false_alarms <= 1

    def test_flags_sequence_deviation(self, fitted):
        session = _normal_session(0)
        session.insert(3, _event(3, TEMPLATES[3], session="bad"))
        assert fitted.detect(session).anomalous

    def test_unseen_variant_matched_semantically(self, fitted):
        # A minor variant of the request template (one token changed):
        # LogAnomaly should match it to the known template, not treat
        # it as an unpredictable unknown.
        session = _normal_session(0)
        variant = ParsedLog(
            record=make_record("handled query in 55 ms", session_id="s0"),
            template_id=77,
            template=f"handled query in {WILDCARD} ms",
            variables=("55",),
        )
        session[3] = variant
        result = fitted.detect(session)
        assert not any(
            "no semantically similar" in reason for reason in result.reasons
        )

    def test_totally_alien_template_is_a_violation(self, fitted):
        session = _normal_session(0)
        alien = ParsedLog(
            record=make_record("zzz qqq xxx yyy", session_id="s0"),
            template_id=88,
            template="zzz qqq xxx yyy",
        )
        session.insert(3, alien)
        result = fitted.detect(session)
        assert result.anomalous


class TestLogRobust:
    def _labelled_training(self):
        sessions = _training_sessions(30)
        labels = [False] * len(sessions)
        for index in range(10):
            bad = _normal_session(100 + index)
            bad.insert(3, _event(3, TEMPLATES[3], session=f"bad{index}"))
            sessions.append(bad)
            labels.append(True)
        return sessions, labels

    def test_supervised_training_detects(self):
        detector = LogRobustDetector(max_length=12, epochs=30, hidden=16)
        sessions, labels = self._labelled_training()
        detector.fit(sessions, labels)
        bad = _normal_session(0)
        bad.insert(3, _event(3, TEMPLATES[3]))
        assert detector.detect(bad).anomalous
        assert not detector.detect(_normal_session(1)).anomalous

    def test_anomaly_free_training_degenerates(self):
        detector = LogRobustDetector(epochs=2)
        detector.fit(_training_sessions(10), [False] * 10)
        result = detector.detect(_normal_session(0))
        assert not result.anomalous
        assert any("without labelled anomalies" in r for r in result.reasons)

    def test_robust_to_template_edit(self):
        # The statement-change instability: a synonym-edited template
        # should still classify like the original (semantic vectors).
        detector = LogRobustDetector(max_length=12, epochs=30, hidden=16)
        sessions, labels = self._labelled_training()
        detector.fit(sessions, labels)
        bad = _normal_session(0)
        bad.insert(3, ParsedLog(
            record=make_record("unexpected fatal breakdown"),
            template_id=55,
            template="unexpected fatal breakdown",
        ))
        assert detector.detect(bad).anomalous

    def test_label_length_validation(self):
        detector = LogRobustDetector()
        with pytest.raises(ValueError, match="disagree"):
            detector.fit(_training_sessions(5), [False] * 3)
