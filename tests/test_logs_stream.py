"""Unit tests for stream interleaving and noise injection."""

import pytest

from repro.logs.sources import ReplaySource
from repro.logs.stream import (
    DuplicationNoise,
    LogStream,
    ReorderingNoise,
    interleave,
)

from conftest import make_record


def _source(name: str, times: list[float]) -> ReplaySource:
    return ReplaySource(
        name,
        [
            make_record(f"{name}-{index}", timestamp=time, source=name,
                        sequence=index)
            for index, time in enumerate(times)
        ],
    )


class TestInterleave:
    def test_merges_by_timestamp(self):
        a = _source("a", [0.0, 2.0, 4.0])
        b = _source("b", [1.0, 3.0])
        merged = list(interleave([a, b]))
        assert [record.message for record in merged] == [
            "a-0", "b-0", "a-1", "b-1", "a-2",
        ]

    def test_empty_sources_are_fine(self):
        a = _source("a", [])
        b = _source("b", [1.0])
        assert [r.message for r in interleave([a, b])] == ["b-0"]

    def test_no_sources(self):
        assert list(interleave([])) == []

    def test_preserves_all_records(self):
        a = _source("a", [float(i) for i in range(100)])
        b = _source("b", [i + 0.5 for i in range(100)])
        merged = list(interleave([a, b]))
        assert len(merged) == 200

    # The following tests lock the merge contract the live
    # bounded-lateness merge (repro.ingest.merge) must also honor.

    def test_per_source_fifo_under_equal_timestamps(self):
        a = _source("a", [1.0, 1.0, 1.0])
        b = _source("b", [1.0, 1.0])
        merged = [record.message for record in interleave([a, b])]
        assert [m for m in merged if m.startswith("a")] == \
            ["a-0", "a-1", "a-2"]
        assert [m for m in merged if m.startswith("b")] == ["b-0", "b-1"]

    def test_equal_timestamps_tie_break_by_source_listing_order(self):
        a = _source("a", [1.0])
        b = _source("b", [1.0])
        assert [r.message for r in interleave([a, b])] == ["a-0", "b-0"]
        assert [r.message for r in interleave([b, a])] == ["b-0", "a-0"]

    def test_single_source_passthrough_preserves_emission_order(self):
        # With one source the merge holds one pending record at a time,
        # so emission order is source order even when timestamps
        # regress — a contract the streaming sessionizer relies on.
        a = _source("a", [3.0, 1.0, 2.0])
        assert [r.message for r in interleave([a])] == ["a-0", "a-1", "a-2"]

    def test_all_sources_empty(self):
        assert list(interleave([_source("a", []), _source("b", [])])) == []

    def test_exhausted_source_does_not_stall_the_merge(self):
        a = _source("a", [0.0])
        b = _source("b", [1.0, 2.0, 3.0])
        assert [r.message for r in interleave([a, b])] == [
            "a-0", "b-0", "b-1", "b-2",
        ]


class TestDuplicationNoise:
    def test_zero_rate_is_identity(self):
        source = _source("a", [float(i) for i in range(20)])
        noise = DuplicationNoise(rate=0.0)
        assert list(noise.apply(iter(source))) == list(source)

    def test_full_rate_doubles_stream(self):
        source = _source("a", [float(i) for i in range(20)])
        noise = DuplicationNoise(rate=1.0, delay=0.1, seed=1)
        output = list(noise.apply(iter(source)))
        assert len(output) == 40

    def test_duplicates_keep_sequence_number(self):
        source = _source("a", [0.0, 1.0])
        noise = DuplicationNoise(rate=1.0, delay=0.5, seed=0)
        output = list(noise.apply(iter(source)))
        sequences = sorted(record.sequence for record in output)
        assert sequences == [0, 0, 1, 1]

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            DuplicationNoise(rate=1.5)

    def test_deterministic(self):
        source = _source("a", [float(i) for i in range(50)])
        one = [r.message for r in DuplicationNoise(0.3, seed=7).apply(iter(source))]
        two = [r.message for r in DuplicationNoise(0.3, seed=7).apply(iter(source))]
        assert one == two


class TestReorderingNoise:
    def test_zero_delay_is_identity(self):
        source = _source("a", [float(i) for i in range(20)])
        noise = ReorderingNoise(max_delay=0.0)
        assert list(noise.apply(iter(source))) == list(source)

    def test_preserves_record_multiset(self):
        source = _source("a", [float(i) * 0.1 for i in range(100)])
        noise = ReorderingNoise(max_delay=1.0, seed=3)
        output = list(noise.apply(iter(source)))
        assert sorted(r.message for r in output) == sorted(
            r.message for r in source
        )

    def test_actually_reorders_close_records(self):
        source = _source("a", [float(i) * 0.01 for i in range(200)])
        noise = ReorderingNoise(max_delay=0.5, seed=3)
        output = [record.sequence for record in noise.apply(iter(source))]
        assert output != sorted(output)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="max_delay"):
            ReorderingNoise(max_delay=-1.0)


class TestLogStream:
    def test_is_restartable(self):
        stream = LogStream([_source("a", [0.0, 1.0])])
        assert [r.message for r in stream] == [r.message for r in stream]

    def test_applies_noise_chain_in_order(self):
        source = _source("a", [float(i) for i in range(30)])
        stream = LogStream(
            [source],
            noises=[DuplicationNoise(rate=1.0, seed=1),
                    ReorderingNoise(max_delay=0.2, seed=2)],
        )
        output = stream.collect()
        assert len(output) == 60  # duplication ran before reordering

    def test_collect_limit(self):
        stream = LogStream([_source("a", [float(i) for i in range(30)])])
        assert len(stream.collect(limit=5)) == 5

    def test_multi_source_merge(self):
        stream = LogStream([_source("a", [0.0, 2.0]), _source("b", [1.0])])
        assert [r.message for r in stream] == ["a-0", "b-0", "a-1"]
