"""Tests for the core pipeline, sharded runtime, and auto-calibration."""

import pytest

from repro import MoniLogConfig, Pipeline, PipelineSpec
from repro.classify.feedback import AdministratorSimulator, source_based_policy
from repro.core.calibration import (
    AutoCalibrator,
    DEFAULT_GRIDS,
    parameter_grid,
)
from repro.datasets import generate_cloud_platform, generate_hdfs
from repro.detection import DeepLogDetector, InvariantMiningDetector
from repro.parsing import DrainParser


class TestConfig:
    def test_defaults_valid(self):
        config = MoniLogConfig()
        assert config.windowing == "session"

    def test_validation(self):
        with pytest.raises(ValueError, match="windowing"):
            MoniLogConfig(windowing="nonsense")
        with pytest.raises(ValueError, match="window_size"):
            MoniLogConfig(window_size=0)


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = parameter_grid({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(grid) == 6
        assert {"a": 1, "b": "x"} in grid

    def test_empty_grid(self):
        assert parameter_grid({}) == [{}]


class TestAutoCalibrator:
    def test_rejects_oversplitting_parameters(self, hdfs_small):
        calibrator = AutoCalibrator(
            lambda **parameters: DrainParser(**parameters),
            {"similarity_threshold": [0.05, 0.5, 0.95]},
        )
        result = calibrator.calibrate(hdfs_small.records[:600])
        # 0.95 over-splits HDFS into hundreds of templates; the
        # unsupervised score must steer away from it.  (0.05 and 0.5
        # behave identically here because Drain's token-prefix routing
        # already separates the statements.)
        assert result.best_parameters["similarity_threshold"] != 0.95
        assert len(result.trials) == 3

    def test_ranking_sorted(self, hdfs_small):
        calibrator = AutoCalibrator(
            lambda **parameters: DrainParser(**parameters),
            {"similarity_threshold": [0.2, 0.5]},
        )
        ranking = calibrator.calibrate(hdfs_small.records[:300]).ranking()
        assert ranking[0][1] >= ranking[1][1]

    def test_calibrated_parser_is_fresh(self, hdfs_small):
        calibrator = AutoCalibrator(
            lambda **parameters: DrainParser(**parameters),
            {"similarity_threshold": [0.4]},
        )
        parser = calibrator.calibrated_parser(hdfs_small.records[:200])
        assert parser.template_count == 0

    def test_empty_sample_rejected(self):
        calibrator = AutoCalibrator(lambda **p: DrainParser(**p), {})
        with pytest.raises(ValueError, match="sample"):
            calibrator.calibrate([])

    def test_default_grids_cover_online_parsers(self):
        assert set(DEFAULT_GRIDS) == {
            "drain", "spell", "lenma", "shiso", "logram",
        }


@pytest.fixture(scope="module")
def cloud_split():
    data = generate_cloud_platform(sessions=300, seed=21)
    cut = len(data.records) * 6 // 10
    return data, data.records[:cut], data.records[cut:]


class TestMoniLogPipeline:
    def test_requires_training(self):
        system = Pipeline()
        with pytest.raises(RuntimeError, match="fit"):
            system.run_all([])

    def test_end_to_end_detects_and_classifies(self, cloud_split):
        data, train, test = cloud_split
        system = Pipeline(detector=DeepLogDetector(epochs=8, seed=1))
        system.fit(train)
        alerts = system.run_all(test)
        assert alerts, "the test stream contains anomalies"
        flagged = {alert.report.session_id for alert in alerts}
        anomalous = set(data.anomalous_sessions())
        # Flagged sessions should be overwhelmingly real anomalies.
        true_hits = len(flagged & anomalous)
        assert true_hits / len(flagged) >= 0.7
        assert system.stats().anomalies_detected == len(alerts)

    def test_counter_detector_pipeline(self, cloud_split):
        _, train, test = cloud_split
        system = Pipeline(detector=InvariantMiningDetector())
        system.fit(train)
        alerts = system.run_all(test)
        assert system.stats().windows_scored > 0
        assert all(alert.pool == "default" for alert in alerts)

    def test_sliding_window_mode(self, bgl_small):
        spec = PipelineSpec(windowing="sliding", window_size=100)
        system = Pipeline(spec, detector=InvariantMiningDetector())
        cut = len(bgl_small.records) // 2
        system.fit(bgl_small.records[:cut])
        system.run_all(bgl_small.records[cut:])
        assert system.stats().windows_scored > 0

    def test_alert_stream_feeds_admin_loop(self, cloud_split):
        _, train, test = cloud_split
        system = Pipeline(detector=DeepLogDetector(epochs=8, seed=1))
        system.pools.create_pool("team-api")
        policy = source_based_policy({"api": "team-api"})
        admin = AdministratorSimulator(system.pools, policy, diligence=1.0)
        system.fit(train)
        for alert in system.run(test):
            admin.review(alert)
        assert system.classifier.feedback_count >= admin.pool_moves

    def test_auto_calibration_flow(self, hdfs_small):
        spec = PipelineSpec(auto_calibrate=True, calibration_sample=400)
        system = Pipeline(spec, detector=InvariantMiningDetector())
        system.fit(hdfs_small.records)
        assert system.parser.template_count > 0


class TestShardedMoniLog:
    def test_agrees_with_single_instance(self):
        data = generate_hdfs(sessions=250, seed=31)
        cut = len(data.records) * 6 // 10
        train, test = data.records[:cut], data.records[cut:]

        single = Pipeline(detector=InvariantMiningDetector())
        single.fit(train)
        flagged = {a.report.session_id for a in single.run(test)}
        test_sessions = {r.session_id for r in test}
        reference = {sid: sid in flagged for sid in test_sessions}

        sharded = Pipeline(
            PipelineSpec(shards=3, detector_shards=2),
            detector_factory=lambda shard: InvariantMiningDetector(),
        )
        sharded.fit(train)
        agreement = sharded.consistency_with(reference, test)
        assert agreement >= 0.9, f"agreement {agreement:.2f}"

    def test_rejects_sliding_windows(self):
        with pytest.raises(ValueError, match="session windowing"):
            Pipeline(PipelineSpec(shards=2, windowing="sliding"))

    def test_requires_training(self):
        sharded = Pipeline(
            PipelineSpec(shards=4, detector_shards=2),
            detector_factory=lambda shard: InvariantMiningDetector(),
        )
        with pytest.raises(RuntimeError, match="fit"):
            sharded.run_all([])
