"""Unit tests for the ingestion flow-control cores.

The watermark merge, the micro-batcher, the credit gate, and the
offset-checkpoint bookkeeping are all synchronous, clock-explicit
state machines — these tests pin their contracts without an event
loop (the service-level tests drive them live).
"""

import asyncio
import json

import pytest

from repro.ingest import (
    BoundedLatenessMerger,
    CheckpointStore,
    CreditGate,
    MicroBatcher,
    OffsetTracker,
)
from repro.ingest.sources import SourceItem

from conftest import make_record


def item(timestamp: float, source: str = "s", offset: int = 0,
         message: str | None = None) -> SourceItem:
    record = make_record(message or f"{source}@{timestamp}",
                         timestamp=timestamp, source=source)
    return SourceItem(record=record, source=source, offset=offset)


def stamps(items):
    return [entry.record.timestamp for entry in items]


class TestBoundedLatenessMerger:
    def test_zero_lateness_is_arrival_order_passthrough(self):
        merger = BoundedLatenessMerger(lateness=0.0)
        assert stamps(merger.push(item(1.0))) == [1.0]
        assert stamps(merger.push(item(2.0))) == [2.0]
        assert merger.pending == 0

    def test_reorders_within_the_lateness_budget(self):
        merger = BoundedLatenessMerger(lateness=5.0)
        merger.push(item(3.0, "a"))
        merger.push(item(1.0, "b"))  # out of order, within budget
        merger.push(item(2.0, "c"))
        assert stamps(merger.flush()) == [1.0, 2.0, 3.0]
        assert merger.late == 0

    def test_watermark_tracks_high_water_minus_lateness(self):
        merger = BoundedLatenessMerger(lateness=2.0)
        merger.push(item(10.0))
        assert merger.high_water == 10.0
        assert merger.watermark == 8.0
        released = merger.push(item(20.0))
        assert stamps(released) == [10.0]

    def test_late_arrivals_counted_and_released_immediately(self):
        merger = BoundedLatenessMerger(lateness=1.0)
        merger.push(item(10.0))
        released = merger.push(item(3.0))  # far beyond the budget
        assert stamps(released) == [3.0]  # not dropped
        assert merger.late == 1

    def test_per_source_fifo_on_equal_timestamps(self):
        merger = BoundedLatenessMerger(lateness=10.0)
        merger.push(item(1.0, "a", message="a-first"))
        merger.push(item(1.0, "a", message="a-second"))
        out = merger.flush()
        assert [entry.record.message for entry in out] == [
            "a-first", "a-second",
        ]

    def test_drain_oldest_force_releases_a_prefix(self):
        merger = BoundedLatenessMerger(lateness=100.0)
        for timestamp in (5.0, 1.0, 3.0):
            merger.push(item(timestamp))
        drained = merger.drain_oldest(2)
        assert stamps(drained) == [1.0, 3.0]
        assert merger.pending == 1
        assert stamps(merger.flush()) == [5.0]

    def test_emitted_counter(self):
        merger = BoundedLatenessMerger(lateness=0.0)
        merger.push(item(1.0))
        merger.push(item(2.0))
        merger.flush()
        assert merger.emitted == 2

    def test_negative_lateness_rejected(self):
        with pytest.raises(ValueError, match="lateness"):
            BoundedLatenessMerger(lateness=-1.0)


class TestMicroBatcher:
    def test_size_flush(self):
        batcher = MicroBatcher(max_size=2, max_age=100.0)
        assert batcher.add(item(1.0), now=0.0) is None
        batch = batcher.add(item(2.0), now=0.0)
        assert batch is not None and len(batch) == 2
        assert batcher.size_flushes == 1
        assert batcher.pending == 0

    def test_age_flush_via_poll(self):
        batcher = MicroBatcher(max_size=100, max_age=0.5)
        batcher.add(item(1.0), now=10.0)
        assert batcher.poll(now=10.4) is None
        batch = batcher.poll(now=10.5)
        assert batch is not None and len(batch) == 1
        assert batcher.age_flushes == 1

    def test_age_measured_from_first_item(self):
        batcher = MicroBatcher(max_size=100, max_age=1.0)
        batcher.add(item(1.0), now=0.0)
        batcher.add(item(2.0), now=0.9)  # does not reset the clock
        assert batcher.poll(now=1.0) is not None

    def test_deadline_property(self):
        batcher = MicroBatcher(max_size=10, max_age=2.0)
        assert batcher.deadline is None
        batcher.add(item(1.0), now=5.0)
        assert batcher.deadline == 7.0
        batcher.flush()
        assert batcher.deadline is None

    def test_flush_returns_remainder_and_none_when_empty(self):
        batcher = MicroBatcher(max_size=10, max_age=1.0)
        assert batcher.flush() is None
        batcher.add(item(1.0), now=0.0)
        batch = batcher.flush()
        assert batch is not None and len(batch) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_size"):
            MicroBatcher(max_size=0, max_age=1.0)
        with pytest.raises(ValueError, match="max_age"):
            MicroBatcher(max_size=1, max_age=0.0)


class TestCreditGate:
    def test_acquire_release_bookkeeping(self):
        async def scenario():
            gate = CreditGate(4)
            await gate.acquire(3)
            assert gate.available == 1
            assert gate.in_use == 3
            gate.release(2)
            assert gate.available == 3

        asyncio.run(scenario())

    def test_exhaustion_blocks_until_release(self):
        async def scenario():
            gate = CreditGate(1)
            await gate.acquire()
            order = []

            async def blocked():
                await gate.acquire()
                order.append("acquired")

            task = asyncio.ensure_future(blocked())
            await asyncio.sleep(0)
            assert order == []
            assert gate.waits == 1
            gate.release()
            await task
            assert order == ["acquired"]

        asyncio.run(scenario())

    def test_fifo_wakeup_order(self):
        async def scenario():
            gate = CreditGate(1)
            await gate.acquire()
            order = []

            async def waiter(tag):
                await gate.acquire()
                order.append(tag)
                gate.release()

            tasks = [asyncio.ensure_future(waiter(index))
                     for index in range(3)]
            await asyncio.sleep(0)
            gate.release()
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2]

        asyncio.run(scenario())

    def test_oversized_request_clamped_to_capacity(self):
        async def scenario():
            gate = CreditGate(2)
            await gate.acquire(10)  # must not deadlock
            assert gate.available == 0
            gate.release(2)
            assert gate.available == 2

        asyncio.run(scenario())

    def test_cancelled_waiter_does_not_leak_credits(self):
        async def scenario():
            gate = CreditGate(1)
            await gate.acquire()
            task = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            gate.release()
            assert gate.available == 1  # the cancelled waiter took nothing

        asyncio.run(scenario())

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            CreditGate(0)


class TestOffsetTracker:
    def test_commits_only_contiguous_prefix(self):
        tracker = OffsetTracker()
        for offset in (10, 20, 30):
            tracker.note_read(offset)
        tracker.note_processed(20)
        assert tracker.committed == 0  # 10 still outstanding
        tracker.note_processed(10)
        assert tracker.committed == 20
        tracker.note_processed(30)
        assert tracker.committed == 30
        assert tracker.outstanding == 0

    def test_starts_from_checkpointed_offset(self):
        tracker = OffsetTracker(committed=100)
        tracker.note_read(110)
        tracker.note_processed(110)
        assert tracker.committed == 110

    def test_offset_regression_resets_bookkeeping(self):
        tracker = OffsetTracker()
        tracker.note_read(50)
        tracker.note_read(5)  # rotation: numbering restarted
        assert tracker.committed == 0
        tracker.note_processed(50)  # pre-rotation straggler: ignored
        assert tracker.committed == 0
        tracker.note_processed(5)
        assert tracker.committed == 5


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = CheckpointStore(path)
        assert store.get("a") == 0
        store.update("a", 42)
        store.update("b", 7)
        store.save()
        reloaded = CheckpointStore(path)
        assert reloaded.get("a") == 42
        assert reloaded.get("b") == 7

    def test_save_is_atomic_and_lazy(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = CheckpointStore(path)
        store.save()  # nothing dirty: no file appears
        assert not path.exists()
        store.update("a", 1)
        store.save()
        assert path.exists()
        assert not (tmp_path / "ckpt.json.tmp").exists()

    def test_save_fsyncs_data_and_directory(self, tmp_path, monkeypatch):
        # Atomicity needs durability: the temp file must reach disk
        # before the rename, and the rename must reach disk via the
        # parent directory — otherwise a crash can promote a torn or
        # vanished checkpoint.
        import os
        import stat

        import repro.ingest.checkpoint as checkpoint_module

        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(os.fstat(fd).st_mode)
            real_fsync(fd)

        monkeypatch.setattr(checkpoint_module.os, "fsync", recording_fsync)
        store = CheckpointStore(tmp_path / "ckpt.json")
        store.update("a", 1)
        store.save()
        assert any(stat.S_ISREG(mode) for mode in synced)
        assert any(stat.S_ISDIR(mode) for mode in synced)
        # A clean save resets dirtiness: no further fsync traffic.
        synced.clear()
        store.save()
        assert synced == []

    def test_rejects_corrupt_checkpoint(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="unreadable checkpoint"):
            CheckpointStore(path)
        path.write_text(json.dumps([1, 2]), encoding="utf-8")
        with pytest.raises(ValueError, match="JSON object"):
            CheckpointStore(path)
