"""Tests for the async live sources (happy paths).

Failure paths — rotation mid-read, mid-line EOF, socket disconnects,
cancellation — live in ``test_ingest_failures.py``; these tests pin
the basic contracts: offline/online record parity, offset-based
resume, and the adapter hook on :class:`LogSource`.
"""

import asyncio

from repro.ingest import (
    AsyncSourceAdapter,
    FileTailSource,
    SocketSource,
    render_json_line,
)
from repro.ingest.sources import SourceItem
from repro.logs.formats import read_log_lines, render_line
from repro.logs.sources import ReplaySource

from conftest import make_record


def drain(source, start_offset=0):
    """Collect a non-following source's items synchronously."""

    async def collect():
        return [item async for item in source.items(start_offset=start_offset)]

    return asyncio.run(collect())


def write_corpus(path, count=20, source="svc"):
    records = [
        make_record(f"request {index} handled", timestamp=float(index),
                    source=source, sequence=index)
        for index in range(count)
    ]
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(render_line(record) + "\n")
    return records


class TestFileTailSource:
    def test_drain_matches_offline_reader(self, tmp_path):
        path = tmp_path / "svc.log"
        write_corpus(path, count=25)
        with open(path, encoding="utf-8") as handle:
            offline = list(read_log_lines(handle))
        items = drain(FileTailSource(path, follow=False))
        assert [item.record for item in items] == offline

    def test_offsets_are_byte_positions_after_each_line(self, tmp_path):
        path = tmp_path / "svc.log"
        write_corpus(path, count=3)
        items = drain(FileTailSource(path, follow=False))
        assert items[-1].offset == path.stat().st_size
        assert all(earlier.offset < later.offset
                   for earlier, later in zip(items, items[1:]))

    def test_resume_from_offset_skips_processed_prefix(self, tmp_path):
        path = tmp_path / "svc.log"
        write_corpus(path, count=10)
        first = drain(FileTailSource(path, follow=False))
        cut = first[6].offset
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(render_line(make_record(
                "request 99 handled", timestamp=99.0, source="svc")) + "\n")
        resumed = drain(FileTailSource(path, follow=False), start_offset=cut)
        assert [item.record.message for item in resumed] == [
            "request 7 handled", "request 8 handled", "request 9 handled",
            "request 99 handled",
        ]

    def test_blank_lines_skipped_but_offsets_advance(self, tmp_path):
        path = tmp_path / "svc.log"
        first = make_record("hello world", timestamp=1.0, source="svc")
        second = make_record("goodbye", timestamp=2.0, source="svc")
        path.write_text(
            f"{render_line(first)}\n\n{render_line(second)}\n\n",
            encoding="utf-8",
        )
        items = drain(FileTailSource(path, follow=False))
        assert [item.record.message for item in items] == [
            "hello world", "goodbye",
        ]
        # The final offset covers the trailing blank line's bytes too.
        assert items[-1].offset == path.stat().st_size - 1

    def test_unparseable_lines_fall_back_like_offline_reader(self, tmp_path):
        path = tmp_path / "raw.log"
        path.write_text("plain one\nplain two\n", encoding="utf-8")
        with open(path, encoding="utf-8") as handle:
            offline = list(read_log_lines(handle, source="raw.log"))
        items = drain(FileTailSource(path, follow=False))
        assert [item.record for item in items] == offline

    def test_missing_file_in_drain_mode_yields_nothing(self, tmp_path):
        items = drain(FileTailSource(tmp_path / "never.log", follow=False))
        assert items == []

    def test_source_name_defaults_to_basename(self, tmp_path):
        source = FileTailSource(tmp_path / "api.log")
        assert source.name == "api.log"


class TestAsyncSourceAdapter:
    def test_replays_wrapped_source_with_record_count_offsets(self):
        records = [make_record(f"m{index}", timestamp=float(index))
                   for index in range(5)]
        adapter = AsyncSourceAdapter(ReplaySource("replay", records))
        items = drain(adapter)
        assert [item.record for item in items] == records
        assert [item.offset for item in items] == [1, 2, 3, 4, 5]
        assert all(item.source == "replay" for item in items)

    def test_start_offset_skips_prefix(self):
        records = [make_record(f"m{index}", timestamp=float(index))
                   for index in range(5)]
        adapter = AsyncSourceAdapter(ReplaySource("replay", records))
        items = drain(adapter, start_offset=3)
        assert [item.record.message for item in items] == ["m3", "m4"]

    def test_as_async_hook_on_log_source(self):
        source = ReplaySource("replay", [make_record("m", timestamp=0.0)])
        adapter = source.as_async(yield_every=8)
        assert isinstance(adapter, AsyncSourceAdapter)
        assert adapter.name == "replay"
        assert adapter.yield_every == 8
        assert [item.record.message for item in drain(adapter)] == ["m"]


class TestSocketSource:
    def test_receives_lines_until_clean_disconnect(self):
        records = [make_record(f"request {index} ok", timestamp=float(index),
                               source="shipper", sequence=index)
                   for index in range(8)]

        async def scenario():
            async def serve(reader, writer):
                for record in records:
                    writer.write((render_line(record) + "\n").encode())
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            source = SocketSource("127.0.0.1", port, name="shipper",
                                  reconnect=False)
            items = [item async for item in source.items()]
            server.close()
            await server.wait_closed()
            return source, items

        source, items = asyncio.run(scenario())
        assert [item.record for item in items] == records
        assert [item.offset for item in items] == list(range(1, 9))
        assert source.connects == 1
        assert source.disconnects == 1

    def test_gives_up_after_max_connect_attempts(self):
        async def scenario():
            source = SocketSource("127.0.0.1", 1, reconnect_delay=0.01,
                                  max_connect_attempts=3)
            return [item async for item in source.items()]

        assert asyncio.run(scenario()) == []

    def test_items_are_source_items(self):
        record = make_record("x", timestamp=0.0)
        item = SourceItem(record=record, source="s", offset=1)
        assert item.record is record


class TestSocketJsonlFraming:
    """``framing="jsonl"``: JSON-object frames, embedded-newline safe."""

    @staticmethod
    def _serve_lines(lines):
        """Run a one-shot server emitting ``lines``; return the items a
        jsonl-framed SocketSource reads from it."""

        async def scenario():
            async def serve(reader, writer):
                for line in lines:
                    writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            source = SocketSource("127.0.0.1", port, name="shipper",
                                  framing="jsonl", reconnect=False)
            items = [item async for item in source.items()]
            server.close()
            await server.wait_closed()
            return items

        return asyncio.run(scenario())

    def test_round_trips_records_through_json_frames(self):
        records = [
            make_record(f"request {index} ok", timestamp=float(index),
                        source="shipper", session_id=f"s{index % 2}",
                        sequence=index, labels=frozenset(["anomaly"])
                        if index == 3 else frozenset())
            for index in range(5)
        ]
        items = self._serve_lines([render_json_line(r) for r in records])
        assert [item.record for item in items] == records
        assert [item.offset for item in items] == [1, 2, 3, 4, 5]

    def test_message_with_embedded_newline_survives_one_frame(self):
        """The point of the framing: the trusted newline protocol would
        split this message into two bogus records."""
        record = make_record("stack trace:\n  at frame 0\n  at frame 1",
                             timestamp=5.0, source="shipper")
        line = render_json_line(record)
        assert "\n" not in line  # JSON escaped it: still one frame
        items = self._serve_lines([line])
        assert len(items) == 1
        assert items[0].record.message == record.message

    def test_non_json_lines_fall_back_to_plain_conversion(self):
        items = self._serve_lines([
            '{"message": "real frame", "timestamp": 1.0}',
            "not json at all",
            '["also", "not", "an object"]',
            '{"no_message_field": 1}',
        ])
        assert [item.record.message for item in items] == [
            "real frame",
            "not json at all",
            '["also", "not", "an object"]',
            '{"no_message_field": 1}',
        ]
        # Sequence numbering is shared across frames and fallbacks.
        assert [item.record.sequence for item in items] == [0, 1, 2, 3]

    def test_partial_frames_get_fallback_clock_and_defaults(self):
        items = self._serve_lines(['{"message": "bare"}'])
        record = items[0].record
        assert record.source == "shipper"
        assert record.severity.name == "INFO"
        assert record.timestamp > 0  # fallback clock, monotone
        assert record.session_id is None

    def test_severity_and_labels_decode(self):
        items = self._serve_lines([
            '{"message": "m", "timestamp": 1.0, "severity": "warn", '
            '"labels": ["anomaly", "x"]}',
            '{"message": "m2", "timestamp": 2.0, "severity": "nonsense"}',
        ])
        assert items[0].record.severity.name == "WARNING"
        assert items[0].record.labels == frozenset({"anomaly", "x"})
        assert items[1].record.severity.name == "INFO"

    def test_unknown_framing_rejected(self):
        try:
            SocketSource("h", 1, framing="msgpack")
        except ValueError as error:
            assert "framing" in str(error)
        else:
            raise AssertionError("expected ValueError")
