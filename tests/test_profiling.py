"""The continuous profiling tier's contracts.

A wall-clock sampler watches the pipeline from the outside, so the
load-bearing claims are about what it *doesn't* do: alerts are
byte-identical with the profiler off, on, or never constructed, under
every executor; a profiler-off pipeline exposes zero
``monilog_profile_*`` families; start/stop cycle idempotently; and
what it *does* do: samples carry the (tenant, stage) active on the
sampled thread, the stack table stays bounded by evicting the
minimum-count entry, ``/profile`` serves JSON hotspots and
flamegraph-ready collapsed text, and malformed query parameters on
``/profile`` and ``/traces`` answer clean 400s."""

import copy
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Pipeline, PipelineSpec
from repro.datasets import generate_cloud_platform
from repro.telemetry import MetricsRegistry, MetricsServer, SamplingProfiler
from repro.telemetry.profiling import (
    UNATTRIBUTED_STAGE,
    current_stage,
    pop_stage,
    push_stage,
)


def _alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, tuple(alert.report.detection.reasons),
            alert.pool, alert.criticality)


@pytest.fixture(scope="module")
def corpus():
    data = generate_cloud_platform(sessions=60, anomaly_rate=0.1, seed=11)
    cut = len(data.records) * 6 // 10
    return data.records[:cut], data.records[cut:]


def _spec(executor="serial", telemetry=None):
    return PipelineSpec.from_dict({
        "detector": "keyword",
        "executor": executor,
        "shards": 2,
        "detector_shards": 2,
        "batch_size": 64,
        "telemetry": dict(telemetry or {}),
    })


class TestStageMarkers:
    def test_push_pop_nest_and_unwind(self):
        assert current_stage() is None
        push_stage("acme", "parse")
        assert current_stage() == ("acme", "parse")
        push_stage("acme", "detect")
        assert current_stage() == ("acme", "detect")
        pop_stage()
        assert current_stage() == ("acme", "parse")
        pop_stage()
        assert current_stage() is None

    def test_pop_on_empty_stack_is_noop(self):
        pop_stage()
        assert current_stage() is None

    def test_markers_are_per_thread(self):
        seen = {}

        def worker():
            seen["before"] = current_stage()
            push_stage("tenant-b", "fit")
            seen["after"] = current_stage()
            pop_stage()

        push_stage("tenant-a", "parse")
        try:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        finally:
            pop_stage()
        assert seen["before"] is None
        assert seen["after"] == ("tenant-b", "fit")


class TestSamplingProfiler:
    def test_validates_constructor_arguments(self):
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError, match="max_stacks"):
            SamplingProfiler(max_stacks=0)

    def test_samples_a_marked_busy_thread(self):
        profiler = SamplingProfiler(hz=400)
        done = threading.Event()

        def busy():
            push_stage("acme", "detect")
            try:
                while not done.is_set():
                    sum(range(200))
            finally:
                pop_stage()

        thread = threading.Thread(target=busy)
        thread.start()
        profiler.start()
        try:
            deadline = time.monotonic() + 10.0
            while (profiler.stats()["samples"] < 5
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        finally:
            done.set()
            thread.join()
            profiler.stop()
        stats = profiler.stats()
        assert stats["samples"] >= 5
        assert stats["stage_samples"].get("acme/detect", 0) >= 1
        assert any(stack.startswith("detect;") for stack in
                   (spot["stack"] for spot in profiler.top()))

    def test_start_stop_are_idempotent_and_cycle(self):
        profiler = SamplingProfiler(hz=200)
        assert not profiler.running
        profiler.stop()  # stop before any start: no-op
        profiler.start()
        profiler.start()  # second start: same thread keeps running
        assert profiler.running
        assert sum(1 for thread in threading.enumerate()
                   if thread.name == "monilog-profiler") == 1
        profiler.stop()
        profiler.stop()
        assert not profiler.running
        profiler.start()  # restart after stop: a fresh cycle
        assert profiler.running
        profiler.stop()

    def test_eviction_bounds_the_stack_table(self):
        profiler = SamplingProfiler(max_stacks=4)
        for index in range(4):
            profiler._record_sample(f"other;stack-{index}", "", "other")
            profiler._record_sample("other;stack-0", "", "other")
        assert profiler.stats()["evictions"] == 0
        profiler._record_sample("other;newcomer", "", "other")
        stats = profiler.stats()
        assert stats["stacks"] == 4
        assert stats["evictions"] == 1
        assert stats["samples"] == 9
        stacks = {spot["stack"] for spot in profiler.top(limit=10)}
        # The minimum-count entry went; the hot stack-0 survived.
        assert "other;stack-0" in stacks
        assert "other;newcomer" in stacks

    def test_collapsed_round_trips_counts(self):
        profiler = SamplingProfiler()
        profiler._record_sample("parse;a;b", "t", "parse")
        profiler._record_sample("parse;a;b", "t", "parse")
        profiler._record_sample("detect;c", "t", "detect")
        assert profiler.collapsed() == "detect;c 1\nparse;a;b 2\n"
        assert SamplingProfiler().collapsed() == ""

    def test_attributed_fraction(self):
        profiler = SamplingProfiler()
        assert profiler.attributed_fraction() == 0.0
        profiler._record_sample("parse;a", "t", "parse")
        profiler._record_sample(f"{UNATTRIBUTED_STAGE};b", "",
                                UNATTRIBUTED_STAGE)
        assert profiler.attributed_fraction() == pytest.approx(0.5)

    def test_deepcopy_shares_the_profiler(self):
        profiler = SamplingProfiler()
        assert copy.deepcopy(profiler) is profiler


class TestProfilerNeutrality:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_alerts_identical_off_on_and_never(self, corpus, executor):
        history, live = corpus
        keys = {}
        for mode, telemetry in (
            ("never", {}),                       # no telemetry at all
            ("off", {"enabled": True}),          # telemetry, no profiler
            ("on", {"enabled": True, "profile": True}),
        ):
            with Pipeline.from_spec(_spec(executor, telemetry)) as pipeline:
                pipeline.fit(history)
                keys[mode] = [_alert_key(alert)
                              for alert in pipeline.process(live)]
        assert keys["never"], "corpus must alert for identity to mean much"
        assert keys["off"] == keys["never"]
        assert keys["on"] == keys["never"]

    def test_off_means_zero_profile_families(self, corpus):
        history, live = corpus
        with Pipeline.from_spec(
                _spec(telemetry={"enabled": True})) as pipeline:
            pipeline.fit(history)
            pipeline.process(live)
            assert not pipeline.profiling_enabled
            assert pipeline.profiler is None
            families = pipeline.telemetry()["metrics"]
            assert not [name for name in families
                        if name.startswith("monilog_profile_")]
            assert "monilog_profile" not in pipeline.metrics_text()
            with pytest.raises(RuntimeError, match="profile"):
                pipeline.profile()

    def test_on_exposes_families_and_stops_with_close(self, corpus):
        history, live = corpus
        pipeline = Pipeline.from_spec(
            _spec(telemetry={"enabled": True, "profile": True,
                             "profile_hz": 400}))
        with pipeline:
            pipeline.fit(history)
            deadline = time.monotonic() + 10.0
            while (pipeline.profiler.stats()["samples"] < 3
                   and time.monotonic() < deadline):
                pipeline.process(live)
            families = pipeline.telemetry()["metrics"]
            for name in ("monilog_profile_samples_total",
                         "monilog_profile_stacks",
                         "monilog_profile_evictions_total",
                         "monilog_profile_overhead_seconds_total",
                         "monilog_profile_stage_samples_total"):
                assert name in families, name
            profile = pipeline.profile(limit=5)
            assert profile["stats"]["samples"] >= 3
            assert len(profile["hotspots"]) <= 5
        assert not pipeline.profiler.running  # close() stopped it


class TestProfileEndpoint:
    def _served(self, profiler=None):
        return MetricsServer(MetricsRegistry(), 0, profiler=profiler)

    def test_404_without_a_profiler(self):
        with self._served() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/profile", timeout=10)
            assert excinfo.value.code == 404

    def test_json_hotspots_and_collapsed_round_trip(self):
        profiler = SamplingProfiler()
        profiler._record_sample("parse;a;b", "t", "parse")
        profiler._record_sample("parse;a;b", "t", "parse")
        profiler._record_sample("detect;c", "t", "detect")
        with self._served(profiler) as server:
            with urllib.request.urlopen(
                    f"{server.url}/profile?limit=1", timeout=10) as response:
                body = json.loads(response.read())
            assert body["stats"]["samples"] == 3
            assert body["hotspots"] == [
                {"stack": "parse;a;b", "samples": 2,
                 "share": pytest.approx(2 / 3)},
            ]
            with urllib.request.urlopen(
                    f"{server.url}/profile?format=collapsed",
                    timeout=10) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain")
                text = response.read().decode()
        assert text == profiler.collapsed()
        counts = dict(line.rsplit(" ", 1) for line in text.splitlines())
        assert counts == {"parse;a;b": "2", "detect;c": "1"}

    @pytest.mark.parametrize("query", [
        "limit=abc", "limit=-1", "format=xml", "format=collapsed&limit=x"
    ])
    def test_malformed_profile_query_is_a_clean_400(self, query):
        # format=collapsed ignores limit entirely, so the last case
        # answers 200 — collapsed output has no notion of a limit.
        expect_ok = query.startswith("format=collapsed")
        with self._served(SamplingProfiler()) as server:
            url = f"{server.url}/profile?{query}"
            if expect_ok:
                with urllib.request.urlopen(url, timeout=10) as response:
                    assert response.status == 200
                return
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=10)
            assert excinfo.value.code == 400
            error = json.loads(excinfo.value.read())
            assert "limit" in error["error"] or "format" in error["error"]

    def test_malformed_traces_limit_is_a_clean_400(self):
        from repro.telemetry import TraceStore
        with MetricsServer(MetricsRegistry(), 0,
                           trace_store=TraceStore(8)) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{server.url}/traces?limit=soon", timeout=10)
            assert excinfo.value.code == 400
            assert "limit" in json.loads(excinfo.value.read())["error"]


class TestProfilingConfig:
    def test_validates_profile_knobs(self):
        from repro.core.validation import ConfigError
        from repro.telemetry import TelemetryConfig
        for bad in ({"profile": "yes"}, {"profile_hz": 0},
                    {"profile_hz": True}, {"profile_stacks": 0},
                    {"profile_stacks": 2.5}):
            with pytest.raises(ConfigError):
                TelemetryConfig(**bad)

    def test_spec_flags_reach_the_profiler(self, corpus):
        with Pipeline.from_spec(_spec(telemetry={
                "enabled": True, "profile": True, "profile_hz": 17,
                "profile_stacks": 9})) as pipeline:
            assert pipeline.profiler.hz == 17
            assert pipeline.profiler.max_stacks == 9


class TestGatewayProfiling:
    def _gateway_spec(self, profile_tenants=("acme",)):
        tenants = {
            name: ({"telemetry": {"profile": True, "profile_hz": 400}}
                   if name in profile_tenants else {})
            for name in ("acme", "globex")
        }
        return {"detector": "keyword", "session_timeout": 30.0,
                "tenants": tenants}

    def test_one_shared_profiler_attributed_per_tenant(self, corpus):
        from repro.gateway import Gateway
        history, live = corpus
        with Gateway(self._gateway_spec()) as gateway:
            assert gateway.profiler is not None
            assert gateway.profiler.running
            assert gateway.pipeline("acme").profiler is gateway.profiler
            assert gateway.pipeline("globex").profiler is None
            gateway.fit(history)
            deadline = time.monotonic() + 10.0
            while (not gateway.profiler.stats()["stage_samples"].get(
                        "acme/parse")
                   and time.monotonic() < deadline):
                gateway.pipeline("acme").process(live)
            stages = gateway.profiler.stats()["stage_samples"]
            assert any(key.startswith("acme/") for key in stages)
            assert not any(key.startswith("globex/") for key in stages)
            families = gateway.telemetry()
            assert "monilog_profile_stage_samples_total" in families
            server = gateway.start_metrics_server(0)
            with urllib.request.urlopen(
                    f"{server.url}/profile", timeout=10) as response:
                assert json.loads(response.read())["stats"]["samples"] > 0
        assert not gateway.profiler.running

    def test_no_profiling_tenant_means_no_profiler(self, corpus):
        from repro.gateway import Gateway
        with Gateway(self._gateway_spec(profile_tenants=())) as gateway:
            assert gateway.profiler is None
            assert not [name for name in gateway.telemetry()
                        if name.startswith("monilog_profile_")]
