"""Behavioural tests for the five online parsers.

A shared contract battery runs against every online miner; algorithm-
specific behaviours (tree routing, LCS matching, n-gram warm-up...)
get their own classes.
"""

import pytest

from repro.logs.record import WILDCARD
from repro.metrics.parsing import grouping_accuracy
from repro.parsing import (
    DrainParser,
    LenMaParser,
    LogramParser,
    ONLINE_PARSERS,
    ShisoParser,
    SpellParser,
    default_masker,
)

from conftest import make_record


def _corpus():
    """Two statements with variables plus one constant statement."""
    records = []
    for index in range(30):
        records.append(make_record(f"send {index} bytes to host{index % 3}"))
        records.append(make_record(f"close connection {index * 7}"))
        records.append(make_record("heartbeat ok"))
    return records


#: Logram classifies with whatever its dictionaries contain, so early
#: messages land in warm-up templates and frequent variable values are
#: legitimately considered static — both by design.  The strict
#: grouping contract therefore applies to the similarity-based miners;
#: Logram's behaviour is pinned in :class:`TestLogramSpecific`.
GROUPING_PARSERS = sorted(set(ONLINE_PARSERS) - {"logram"})


@pytest.mark.parametrize("name", GROUPING_PARSERS)
class TestOnlineContract:
    def test_groups_repeated_statements(self, name):
        parser = ONLINE_PARSERS[name]()
        parsed = parser.parse_all(_corpus())
        # Far fewer templates than messages.
        assert parser.template_count <= 10
        # The constant statement maps to a single template id.
        heartbeat_ids = {
            event.template_id
            for event in parsed
            if event.record.message == "heartbeat ok"
        }
        assert len(heartbeat_ids) == 1

    def test_same_statement_same_template(self, name):
        parser = ONLINE_PARSERS[name]()
        parsed = parser.parse_all(_corpus())
        send_ids = {
            event.template_id
            for event in parsed
            if event.record.message.startswith("send ")
        }
        assert len(send_ids) == 1, f"{name} split a single statement"

    def test_hdfs_grouping_reasonable(self, name, hdfs_small):
        parser = ONLINE_PARSERS[name](masker=default_masker())
        parsed = parser.parse_all(hdfs_small.records)
        accuracy = grouping_accuracy(parsed, hdfs_small.library)
        assert accuracy >= 0.9, f"{name}: {accuracy:.3f}"


@pytest.mark.parametrize("name", sorted(ONLINE_PARSERS))
class TestOnlineBasics:
    def test_deterministic(self, name):
        one = ONLINE_PARSERS[name]().parse_all(_corpus())
        two = ONLINE_PARSERS[name]().parse_all(_corpus())
        assert [e.template_id for e in one] == [e.template_id for e in two]
        assert [e.template for e in one] == [e.template for e in two]

    def test_empty_message_does_not_crash(self, name):
        parser = ONLINE_PARSERS[name]()
        parsed = parser.parse_record(make_record(""))
        assert parsed.template == ""


class TestDrainSpecific:
    def test_digit_tokens_route_through_wildcard_child(self):
        parser = DrainParser(depth=2, similarity_threshold=0.5)
        parser.parse_record(make_record("10 units consumed"))
        parser.parse_record(make_record("25 units consumed"))
        assert parser.template_count == 1

    def test_similarity_threshold_controls_merging(self):
        lenient = DrainParser(similarity_threshold=0.3)
        strict = DrainParser(similarity_threshold=0.9)
        records = [make_record("alpha beta gamma one"),
                   make_record("alpha beta delta two")]
        for record in records:
            lenient.parse_record(record)
            strict.parse_record(record)
        assert lenient.template_count == 1
        assert strict.template_count == 2

    def test_max_children_overflow_to_wildcard(self):
        parser = DrainParser(depth=1, max_children=2,
                             similarity_threshold=0.6)
        for word in ("aa", "bb", "cc", "dd"):
            parser.parse_record(make_record(f"{word} suffix common tail"))
        # Overflow tokens share the wildcard child and can merge there.
        assert parser.template_count < 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DrainParser(depth=0)
        with pytest.raises(ValueError):
            DrainParser(similarity_threshold=0.0)
        with pytest.raises(ValueError):
            DrainParser(max_children=0)


class TestSpellSpecific:
    def test_lcs_matching_tolerates_variables(self):
        parser = SpellParser(tau=0.5)
        parser.parse_record(make_record("task 17 finished in 3 seconds"))
        parsed = parser.parse_record(make_record("task 99 finished in 8 seconds"))
        assert parser.template_count == 1
        assert parsed.template.count(WILDCARD) == 2

    def test_high_tau_splits(self):
        parser = SpellParser(tau=0.95)
        parser.parse_record(make_record("task 17 finished in 3 seconds"))
        parser.parse_record(make_record("task 99 finished in 8 seconds"))
        assert parser.template_count == 2

    def test_tau_validation(self):
        with pytest.raises(ValueError, match="tau"):
            SpellParser(tau=0.0)


class TestLenMaSpecific:
    def test_length_vectors_group_same_statement(self):
        parser = LenMaParser(threshold=0.9)
        parser.parse_record(make_record("user alice logged in from 10.0.0.1"))
        parser.parse_record(make_record("user brian logged in from 10.9.8.7"))
        assert parser.template_count == 1

    def test_short_messages_need_positional_match(self):
        parser = LenMaParser(threshold=0.9)
        parser.parse_record(make_record("ab cd"))
        parser.parse_record(make_record("xy zw"))
        # Same length vector but zero positional overlap on a short
        # message: must not merge.
        assert parser.template_count == 2

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            LenMaParser(threshold=1.5)


class TestShisoSpecific:
    def test_char_class_similarity_groups_numeric_variants(self):
        parser = ShisoParser()
        parser.parse_record(make_record("retry 101 scheduled"))
        parser.parse_record(make_record("retry 404 scheduled"))
        assert parser.template_count == 1

    def test_different_shapes_split(self):
        parser = ShisoParser()
        parser.parse_record(make_record("retry 101 scheduled"))
        parser.parse_record(make_record("ERROR failure detected"))
        assert parser.template_count == 2

    def test_tree_descends_when_full(self):
        parser = ShisoParser(max_children=1, similarity_threshold=0.99)
        for index in range(6):
            parser.parse_record(make_record(f"statement number {index} kind-{index}"))
        # All messages parsed despite the tiny fan-out.
        assert parser.template_count >= 1


class TestLogramSpecific:
    def test_warmup_then_stabilizes(self):
        parser = LogramParser(doublet_threshold=3, triplet_threshold=2)
        records = [make_record(f"send {i} bytes to host") for i in range(40)]
        parsed = parser.parse_all(records)
        # Once dictionaries are warm, the variable position is masked
        # and all later messages share one template.
        late_ids = {event.template_id for event in parsed[-10:]}
        assert len(late_ids) == 1
        late_template = parsed[-1].template
        assert WILDCARD in late_template

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            LogramParser(doublet_threshold=0)

    def test_warmup_recovers_grouping(self, hdfs_small):
        from repro.metrics.parsing import grouping_accuracy

        cold = LogramParser(masker=default_masker())
        cold_accuracy = grouping_accuracy(
            cold.parse_all(hdfs_small.records), hdfs_small.library
        )
        warm = LogramParser(masker=default_masker())
        warm.warmup(hdfs_small.records)
        warm_accuracy = grouping_accuracy(
            warm.parse_all(hdfs_small.records), hdfs_small.library
        )
        assert warm_accuracy >= 0.95
        assert warm_accuracy > cold_accuracy
