"""Legacy-facade parity: each deprecated shim emits DeprecationWarning
and produces byte-identical alerts vs the unified ``Pipeline`` built
from the equivalent ``PipelineSpec``, on a shared fixture corpus.

This is the contract that let the four facades become shims: the new
API is not "close to" the old behavior, it *is* the old behavior.
"""

from __future__ import annotations

import pytest

from repro.api import Pipeline, PipelineSpec
from repro.core.distributed import ShardedMoniLog
from repro.core.pipeline import MoniLog
from repro.core.streaming import StreamingMoniLog, StreamingShardedMoniLog
from repro.detection import InvariantMiningDetector


def _alert_shape(alert):
    """A fully structural view of an alert, for exact comparison."""
    return (
        alert.report.report_id,
        alert.report.session_id,
        tuple(
            (event.template_id, event.template, event.variables,
             event.record.message)
            for event in alert.report.events
        ),
        alert.report.detection.anomalous,
        round(alert.report.detection.score, 12),
        alert.pool,
        alert.criticality,
        round(alert.confidence, 12),
    )


def _shapes(alerts):
    return [_alert_shape(alert) for alert in alerts]


@pytest.fixture(scope="module")
def corpus(hdfs_small):
    cut = len(hdfs_small.records) * 6 // 10
    return hdfs_small.records[:cut], hdfs_small.records[cut:]


SPEC = dict(detector="invariants")


class TestMoniLogShim:
    def test_warns_and_matches_pipeline(self, corpus):
        train, live = corpus
        with pytest.warns(DeprecationWarning, match="MoniLog is deprecated"):
            legacy = MoniLog(detector=InvariantMiningDetector())
        legacy.train(train)
        expected = legacy.run_all(live)
        assert expected, "the fixture must produce alerts to compare"

        pipeline = Pipeline(PipelineSpec(**SPEC)).fit(train)
        assert _shapes(pipeline.run_all(live)) == _shapes(expected)
        # The shim's stats view is the pipeline's counters object.
        assert legacy.stats.records_parsed > 0
        assert legacy.stats is legacy._pipeline.stats()

    def test_process_batch_matches_process(self, corpus):
        train, live = corpus
        with pytest.warns(DeprecationWarning):
            legacy = MoniLog(detector=InvariantMiningDetector()).train(train)
        expected = legacy.process_batch(live, batch_size=64)
        pipeline = Pipeline(PipelineSpec(**SPEC)).fit(train)
        assert _shapes(pipeline.process(live, batch_size=64)) == \
            _shapes(expected)


class TestShardedShim:
    def test_warns_and_matches_pipeline(self, corpus):
        train, live = corpus
        with pytest.warns(DeprecationWarning,
                          match="ShardedMoniLog is deprecated"):
            legacy = ShardedMoniLog(
                parser_shards=3,
                detector_shards=2,
                detector_factory=lambda shard: InvariantMiningDetector(),
            )
        legacy.train(train)
        expected = legacy.run_all(live)
        assert expected

        pipeline = Pipeline(
            PipelineSpec(shards=3, detector_shards=2, **SPEC)
        ).fit(train)
        assert _shapes(pipeline.run_all(live)) == _shapes(expected)
        assert pipeline.parser.shard_loads == legacy.parser.shard_loads

    def test_default_detector_is_shard_seeded_deeplog(self):
        # The legacy default was DeepLog(seed=shard); the spec-driven
        # factory injects the shard index into seed-accepting
        # detectors, so the default spec is the legacy default.
        pipeline = Pipeline(PipelineSpec(shards=2, detector_shards=3))
        with pytest.warns(DeprecationWarning):
            legacy = ShardedMoniLog(parser_shards=2, detector_shards=3)
        for built, reference in zip(pipeline.detectors, legacy.detectors):
            assert type(built) is type(reference)
            assert built.seed == reference.seed


class TestStreamingShims:
    def test_streaming_monilog_warns_and_matches(self, corpus):
        train, live = corpus
        with pytest.warns(DeprecationWarning):
            host = MoniLog(detector=InvariantMiningDetector()).train(train)
        with pytest.warns(DeprecationWarning,
                          match="StreamingMoniLog is deprecated"):
            legacy = StreamingMoniLog(host, session_timeout=20.0,
                                      max_session_events=64)
        expected = []
        for record in live:
            expected.extend(legacy.process(record))
        expected.extend(legacy.flush())
        assert expected

        pipeline = Pipeline(PipelineSpec(
            streaming=True, session_timeout=20.0, max_session_events=64,
            **SPEC,
        )).fit(train)
        actual = []
        for record in live:
            actual.extend(pipeline.process_record(record))
        actual.extend(pipeline.flush())
        assert _shapes(actual) == _shapes(expected)

    def test_streaming_sharded_warns_and_matches(self, corpus):
        train, live = corpus
        with pytest.warns(DeprecationWarning):
            host = ShardedMoniLog(
                parser_shards=3,
                detector_shards=2,
                detector_factory=lambda shard: InvariantMiningDetector(),
            ).train(train)
        with pytest.warns(DeprecationWarning,
                          match="StreamingShardedMoniLog is deprecated"):
            legacy = StreamingShardedMoniLog(host, session_timeout=20.0,
                                             max_session_events=64)
        expected = []
        for start in range(0, len(live), 50):
            expected.extend(legacy.process_batch(live[start:start + 50]))
        expected.extend(legacy.flush())
        assert expected

        pipeline = Pipeline(PipelineSpec(
            shards=3, detector_shards=2, streaming=True,
            session_timeout=20.0, max_session_events=64, **SPEC,
        )).fit(train)
        actual = []
        for start in range(0, len(live), 50):
            actual.extend(pipeline.process(live[start:start + 50]))
        actual.extend(pipeline.flush())
        assert _shapes(actual) == _shapes(expected)

    def test_wrapping_does_not_change_batch_entry_points(self, corpus):
        # Legacy contract: arming a streaming facade over a system must
        # not change what the system's own run()/process_batch() do.
        train, live = corpus
        with pytest.warns(DeprecationWarning):
            plain = MoniLog(detector=InvariantMiningDetector()).train(train)
        expected = plain.run_all(live)
        with pytest.warns(DeprecationWarning):
            wrapped = MoniLog(detector=InvariantMiningDetector()).train(train)
            StreamingMoniLog(wrapped, session_timeout=20.0)
        assert _shapes(wrapped.run_all(live)) == _shapes(expected)


class TestIngestAcceptsPipeline:
    def test_service_scores_through_a_streaming_pipeline(self, corpus):
        import asyncio

        from repro.core.config import IngestConfig
        from repro.ingest import AsyncSourceAdapter, IngestService
        from repro.logs.sources import ReplaySource

        train, live = corpus
        reference = Pipeline(PipelineSpec(
            streaming=True, session_timeout=1e9, **SPEC,
        )).fit(train)
        expected = reference.process(live) + reference.flush()
        assert expected

        pipeline = Pipeline(PipelineSpec(
            streaming=True, session_timeout=1e9, **SPEC,
        )).fit(train)
        service = IngestService(
            [AsyncSourceAdapter(ReplaySource("replay", live))],
            pipeline,  # a Pipeline, not a legacy streaming facade
            config=IngestConfig(batch_size=64, max_batch_age=5.0,
                                lateness=1e9),
        )
        actual = asyncio.run(service.run())
        actual.extend(pipeline.flush())
        assert _shapes(actual) == _shapes(expected)
