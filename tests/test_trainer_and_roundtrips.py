"""Trainer-loop behaviour and property-based format round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.logs.formats import DASHED_FORMAT
from repro.logs.record import LogRecord, Severity
from repro.nn import Adam, Dense, Trainer, mse_loss
from repro.nn.network import EpochStats


class TestTrainer:
    def _fit(self, **kwargs):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 3))
        true_weight = np.array([[1.0], [-2.0], [0.5]])
        y = x @ true_weight
        model = Dense(3, 1, seed=1)

        def loss_fn(x_batch, y_batch):
            predictions = model.forward(x_batch)
            loss, grad = mse_loss(predictions, y_batch)
            model.backward(grad)
            return loss, None

        trainer = Trainer(model, Adam(learning_rate=0.05), **kwargs)
        history = trainer.fit(x, y, loss_fn)
        return model, history, true_weight

    def test_learns_linear_map(self):
        model, history, true_weight = self._fit(epochs=60, batch_size=16)
        assert model.weight.value == pytest.approx(true_weight, abs=0.05)

    def test_loss_decreases(self):
        _, history, _ = self._fit(epochs=30, batch_size=16)
        assert history[-1].loss < history[0].loss

    def test_history_structure(self):
        _, history, _ = self._fit(epochs=5, batch_size=16)
        assert len(history) == 5
        assert all(isinstance(entry, EpochStats) for entry in history)
        assert [entry.epoch for entry in history] == list(range(5))
        assert all(entry.accuracy is None for entry in history)

    def test_deterministic_given_seed(self):
        model_a, _, _ = self._fit(epochs=10, batch_size=8, seed=4)
        model_b, _, _ = self._fit(epochs=10, batch_size=8, seed=4)
        assert np.array_equal(model_a.weight.value, model_b.weight.value)

    def test_empty_dataset_is_noop(self):
        model = Dense(2, 1)
        trainer = Trainer(model, Adam())
        history = trainer.fit(
            np.zeros((0, 2)), np.zeros((0, 1)), lambda x, y: (0.0, None)
        )
        assert history == []

    def test_length_mismatch_rejected(self):
        trainer = Trainer(Dense(2, 1), Adam())
        with pytest.raises(ValueError, match="disagree"):
            trainer.fit(np.zeros((3, 2)), np.zeros((2, 1)),
                        lambda x, y: (0.0, None))

    def test_eval_mode_after_fit(self):
        model, _, _ = self._fit(epochs=1, batch_size=16)
        assert model.training is False


message_text = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"),
                           max_codepoint=0x24F),
    min_size=1,
    max_size=40,
).map(str.strip).filter(bool)

source_text = st.text(
    alphabet=st.characters(whitelist_categories=("L",), max_codepoint=0x7A),
    min_size=1,
    max_size=12,
)


class TestFormatRoundtripProperties:
    @given(
        message=message_text,
        source=source_text,
        severity=st.sampled_from(list(Severity)),
        timestamp=st.floats(0.0, 4_000_000_000.0, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_dashed_roundtrip(self, message, source, severity, timestamp):
        record = LogRecord(
            timestamp=timestamp,
            source=source,
            severity=severity,
            message=message,
        )
        rendered = DASHED_FORMAT.render(record)
        parsed = DASHED_FORMAT.parse(rendered)
        assert parsed is not None
        assert parsed.source == source
        assert parsed.severity is severity
        # Messages collapse internal whitespace at tokenization, but
        # the rendered message must round-trip verbatim.
        assert parsed.message == message
        assert parsed.timestamp == pytest.approx(timestamp, abs=0.01)

    @given(message=message_text)
    @settings(max_examples=40)
    def test_session_extractor_never_crashes(self, message):
        from repro.logs.sessions import SessionKeyExtractor

        extractor = SessionKeyExtractor()
        key = extractor.key_for(message)
        assert key is None or isinstance(key, str)
