"""Additional coverage: distributed detector routing and eval helpers."""

import pytest

from repro import Pipeline, PipelineSpec
from repro.core.distributed import _shard_of
from repro.detection import InvariantMiningDetector
from repro.datasets import generate_hdfs


class TestShardRouting:
    def test_shard_of_is_deterministic_and_bounded(self):
        for shards in (1, 2, 5):
            for session_id in ("blk_1", "req-0001", "anything"):
                shard = _shard_of(session_id, shards)
                assert 0 <= shard < shards
                assert shard == _shard_of(session_id, shards)

    def test_single_detector_shard_sees_everything(self):
        data = generate_hdfs(sessions=80, anomaly_rate=0.1, seed=13)
        sharded = Pipeline(
            PipelineSpec(shards=2, detector_shards=1),
            detector_factory=lambda shard: InvariantMiningDetector(),
        )
        cut = len(data.records) * 6 // 10
        sharded.fit(data.records[:cut])
        alerts = sharded.run_all(data.records[cut:])
        anomalous = set(data.anomalous_sessions())
        assert all(
            alert.report.session_id in anomalous
            or alert.report.detection.score > 0
            for alert in alerts
        )

    def test_too_many_detector_shards_fails_loudly(self):
        data = generate_hdfs(sessions=6, anomaly_rate=0.0, seed=13)
        sharded = Pipeline(
            PipelineSpec(shards=1, detector_shards=64),
            detector_factory=lambda shard: InvariantMiningDetector(),
        )
        with pytest.raises(ValueError, match="no training sessions"):
            sharded.fit(data.records)


class TestEvalHelpers:
    def test_parse_dataset_default_parser(self, hdfs_small):
        from repro.eval import parse_dataset

        parsed = parse_dataset(hdfs_small.records[:100])
        assert len(parsed) == 100
        assert all(event.template for event in parsed)

    def test_experiment_respects_min_session_events(self, hdfs_small):
        from repro.eval import DetectionExperiment

        strict = DetectionExperiment.from_dataset(
            hdfs_small, min_session_events=100, seed=1
        )
        assert strict.train_sessions == []
        assert strict.test_sessions == []
