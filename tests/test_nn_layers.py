"""Unit tests for nn layers, losses and optimizers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    Dropout,
    Embedding,
    Lstm,
    Sgd,
    load_module,
    mse_loss,
    save_module,
    sigmoid,
    softmax,
    softmax_cross_entropy,
)
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.network import Module, Parameter


class TestActivations:
    def test_sigmoid_range_and_stability(self):
        x = np.array([-1000.0, -1.0, 0.0, 1.0, 1000.0])
        y = sigmoid(x)
        assert np.all((y >= 0) & (y <= 1))
        assert y[2] == pytest.approx(0.5)
        assert np.isfinite(y).all()

    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [1000.0, 1000.0, 1000.0]])
        probabilities = softmax(logits)
        assert probabilities.sum(axis=1) == pytest.approx([1.0, 1.0])
        assert np.isfinite(probabilities).all()


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3)
        assert layer.forward(np.ones((5, 4))).shape == (5, 3)

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2)
        with pytest.raises(RuntimeError, match="forward"):
            layer.backward(np.ones((1, 2)))

    def test_handles_time_axes(self):
        layer = Dense(4, 3)
        out = layer.forward(np.ones((2, 7, 4)))
        assert out.shape == (2, 7, 3)
        grad = layer.backward(np.ones((2, 7, 3)))
        assert grad.shape == (2, 7, 4)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            Dense(0, 3)


class TestEmbedding:
    def test_lookup_shape(self):
        layer = Embedding(10, 6)
        out = layer.forward(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_out_of_range_ids_rejected(self):
        layer = Embedding(5, 3)
        with pytest.raises(IndexError, match="out of range"):
            layer.forward(np.array([5]))

    def test_gradient_accumulates_per_id(self):
        layer = Embedding(4, 2)
        layer.forward(np.array([1, 1, 2]))
        layer.backward(np.ones((3, 2)))
        assert layer.table.grad[1] == pytest.approx([2.0, 2.0])
        assert layer.table.grad[2] == pytest.approx([1.0, 1.0])
        assert layer.table.grad[0] == pytest.approx([0.0, 0.0])


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5)
        layer.train_mode(False)
        x = np.ones((4, 4))
        assert np.array_equal(layer.forward(x), x)

    def test_train_mode_scales_kept_units(self):
        layer = Dropout(0.5, seed=0)
        layer.train_mode(True)
        out = layer.forward(np.ones((1000,)))
        kept = out[out > 0]
        assert kept == pytest.approx(np.full(kept.shape, 2.0))
        assert 0.3 < len(kept) / 1000 < 0.7

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="rate"):
            Dropout(1.0)


class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad, probabilities = softmax_cross_entropy(
            logits, np.array([0, 1])
        )
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert np.abs(grad).max() < 1e-6

    def test_cross_entropy_gradient_direction(self):
        logits = np.zeros((1, 3))
        _, grad, _ = softmax_cross_entropy(logits, np.array([1]))
        assert grad[0, 1] < 0  # push the true class up
        assert grad[0, 0] > 0 and grad[0, 2] > 0

    def test_cross_entropy_shape_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(3), np.array([0]))

    def test_bce_matches_manual(self):
        logits = np.array([0.0])
        loss, _, probabilities = binary_cross_entropy_with_logits(
            logits, np.array([1.0])
        )
        assert loss == pytest.approx(np.log(2.0))
        assert probabilities[0] == pytest.approx(0.5)

    def test_bce_extreme_logits_stable(self):
        loss, grad, _ = binary_cross_entropy_with_logits(
            np.array([1000.0, -1000.0]), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()

    def test_mse(self):
        loss, grad = mse_loss(np.array([2.0, 0.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(2.0)
        assert grad == pytest.approx([2.0, 0.0])


class _Quadratic(Module):
    """Toy model: minimize ||w - target||^2."""

    def __init__(self, start: np.ndarray):
        self.w = Parameter("w", start.copy())


@pytest.mark.parametrize("optimizer_factory", [
    lambda: Sgd(learning_rate=0.1, momentum=0.0),
    lambda: Sgd(learning_rate=0.05, momentum=0.9),
    lambda: Adam(learning_rate=0.2),
])
class TestOptimizers:
    def test_converges_on_quadratic(self, optimizer_factory):
        target = np.array([3.0, -2.0])
        model = _Quadratic(np.zeros(2))
        optimizer = optimizer_factory()
        for _ in range(200):
            model.zero_grad()
            model.w.grad += 2.0 * (model.w.value - target)
            optimizer.step(model.parameters())
        assert model.w.value == pytest.approx(target, abs=1e-2)


class TestGradientClipping:
    def test_clip_scales_down(self):
        from repro.nn.optim import clip_gradients

        parameter = Parameter("p", np.zeros(4))
        parameter.grad += np.full(4, 10.0)
        norm = clip_gradients([parameter], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        from repro.nn.optim import clip_gradients

        parameter = Parameter("p", np.zeros(2))
        parameter.grad += np.array([0.3, 0.4])
        clip_gradients([parameter], max_norm=1.0)
        assert parameter.grad == pytest.approx([0.3, 0.4])


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        source = Dense(3, 2, seed=1)
        target = Dense(3, 2, seed=2)
        path = tmp_path / "dense.npz"
        save_module(source, path)
        load_module(target, path)
        assert np.array_equal(source.weight.value, target.weight.value)
        assert np.array_equal(source.bias.value, target.bias.value)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = tmp_path / "model.npz"
        save_module(Dense(3, 2), path)
        with pytest.raises(ValueError, match="shape mismatch"):
            load_module(Dense(3, 4), path)

    def test_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "model.npz"
        save_module(Dense(3, 2), path)
        with pytest.raises(ValueError, match="parameters"):
            load_module(Lstm(3, 2), path)


class TestModuleDiscovery:
    def test_nested_parameters_found_once(self):
        class Wrapper(Module):
            def __init__(self):
                self.inner = Dense(2, 2)
                self.alias = self.inner  # same module referenced twice
                self.stack = [Dense(2, 2, seed=5)]
                self.by_name = {"e": Embedding(3, 2)}

        wrapper = Wrapper()
        parameters = wrapper.parameters()
        assert len(parameters) == 2 + 2 + 1  # dense(w,b) x2 + embedding

    def test_train_mode_propagates(self):
        class Wrapper(Module):
            def __init__(self):
                self.dropout = Dropout(0.5)

        wrapper = Wrapper()
        wrapper.train_mode(False)
        assert wrapper.dropout.training is False
