"""Tests for detection, parsing (Eq. 1), and unsupervised metrics."""

import pytest

from repro.logs.record import ParsedLog, WILDCARD
from repro.logs.sources import TemplateLibrary, constant, integer
from repro.metrics import (
    confusion_counts,
    cluster_cohesion,
    grouping_accuracy,
    mdl_score,
    parsing_report,
    precision_recall_f1,
    template_separation,
    token_accuracy,
    unsupervised_quality,
)

from conftest import make_record


class TestDetectionMetrics:
    def test_perfect_predictions(self):
        predictions = [True, False, True, False]
        truths = [True, False, True, False]
        assert precision_recall_f1(predictions, truths) == (1.0, 1.0, 1.0)

    def test_paper_definitions(self):
        # 2 TP, 1 FP, 1 FN, 1 TN.
        predictions = [True, True, True, False, False]
        truths = [True, True, False, True, False]
        report = confusion_counts(predictions, truths)
        assert report.true_positives == 2
        assert report.false_positives == 1
        assert report.false_negatives == 1
        assert report.true_negatives == 1
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == pytest.approx(2 / 3)
        assert report.f1 == pytest.approx(2 / 3)

    def test_degenerate_cases(self):
        report = confusion_counts([False, False], [False, False])
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.f1 == 0.0
        assert report.accuracy == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            confusion_counts([True], [True, False])

    def test_as_row(self):
        row = confusion_counts([True], [True]).as_row()
        assert set(row) == {"precision", "recall", "f1"}


def _library() -> TemplateLibrary:
    library = TemplateLibrary()
    library.add(f"send {WILDCARD} bytes", (integer(1, 99),))
    library.add("link down")
    return library


def _parsed(message: str, template_id: int, template: str) -> ParsedLog:
    return ParsedLog(
        record=make_record(message),
        template_id=template_id,
        template=template,
        variables=(),
    )


class TestGroupingAccuracy:
    def test_perfect_grouping(self):
        library = _library()
        parsed = [
            _parsed("send 1 bytes", 0, f"send {WILDCARD} bytes"),
            _parsed("send 2 bytes", 0, f"send {WILDCARD} bytes"),
            _parsed("link down", 1, "link down"),
        ]
        assert grouping_accuracy(parsed, library) == 1.0

    def test_split_cluster_penalized(self):
        library = _library()
        parsed = [
            _parsed("send 1 bytes", 0, "send 1 bytes"),
            _parsed("send 2 bytes", 5, "send 2 bytes"),  # split!
            _parsed("link down", 1, "link down"),
        ]
        # The two send messages are each in a wrong (partial) cluster.
        assert grouping_accuracy(parsed, library) == pytest.approx(1 / 3)

    def test_merged_cluster_penalized(self):
        library = _library()
        parsed = [
            _parsed("send 1 bytes", 0, WILDCARD),
            _parsed("link down", 0, WILDCARD),  # merged!
        ]
        assert grouping_accuracy(parsed, library) == 0.0

    def test_unknown_messages_skipped(self):
        library = _library()
        parsed = [
            _parsed("send 1 bytes", 0, f"send {WILDCARD} bytes"),
            _parsed("alien message entirely", 9, "alien message entirely"),
        ]
        assert grouping_accuracy(parsed, library) == 1.0


class TestTokenAccuracyEq1:
    def test_perfect_parse(self):
        library = _library()
        parsed = [_parsed("send 42 bytes", 0, f"send {WILDCARD} bytes")]
        assert token_accuracy(parsed, library) == 1.0

    def test_missed_variable_costs_one_token(self):
        library = _library()
        # Parser kept '42' static: 2 of 3 tokens correctly assigned
        # (the wildcard position is wrong).
        parsed = [_parsed("send 42 bytes", 0, "send 42 bytes")]
        assert token_accuracy(parsed, library) == pytest.approx(2 / 3)

    def test_over_masked_static_costs_one_token(self):
        library = _library()
        # Parser wildcarded the static word 'bytes' as well.
        parsed = [
            _parsed("send 42 bytes", 0, f"send {WILDCARD} {WILDCARD}")
        ]
        assert token_accuracy(parsed, library) == pytest.approx(2 / 3)

    def test_length_mismatch_scores_zero(self):
        library = _library()
        parsed = [_parsed("send 42 bytes", 0, f"send {WILDCARD}")]
        assert token_accuracy(parsed, library) == 0.0

    def test_mean_over_messages(self):
        library = _library()
        parsed = [
            _parsed("send 42 bytes", 0, f"send {WILDCARD} bytes"),  # 1.0
            _parsed("send 43 bytes", 0, "send 43 bytes"),           # 2/3
        ]
        assert token_accuracy(parsed, library) == pytest.approx((1 + 2 / 3) / 2)

    def test_parsing_report_bundles_everything(self):
        library = _library()
        parsed = [
            _parsed("send 42 bytes", 0, f"send {WILDCARD} bytes"),
            _parsed("alien words", 7, "alien words"),
        ]
        report = parsing_report(parsed, library)
        assert report.grouping_accuracy == 1.0
        assert report.token_accuracy == 1.0
        assert report.evaluated_messages == 1
        assert report.skipped_messages == 1
        assert report.predicted_templates == 2
        assert report.true_templates == 2


class TestUnsupervisedMetrics:
    def _good_parse(self, count=30):
        return [
            _parsed(f"send {i} bytes", 0, f"send {WILDCARD} bytes")
            for i in range(count)
        ]

    def _oversplit_parse(self, count=30):
        return [
            _parsed(f"send {i} bytes", i, f"send {i} bytes")
            for i in range(count)
        ]

    def _overmerged_parse(self, count=30):
        return [
            _parsed(f"send {i} bytes", 0,
                    f"{WILDCARD} {WILDCARD} {WILDCARD}")
            for i in range(count)
        ]

    def test_mdl_prefers_good_parse_over_oversplit(self):
        assert mdl_score(self._good_parse()) > mdl_score(
            self._oversplit_parse()
        )

    def test_mdl_prefers_good_parse_over_overmerge(self):
        assert mdl_score(self._good_parse()) > mdl_score(
            self._overmerged_parse()
        )

    def test_cohesion_detects_impure_clusters(self):
        library_good = self._good_parse()
        impure = [
            _parsed("send 1 bytes", 0, f"send {WILDCARD} bytes"),
            _parsed("link down now", 0, f"send {WILDCARD} bytes"),
        ] * 10
        assert cluster_cohesion(library_good) > cluster_cohesion(impure)

    def test_combined_quality_ranks_good_parse_first(self):
        good = unsupervised_quality(self._good_parse())
        oversplit = unsupervised_quality(self._oversplit_parse())
        overmerged = unsupervised_quality(self._overmerged_parse())
        assert good > oversplit
        assert good > overmerged

    def test_bounds(self):
        for parse in (self._good_parse(), self._oversplit_parse(),
                      self._overmerged_parse(), []):
            assert 0.0 <= mdl_score(parse) <= 1.0
            assert 0.0 <= cluster_cohesion(parse) <= 1.0
            assert 0.0 <= unsupervised_quality(parse) <= 1.0
            assert 0.0 <= template_separation(parse) <= 1.0

    def test_separation_penalizes_near_duplicate_templates(self):
        distinct = [
            _parsed("send 1 bytes", 0, f"send {WILDCARD} bytes"),
            _parsed("link down now", 1, "link down now"),
        ]
        oversplit = [
            _parsed("send 1 bytes", 0, "send 1 bytes"),
            _parsed("send 2 bytes", 1, "send 2 bytes"),
        ]
        assert template_separation(distinct) > template_separation(oversplit)

    def test_separation_single_template_is_one(self):
        parse = [_parsed("send 1 bytes", 0, f"send {WILDCARD} bytes")]
        assert template_separation(parse) == 1.0
