"""Gateway tests: tenant isolation over shared pools.

The tenancy tentpole's serving layer.  The claims, in order of how
much they matter:

* **alert parity** — a tenant served through the gateway produces
  byte-identical alerts to the same spec running standalone (shared
  executor, shared registry, and co-tenants change nothing);
* **isolation** — tenants keep separate parser/detector state,
  separate credit gates, separate checkpoint namespaces; one tenant's
  failure shuts the gateway down without losing what others read;
* **shared surfaces** — one executor instance, one metrics registry
  with a ``tenant`` label on every family, one checkpoint file.
"""

import asyncio

import pytest

from repro.api import Pipeline, PipelineSpec
from repro.api.registry import REGISTRY
from repro.core.validation import ConfigError
from repro.gateway import Gateway, GatewayService, TenantAlert
from repro.ingest import AsyncSourceAdapter, CheckpointStore

from conftest import make_record


def corpus(prefix, sessions=5, anomalous=()):
    records = []
    for session in range(sessions):
        sid = f"{prefix}-{session}"
        messages = [f"request {index} handled in 10 ms"
                    for index in range(6)]
        if session in anomalous:
            messages[2:2] = ["backend error timeout detected"] * 3
        for sequence, message in enumerate(messages):
            records.append(make_record(
                message, timestamp=float(session * 100 + sequence),
                source=prefix, session_id=sid, sequence=sequence))
    return records


def two_tenant_spec(**base):
    return PipelineSpec.from_dict({
        "detector": "keyword",
        "session_timeout": 5.0,
        "tenants": {"acme": {}, "globex": {}},
        **base,
    })


def alert_key(alert):
    report = alert.report
    return (report.report_id, report.session_id, alert.pool,
            alert.criticality,
            tuple((e.template_id, e.record.message) for e in report.events))


class TestConstruction:
    def test_requires_tenants(self):
        with pytest.raises(ValueError, match="tenants"):
            Gateway(PipelineSpec())

    def test_tenants_in_declaration_order(self):
        with Gateway(two_tenant_spec()) as gateway:
            assert gateway.tenants == ["acme", "globex"]

    def test_unknown_tenant_lookup_names_choices(self):
        with Gateway(two_tenant_spec()) as gateway:
            with pytest.raises(KeyError, match="acme"):
                gateway.pipeline("nope")

    def test_pipelines_share_one_executor(self):
        with Gateway(two_tenant_spec()) as gateway:
            assert gateway.pipeline("acme").executor \
                is gateway.pipeline("globex").executor
            assert gateway.pipeline("acme").executor is gateway.executor

    def test_tenant_pipelines_are_streaming(self):
        with Gateway(two_tenant_spec()) as gateway:
            assert all(gateway.pipeline(name).streaming
                       for name in gateway.tenants)

    def test_registered_as_gateway_component(self):
        assert REGISTRY.get("gateway", "standard").cls is Gateway

    def test_tenant_metrics_port_is_stripped(self):
        """One shared endpoint; a tenant's metrics_port must not
        auto-start a private server."""
        spec = two_tenant_spec()
        spec = spec.replace(tenants={
            "acme": {"telemetry": {"metrics_port": 0}}, "globex": {},
        })
        with Gateway(spec) as gateway:
            assert gateway.pipeline("acme").metrics_server is None

    def test_tenant_can_opt_out_of_telemetry(self):
        spec = two_tenant_spec()
        spec = spec.replace(tenants={
            "acme": {"telemetry": {"enabled": False}}, "globex": {},
        })
        with Gateway(spec) as gateway:
            assert not gateway.pipeline("acme").telemetry_enabled
            assert gateway.pipeline("globex").telemetry_enabled


class TestTelemetrySharing:
    def test_every_family_carries_the_tenant_label(self):
        with Gateway(two_tenant_spec()) as gateway:
            gateway.fit(corpus("hist"))
            gateway.process({"acme": corpus("live"),
                             "globex": corpus("live")})
            text = gateway.metrics_text()
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            assert 'tenant="' in line, f"unlabeled sample: {line}"
        assert 'tenant="acme"' in text and 'tenant="globex"' in text

    def test_preamble_documents_the_label_convention(self):
        with Gateway(two_tenant_spec()) as gateway:
            text = gateway.metrics_text()
        assert text.startswith("# ")
        assert "tenant" in text.splitlines()[1]

    def test_snapshot_filterable_per_tenant(self):
        from repro.telemetry import filter_snapshot
        with Gateway(two_tenant_spec()) as gateway:
            gateway.fit(corpus("hist"))
            gateway.process({"acme": corpus("live")})
            snapshot = filter_snapshot(gateway.telemetry(), tenant="acme")
        assert snapshot
        for family in snapshot.values():
            assert all(entry["labels"]["tenant"] == "acme"
                       for entry in family["values"])


class TestFit:
    def test_dict_histories_must_cover_tenants_exactly(self):
        with Gateway(two_tenant_spec()) as gateway:
            with pytest.raises(ValueError, match="missing histories"):
                gateway.fit({"acme": corpus("hist")})
            with pytest.raises(ValueError, match="unknown tenants"):
                gateway.fit({"acme": corpus("hist"),
                             "globex": corpus("hist"),
                             "nope": corpus("hist")})

    def test_shared_iterable_fits_every_tenant(self):
        with Gateway(two_tenant_spec()) as gateway:
            gateway.fit(iter(corpus("hist")))
            alerts = gateway.process({
                "acme": corpus("live", anomalous=(1,)),
                "globex": corpus("live"),
            })
        assert [a.tenant for a in alerts] == ["acme"]


class TestOfflineParity:
    def test_gateway_tenant_matches_standalone_pipeline(self):
        """The parity invariant: shared pools and co-tenants change
        nothing about one tenant's alerts."""
        spec = two_tenant_spec()
        history = corpus("hist")
        live = corpus("live", anomalous=(1, 3))
        noise = corpus("noise", sessions=8, anomalous=(0, 2, 4))

        with Gateway(spec) as gateway:
            gateway.fit(history)
            tagged = gateway.process({"acme": live, "globex": noise})
        gateway_alerts = [a.alert for a in tagged if a.tenant == "acme"]

        standalone_spec = spec.tenant_spec("acme").replace(streaming=True)
        with Pipeline(standalone_spec) as standalone:
            standalone.fit(history)
            standalone_alerts = standalone.run_all(live)

        assert [alert_key(a) for a in gateway_alerts] == \
            [alert_key(a) for a in standalone_alerts]

    def test_unknown_process_tenant_raises(self):
        with Gateway(two_tenant_spec()) as gateway:
            gateway.fit(corpus("hist"))
            with pytest.raises(KeyError, match="nope"):
                gateway.process({"nope": corpus("live")})

    def test_tenant_alert_summary_names_the_tenant(self):
        with Gateway(two_tenant_spec()) as gateway:
            gateway.fit(corpus("hist"))
            alerts = gateway.process({"acme": corpus("live",
                                                     anomalous=(1,))})
        assert len(alerts) == 1
        assert isinstance(alerts[0], TenantAlert)
        assert alerts[0].summary().startswith("[acme]")


class TestServing:
    def _sources(self, per_tenant):
        return {name: [AsyncSourceAdapter(records, name="mem")]
                for name, records in per_tenant.items()}

    def test_serve_tags_alerts_and_isolates_state(self):
        with Gateway(two_tenant_spec()) as gateway:
            gateway.fit(corpus("hist"))
            service = gateway.serve(sources=self._sources({
                "acme": corpus("live", anomalous=(1,)),
                "globex": corpus("live"),
            }))
            alerts = asyncio.run(service.run())
        assert [(a.tenant, a.alert.report.session_id) for a in alerts] == \
            [("acme", "live-1")]
        stats = service.stats()
        assert stats["acme"].records_processed == len(
            corpus("live", anomalous=(1,)))
        assert stats["globex"].alerts == 0
        assert "tenant acme" in service.summary()

    def test_on_alert_sees_tagged_alerts_in_order(self):
        seen = []
        with Gateway(two_tenant_spec()) as gateway:
            gateway.fit(corpus("hist"))
            service = gateway.serve(
                sources=self._sources({"acme": corpus("live", anomalous=(0,)),
                                       "globex": corpus("live")}),
                on_alert=seen.append,
            )
            alerts = asyncio.run(service.run())
        assert seen == alerts

    def test_shared_checkpoint_namespaces_per_tenant(self, tmp_path):
        """Two tenants tailing a source with the same name commit to
        disjoint keys of one store."""
        path = tmp_path / "ckpt.json"
        with Gateway(two_tenant_spec()) as gateway:
            gateway.fit(corpus("hist"))
            service = gateway.serve(
                sources=self._sources({"acme": corpus("live"),
                                       "globex": corpus("live", sessions=3)}),
                checkpoint=path,
            )
            asyncio.run(service.run())
        store = CheckpointStore(path)
        assert store.get("acme/mem") == len(corpus("live"))
        assert store.get("globex/mem") == len(corpus("live", sessions=3))
        assert store.get("mem") == 0  # no un-namespaced key

    def test_tenant_checkpoint_override_gets_its_own_store(self, tmp_path):
        shared, private = tmp_path / "shared.json", tmp_path / "acme.json"
        spec = two_tenant_spec(checkpoint=str(shared))
        spec = spec.replace(tenants={
            "acme": {"checkpoint": str(private)}, "globex": {},
        })
        with Gateway(spec) as gateway:
            gateway.fit(corpus("hist"))
            service = gateway.serve(sources=self._sources({
                "acme": corpus("live"), "globex": corpus("live"),
            }))
            asyncio.run(service.run())
        assert CheckpointStore(private).get("acme/mem") == len(corpus("live"))
        assert CheckpointStore(shared).get("globex/mem") == len(corpus("live"))
        assert CheckpointStore(shared).get("acme/mem") == 0

    def test_serve_requires_sources_per_tenant(self):
        with Gateway(two_tenant_spec()) as gateway:
            gateway.fit(corpus("hist"))
            with pytest.raises(ValueError, match="acme"):
                gateway.serve()

    def test_single_run_only(self):
        with Gateway(two_tenant_spec()) as gateway:
            gateway.fit(corpus("hist"))
            service = gateway.serve(sources=self._sources({
                "acme": corpus("live"), "globex": corpus("live"),
            }))
            asyncio.run(service.run())
            with pytest.raises(RuntimeError, match="single run"):
                asyncio.run(service.run())

    def test_one_tenant_failure_stops_all_without_losing_reads(self):
        """A dying tenant takes the gateway down cleanly: the error
        propagates, and healthy tenants drain what they read."""

        class Exploding(AsyncSourceAdapter):
            async def items(self, start_offset=0):
                raise RuntimeError("tenant backend on fire")
                yield  # pragma: no cover - makes this an async generator

        healthy = corpus("live")
        with Gateway(two_tenant_spec()) as gateway:
            gateway.fit(corpus("hist"))
            service = gateway.serve(sources={
                "acme": [Exploding(healthy, name="boom")],
                "globex": [AsyncSourceAdapter(healthy, name="mem")],
            })
            with pytest.raises(RuntimeError, match="on fire"):
                asyncio.run(service.run())
        assert service.stats()["globex"].records_processed == len(healthy)


class TestSpecValidation:
    def test_bad_tenant_knob_reports_prefixed(self):
        with pytest.raises(ConfigError) as failure:
            PipelineSpec.from_dict({
                "tenants": {"acme": {"credits": 0}},
            })
        assert any("tenants.acme" in line and "credits" in line
                   for line in failure.value.errors)

    def test_unknown_tenant_field_reports(self):
        with pytest.raises(ConfigError) as failure:
            PipelineSpec.from_dict({"tenants": {"acme": {"wat": 1}}})
        assert any("tenants.acme" in line and "wat" in line
                   for line in failure.value.errors)

    def test_nested_tenants_rejected(self):
        with pytest.raises(ConfigError) as failure:
            PipelineSpec.from_dict({
                "tenants": {"acme": {"tenants": {"sub": {}}}},
            })
        assert any("cannot nest" in line for line in failure.value.errors)

    def test_bad_tenant_name_rejected(self):
        with pytest.raises(ConfigError) as failure:
            PipelineSpec.from_dict({"tenants": {"no/slash": {}}})
        assert any("no/slash" in line for line in failure.value.errors)

    def test_tenant_spec_applies_overrides(self):
        spec = two_tenant_spec()
        spec = spec.replace(tenants={"acme": {"credits": 7}, "globex": {}})
        assert spec.tenant_spec("acme").credits == 7
        assert spec.tenant_spec("acme").tenants == {}
        assert spec.tenant_spec("globex").credits == spec.credits
        with pytest.raises(KeyError, match="acme"):
            spec.tenant_spec("nope")


def test_gateway_service_type_is_exported():
    assert GatewayService is not None
