"""Unit tests for the pluggable shard executor layer.

The executors promise three things the sharded runtimes build on:
results come back in task order regardless of completion order, the
``shares_memory`` contract matches where tasks actually ran, and
executors behave as process-wide resources (deepcopy shares, pickling
rehydrates by name).
"""

from __future__ import annotations

import copy
import os
import pickle
import threading
import time

import pytest

from repro.core.config import MoniLogConfig
from repro.core.executors import (
    EXECUTOR_ENV,
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ThreadedExecutor,
    default_executor_name,
    resolve_executor,
)


def _square(value: int) -> int:
    """Module-level so the process executor can pickle a reference."""
    return value * value


def _pid(_task) -> int:
    return os.getpid()


@pytest.fixture(params=["serial", "thread", "process"])
def executor(request):
    instance = resolve_executor(request.param)
    yield instance
    instance.close()


class TestMapContract:
    def test_results_in_task_order(self, executor):
        assert executor.map(_square, list(range(12))) == [
            value * value for value in range(12)
        ]

    def test_empty_and_single_task(self, executor):
        assert executor.map(_square, []) == []
        assert executor.map(_square, [7]) == [49]

    def test_thread_map_preserves_order_under_skewed_durations(self):
        executor = ThreadedExecutor(max_workers=4)

        def slow_first(value: int) -> int:
            # The first task sleeps longest; ordered results prove the
            # executor reorders by task, not by completion.
            time.sleep(0.05 if value == 0 else 0.0)
            return value

        try:
            assert executor.map(slow_first, [0, 1, 2, 3]) == [0, 1, 2, 3]
        finally:
            executor.close()

    def test_thread_tasks_leave_the_calling_thread(self):
        executor = ThreadedExecutor(max_workers=2)
        try:
            threads = set(executor.map(
                lambda _: threading.current_thread().name, [0, 1, 2]
            ))
            assert any(name.startswith("monilog-shard") for name in threads)
        finally:
            executor.close()

    def test_process_tasks_leave_the_calling_process(self):
        executor = ProcessExecutor(max_workers=2)
        try:
            pids = set(executor.map(_pid, [0, 1, 2, 3]))
            assert os.getpid() not in pids or len(pids) > 1
        finally:
            executor.close()


class TestSharedMemoryContract:
    def test_in_memory_executors_mutate_in_place(self):
        for name in ("serial", "thread"):
            executor = resolve_executor(name)
            assert executor.shares_memory
            box = {"count": 0}

            def bump(_):
                box["count"] += 1
                return box

            try:
                results = executor.map(bump, [0, 1, 2])
            finally:
                executor.close()
            assert box["count"] == 3
            assert all(result is box for result in results)

    def test_process_executor_does_not_mutate_in_place(self):
        executor = ProcessExecutor(max_workers=2)
        assert not executor.shares_memory
        try:
            values = executor.map(_square, [2, 3])
        finally:
            executor.close()
        assert values == [4, 9]


class TestResourceSemantics:
    def test_deepcopy_shares_the_instance(self):
        for name in EXECUTORS:
            executor = resolve_executor(name)
            assert copy.deepcopy(executor) is executor

    def test_pickle_rehydrates_by_name(self):
        for name in EXECUTORS:
            clone = pickle.loads(pickle.dumps(resolve_executor(name)))
            assert isinstance(clone, ShardExecutor)
            assert clone.name == name

    def test_close_is_idempotent_and_pool_rebuilds(self):
        executor = ThreadedExecutor(max_workers=2)
        assert executor.map(_square, [1, 2]) == [1, 4]
        executor.close()
        executor.close()
        assert executor.map(_square, [3, 4]) == [9, 16]
        executor.close()

    def test_worker_count_validation(self):
        with pytest.raises(ValueError, match="max_workers"):
            ThreadedExecutor(max_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            ProcessExecutor(max_workers=0)


class TestResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert default_executor_name() == "serial"
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_environment_variable_selects_default(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread")
        assert default_executor_name() == "thread"
        resolved = resolve_executor(None)
        assert isinstance(resolved, ThreadedExecutor)
        resolved.close()

    def test_environment_typo_fails_loudly_naming_the_variable(
        self, monkeypatch
    ):
        monkeypatch.setenv(EXECUTOR_ENV, "treads")
        with pytest.raises(ValueError, match="MONILOG_EXECUTOR"):
            default_executor_name()
        with pytest.raises(ValueError, match="MONILOG_EXECUTOR"):
            MoniLogConfig()

    def test_environment_typo_is_a_clean_cli_error(self, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv(EXECUTOR_ENV, "treads")
        with pytest.raises(SystemExit, match="MONILOG_EXECUTOR"):
            main(["parse", "--input", "whatever.log"])

    def test_instance_passes_through(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu")

    def test_config_validates_and_defaults_from_environment(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert MoniLogConfig().executor == "serial"
        monkeypatch.setenv(EXECUTOR_ENV, "process")
        assert MoniLogConfig().executor == "process"
        with pytest.raises(ValueError, match="executor"):
            MoniLogConfig(executor="gpu")
