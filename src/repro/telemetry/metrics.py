"""Lock-cheap metrics primitives: counters, gauges, histograms, meters.

MoniLog is pitched as an *automated* monitoring system, which starts
with the system being able to watch itself: every stage of the
pipeline — parsing, detection, sessionizing, ingestion — reports what
it is doing through the one :class:`MetricsRegistry` the pipeline
owns.  The design constraints, in order:

* **Hot-path cheap.**  An update is one small-lock critical section
  (a few arithmetic ops); no allocation after the first touch of a
  label set, no string formatting, no I/O.  Exposition cost is paid by
  the scraper, not the stream.
* **Pull where possible.**  Signals that already live somewhere (shard
  loads, queue depth, open sessions) are *collected* at snapshot time
  via registered collector callbacks instead of being pushed per
  event — zero steady-state overhead.
* **Explicit clocks.**  Nothing here reads a wall clock on its own:
  latency observations arrive as values, and :class:`RateMeter` takes
  ``now`` on every call, so tests drive time deterministically.
* **Thread-safe by construction.**  Updates may arrive concurrently
  from shard executor threads and the ingestion loop; each metric
  family serializes its own updates behind one ``threading.Lock``,
  and a snapshot sees a consistent per-family state.

Exposition comes in two formats: :meth:`MetricsRegistry.snapshot`
returns a JSON-friendly dict (the ``Pipeline.telemetry()`` /
``repro stats`` surface) and :meth:`MetricsRegistry.render_prometheus`
renders the Prometheus text format the stdlib HTTP endpoint
(:mod:`repro.telemetry.server`) serves.

Multi-tenant serving shares one registry across N per-tenant
pipelines: each pipeline's telemetry declares its families through a
:class:`ScopedRegistry` view, which appends a fixed label set (e.g.
``tenant="acme"``) to every declaration and binds every update to
those label values — so instrumentation written against an unlabeled
registry works unchanged, and one ``/metrics`` endpoint serves every
tenant with a ``tenant`` label on each sample.
:func:`filter_snapshot` / :func:`filter_prometheus` cut either
exposition format down to one label value (``repro stats --tenant``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable, Sequence

#: Default latency buckets (seconds): micro-batch work spans ~100us
#: (tiny cache-hot batches) to seconds (cold process-pool fits).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default size buckets (records per batch): powers of two around the
#: micro-batch sizes the autoscaler ranges over.
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
)


def _validate_name(name: str) -> str:
    if not name or not all(
        ch.isalnum() or ch == "_" for ch in name
    ) or name[0].isdigit():
        raise ValueError(
            f"metric name must be [a-zA-Z_][a-zA-Z0-9_]*, got {name!r}"
        )
    return name


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


#: Quantiles estimated for every histogram snapshot (JSON surface
#: only; the Prometheus exposition stays raw buckets — PromQL's
#: ``histogram_quantile`` owns estimation there).
ESTIMATED_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


def _estimate_quantile(bounds: Sequence[float], buckets: Sequence[int],
                       count: int, quantile: float) -> float | None:
    """Estimate one quantile from cumulative-free bucket counts.

    The standard linear-interpolation-within-bucket estimator —
    the same model PromQL's ``histogram_quantile`` applies to the
    exposition, computed here so the JSON surface (``repro stats``,
    ``/telemetry``) carries ready percentiles.  Observations landing
    in the ``+Inf`` bucket clamp to the largest finite bound (their
    true magnitude is unknowable from bucket counts alone); an empty
    histogram has no quantiles (``None``).
    """
    if count == 0:
        return None
    rank = quantile * count
    cumulative = 0
    for index, bucket in enumerate(buckets[:-1]):
        previous = cumulative
        cumulative += bucket
        if cumulative >= rank:
            upper = bounds[index]
            lower = bounds[index - 1] if index > 0 else min(0.0, upper)
            if bucket == 0:
                return upper
            return lower + (upper - lower) * (rank - previous) / bucket
    return bounds[-1]


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if as_int == value else repr(value)


class _Family:
    """Shared machinery of one named metric and its labeled children.

    A family with no declared label names has exactly one anonymous
    child, reached by calling the update methods on the family object
    itself.  With label names, :meth:`labels` resolves (and lazily
    creates) the child for one label-value combination.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = ()) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.label_names:
            self._children[()] = self._new_child()

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels: object):
        """The child for one label-value combination (created lazily)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{list(self.label_names)}, got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            return child

    def _only_child(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labeled by "
                f"{list(self.label_names)}; call .labels(...) first"
            )
        return self._children[()]

    def _sorted_children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def _label_text(self, key: tuple[str, ...],
                    extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.label_names, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    # -- exposition --------------------------------------------------------------

    def snapshot_values(self) -> list[dict]:
        out = []
        for key, child in self._sorted_children():
            entry: dict = {}
            if self.label_names:
                entry["labels"] = dict(zip(self.label_names, key))
            entry.update(child.snapshot())
            out.append(entry)
        return out

    def render(self) -> Iterable[str]:
        yield f"# HELP {self.name} {self.help}"
        yield f"# TYPE {self.name} {self.kind}"
        for key, child in self._sorted_children():
            yield from child.render(self.name, self._label_text(key))


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Pull-collector hook: sync the total to an external counter.

        Monotonicity is the *source's* contract; collectors use this to
        mirror counters the runtime already keeps (stats objects, queue
        totals) without double-counting.
        """
        with self._lock:
            self._value = float(value)

    def snapshot(self) -> dict:
        return {"value": self._value}

    def render(self, name, label_text):
        yield f"{name}{label_text} {_format_value(self._value)}"


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def snapshot(self) -> dict:
        return {"value": self._value}

    def render(self, name, label_text):
        yield f"{name}{label_text} {_format_value(self._value)}"


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_buckets", "_sum", "_count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._buckets = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._buckets[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict:
        with self._lock:
            buckets = list(self._buckets)
            total, count = self._sum, self._count
        cumulative = 0
        rendered = {}
        for bound, bucket in zip(self._bounds, buckets):
            cumulative += bucket
            rendered[_format_value(bound)] = cumulative
        rendered["+Inf"] = count
        quantiles = {
            f"p{round(quantile * 100)}": _estimate_quantile(
                self._bounds, buckets, count, quantile)
            for quantile in ESTIMATED_QUANTILES
        }
        return {"count": count, "sum": total, "buckets": rendered,
                "quantiles": quantiles}

    def render(self, name, label_text):
        snap = self.snapshot()
        # Append the ``le`` label to whatever key labels are in place.
        base = label_text[1:-1] if label_text else ""
        for bound, cumulative in snap["buckets"].items():
            labels = ",".join(
                part for part in (base, f'le="{bound}"') if part
            )
            yield f"{name}_bucket{{{labels}}} {cumulative}"
        yield f"{name}_sum{label_text} {_format_value(snap['sum'])}"
        yield f"{name}_count{label_text} {snap['count']}"


class Counter(_Family):
    """A monotonically-increasing count (optionally labeled)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._only_child().inc(amount)

    def set_total(self, value: float) -> None:
        self._only_child().set_total(value)

    @property
    def value(self) -> float:
        return self._only_child().value


class Gauge(_Family):
    """A value that goes up and down (optionally labeled)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._only_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._only_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only_child().dec(amount)

    @property
    def value(self) -> float:
        return self._only_child().value


class Histogram(_Family):
    """A distribution over fixed, pre-declared bucket boundaries.

    Boundaries are **upper bounds, inclusive**, matching Prometheus
    ``le`` semantics; an implicit ``+Inf`` bucket catches the rest.
    Fixed buckets keep ``observe`` O(log buckets) with zero allocation
    — the registry never resizes or rebalances under load.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 label_names: Sequence[str] = ()) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {buckets}"
            )
        self._bounds = bounds
        super().__init__(name, help, label_names)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self._bounds)

    def observe(self, value: float) -> None:
        self._only_child().observe(value)

    @property
    def count(self) -> int:
        return self._only_child().count

    @property
    def sum(self) -> float:
        return self._only_child().sum


class BoundFamily:
    """A labeled family with some label values pre-bound.

    Update methods (``inc``/``set``/``observe``/...) land on the child
    for the bound values; :meth:`labels` merges the bound values with
    the caller's, so instrumentation that labels explicitly (per-shard
    gauges, per-source counters) composes with the scope transparently.
    Only the methods the underlying family kind supports exist on its
    children — calling ``observe`` on a bound counter fails just as it
    would on the family itself.
    """

    def __init__(self, family: _Family, bound: dict[str, str]) -> None:
        self._family = family
        self._bound = dict(bound)

    @property
    def name(self) -> str:
        return self._family.name

    @property
    def kind(self) -> str:
        return self._family.kind

    def labels(self, **labels: object):
        return self._family.labels(**{**self._bound, **labels})

    def _child(self):
        return self._family.labels(**self._bound)

    def inc(self, amount: float = 1.0) -> None:
        self._child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._child().dec(amount)

    def set(self, value: float) -> None:
        self._child().set(value)

    def set_total(self, value: float) -> None:
        self._child().set_total(value)

    def observe(self, value: float) -> None:
        self._child().observe(value)

    @property
    def value(self) -> float:
        return self._child().value

    @property
    def count(self) -> int:
        return self._child().count

    @property
    def sum(self) -> float:
        return self._child().sum


class RateMeter:
    """Arrival-rate estimate over a short sliding window, explicit-clock.

    Two half-open buckets of width ``window`` seconds: the finished
    previous bucket and the filling current one.  The rate blends the
    previous bucket's count by the fraction of it still inside the
    lookback window — the standard smoothed-sliding-window estimator:
    O(1) memory, no timestamps stored, deterministic under a fake
    clock, and it decays to zero when the source goes quiet (calling
    :meth:`rate` alone advances the window).

    Both :meth:`mark` and :meth:`rate` roll the window, so both are
    mutations: the lock keeps producer marks (the ingestion loop) and
    scrape-time reads (the HTTP endpoint's collector thread) from
    interleaving mid-roll.
    """

    def __init__(self, window: float = 5.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = window
        self._lock = threading.Lock()
        self._start: float | None = None
        self._current = 0
        self._previous = 0
        self.total = 0

    def _roll(self, now: float) -> None:
        if self._start is None:
            self._start = now
            return
        elapsed = now - self._start
        while elapsed >= self.window:
            self._previous = self._current
            self._current = 0
            self._start += self.window
            elapsed -= self.window
            if elapsed >= self.window:
                # More than one whole window idle: history is stale.
                self._previous = 0
                self._start = now - (elapsed % self.window)
                break

    def mark(self, count: int, now: float) -> None:
        """Record ``count`` arrivals at time ``now``."""
        with self._lock:
            self._roll(now)
            self._current += count
            self.total += count

    def rate(self, now: float) -> float:
        """Arrivals per second over the trailing ~``window`` seconds."""
        with self._lock:
            self._roll(now)
            if self._start is None:
                return 0.0
            fraction = (now - self._start) / self.window
            blended = self._previous * (1.0 - fraction) + self._current
            return max(0.0, blended / self.window)


class MetricsRegistry:
    """One namespace of metrics plus pull-collectors for exposition.

    ``counter``/``gauge``/``histogram`` create (or return the existing)
    family for a name — re-declaration with a different type or label
    set is an error, so two subsystems cannot silently fight over one
    name.  ``collect(fn)`` registers a callback run before every
    snapshot/render; collectors refresh gauges and mirrored counters
    from live runtime state (queue depths, shard loads) so the hot
    path never pays for them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], None]] = []
        #: Optional comment block emitted at the top of the Prometheus
        #: exposition (lines are ``# ``-prefixed automatically).  The
        #: gateway uses it to document the tenant label convention on
        #: the endpoint itself.
        self.preamble: str | None = None

    # -- declaration -------------------------------------------------------------

    def _declare(self, factory, name: str, cls: type,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] | None = None) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                # A re-declaration must agree on everything observable
                # — type, label set, bucket bounds — or two subsystems
                # are fighting over one name and the loser's updates
                # would fail (or land in buckets it never declared) at
                # update time, far from the conflicting declaration.
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already declared as "
                        f"{existing.kind}, cannot redeclare as "
                        f"{cls.kind}"
                    )
                if existing.label_names != tuple(label_names):
                    raise ValueError(
                        f"metric {name!r} already declared with labels "
                        f"{list(existing.label_names)}, cannot redeclare "
                        f"with {list(label_names)}"
                    )
                if buckets is not None and existing._bounds != tuple(
                        float(bound) for bound in buckets):
                    raise ValueError(
                        f"metric {name!r} already declared with buckets "
                        f"{existing._bounds}, cannot redeclare with "
                        f"{tuple(buckets)}"
                    )
                return existing
            family = factory()
            self._families[name] = family
            return family

    def counter(self, name: str, help: str,
                label_names: Sequence[str] = ()) -> Counter:
        return self._declare(
            lambda: Counter(name, help, label_names), name, Counter,
            label_names)

    def gauge(self, name: str, help: str,
              label_names: Sequence[str] = ()) -> Gauge:
        return self._declare(
            lambda: Gauge(name, help, label_names), name, Gauge,
            label_names)

    def histogram(self, name: str, help: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  label_names: Sequence[str] = ()) -> Histogram:
        return self._declare(
            lambda: Histogram(name, help, buckets, label_names),
            name, Histogram, label_names, buckets)

    def collect(self, collector: Callable[[], None]) -> None:
        """Register a pull-collector run before every exposition."""
        with self._lock:
            self._collectors.append(collector)

    # -- exposition --------------------------------------------------------------

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> dict:
        """A JSON-friendly dict of every metric's current state."""
        self._run_collectors()
        out: dict = {}
        for family in self.families():
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": family.snapshot_values(),
            }
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        self._run_collectors()
        lines: list[str] = []
        if self.preamble:
            lines.extend(f"# {line}" if line else "#"
                         for line in self.preamble.splitlines())
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + "\n"


class ScopedRegistry:
    """A label-scoped view of a shared :class:`MetricsRegistry`.

    Every family declared through the view carries extra fixed label
    names appended to its declaration, and every update made through
    the returned :class:`BoundFamily` lands on the child bound to the
    view's values.  The gateway gives each tenant's
    :class:`~repro.telemetry.instrument.PipelineTelemetry` a
    ``ScopedRegistry(shared, tenant=name)`` so N pipelines share one
    registry (and one ``/metrics`` endpoint) without a line of their
    instrumentation changing.

    Exposition passes through to the base registry — a scoped view is
    a declaration/update scope, not a filter (use
    :func:`filter_snapshot` / :func:`filter_prometheus` to cut an
    exposition down to one label value).
    """

    def __init__(self, base: MetricsRegistry, **labels: object) -> None:
        if not labels:
            raise ValueError("ScopedRegistry needs at least one fixed label")
        self.base = base
        self.scope = {name: str(value) for name, value in labels.items()}

    def _extended(self, label_names: Sequence[str]) -> tuple[str, ...]:
        clash = set(label_names) & set(self.scope)
        if clash:
            raise ValueError(
                f"label names {sorted(clash)} are fixed by this scope")
        return tuple(label_names) + tuple(self.scope)

    def counter(self, name: str, help: str,
                label_names: Sequence[str] = ()) -> BoundFamily:
        return BoundFamily(
            self.base.counter(name, help, self._extended(label_names)),
            self.scope)

    def gauge(self, name: str, help: str,
              label_names: Sequence[str] = ()) -> BoundFamily:
        return BoundFamily(
            self.base.gauge(name, help, self._extended(label_names)),
            self.scope)

    def histogram(self, name: str, help: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  label_names: Sequence[str] = ()) -> BoundFamily:
        return BoundFamily(
            self.base.histogram(name, help, buckets,
                                self._extended(label_names)),
            self.scope)

    def collect(self, collector: Callable[[], None]) -> None:
        self.base.collect(collector)

    def snapshot(self) -> dict:
        return self.base.snapshot()

    def render_prometheus(self) -> str:
        return self.base.render_prometheus()


def filter_snapshot(metrics: dict, **labels: object) -> dict:
    """Cut a :meth:`MetricsRegistry.snapshot` down to one label value.

    Keeps, per family, only the value entries whose labels include
    every ``name=value`` pair given; families left with no entries are
    dropped entirely.
    """
    wanted = {name: str(value) for name, value in labels.items()}
    out: dict = {}
    for name, family in metrics.items():
        values = [
            entry for entry in family.get("values", [])
            if all(entry.get("labels", {}).get(key) == value
                   for key, value in wanted.items())
        ]
        if values:
            out[name] = {**family, "values": values}
    return out


def filter_prometheus(text: str, **labels: object) -> str:
    """Cut a Prometheus exposition down to one label value.

    Keeps sample lines carrying every ``name="value"`` pair given,
    along with their family's ``# HELP``/``# TYPE`` header; families
    with no matching samples (and free-standing comments) are dropped.
    """
    needles = [
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    ]
    out: list[str] = []
    header: list[str] = []
    samples: list[str] = []

    def _flush() -> None:
        if samples:
            out.extend(header)
            out.extend(samples)
        header.clear()
        samples.clear()

    for line in text.splitlines():
        if line.startswith("# HELP"):
            _flush()
            header.append(line)
        elif line.startswith("#"):
            if header:
                header.append(line)
        elif line.strip():
            if all(needle in line for needle in needles):
                samples.append(line)
    _flush()
    return "\n".join(out) + "\n" if out else ""
