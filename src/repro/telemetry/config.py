"""Declarative telemetry configuration (the spec's ``[telemetry]`` table).

Registered in the component registry under kind ``"telemetry"`` so
:class:`~repro.api.spec.PipelineSpec` validates the table's options
against this constructor signature exactly the way it validates parser
or detector options — unknown knobs fail up front, field-named and
aggregated, and ``type = "..."`` selects an implementation by name
(there is one today; the seam is the point).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import register_component
from repro.core.validation import Validator


@register_component("telemetry", "standard")
@dataclass
class TelemetryConfig:
    """Knobs of the runtime-telemetry subsystem.

    Attributes:
        enabled: master switch.  Defaults on — declaring a
            ``[telemetry]`` table *is* the opt-in; set
            ``enabled = false`` to keep the table (ports, windows)
            while running dark.
        metrics_port: serve Prometheus text + JSON over HTTP on this
            port for the lifetime of the pipeline (``0`` binds a free
            ephemeral port; ``None`` serves nothing — snapshots remain
            available via ``Pipeline.telemetry()``).
        rate_window: sliding-window width, in seconds, of the
            per-source arrival-rate meters.
        tracing: record sampled end-to-end spans and per-alert
            provenance (:mod:`repro.telemetry.tracing`).  Off by
            default — tracing is strictly pay-for-what-you-sample and
            this is the master switch for that cost.
        trace_sample_rate: fraction of batches/records to trace,
            ``0.0..1.0``.  Sampling is deterministic (every
            ``round(1/rate)``-th candidate); alert provenance is
            captured for every alert regardless of the rate.
        trace_buffer: capacity (spans) of the in-process trace ring
            buffer; oldest spans are evicted first.
    """

    enabled: bool = True
    metrics_port: int | None = None
    rate_window: float = 5.0
    tracing: bool = False
    trace_sample_rate: float = 1.0
    trace_buffer: int = 2048

    def __post_init__(self) -> None:
        check = Validator(type(self).__name__)
        if self.metrics_port is not None:
            # A whole int, not merely int()-able: 9100.5 must fail
            # here with the field named, not at socket bind time.
            check.require(
                isinstance(self.metrics_port, int)
                and not isinstance(self.metrics_port, bool)
                and 0 <= self.metrics_port <= 65535,
                "metrics_port",
                f"must be a TCP port (0 = ephemeral), got "
                f"{self.metrics_port!r}",
            )
        check.require(
            isinstance(self.rate_window, (int, float))
            and not isinstance(self.rate_window, bool)
            and self.rate_window > 0,
            "rate_window", f"must be > 0, got {self.rate_window!r}")
        check.require(
            isinstance(self.tracing, bool),
            "tracing", f"must be a bool, got {self.tracing!r}")
        check.require(
            isinstance(self.trace_sample_rate, (int, float))
            and not isinstance(self.trace_sample_rate, bool)
            and 0.0 <= self.trace_sample_rate <= 1.0,
            "trace_sample_rate",
            f"must be in 0.0..1.0, got {self.trace_sample_rate!r}")
        check.require(
            isinstance(self.trace_buffer, int)
            and not isinstance(self.trace_buffer, bool)
            and self.trace_buffer >= 1,
            "trace_buffer",
            f"must be a whole number >= 1, got {self.trace_buffer!r}")
        check.done()
