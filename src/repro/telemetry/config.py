"""Declarative telemetry configuration (the spec's ``[telemetry]`` table).

Registered in the component registry under kind ``"telemetry"`` so
:class:`~repro.api.spec.PipelineSpec` validates the table's options
against this constructor signature exactly the way it validates parser
or detector options — unknown knobs fail up front, field-named and
aggregated, and ``type = "..."`` selects an implementation by name
(there is one today; the seam is the point).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import register_component
from repro.core.validation import Validator


@register_component("telemetry", "standard")
@dataclass
class TelemetryConfig:
    """Knobs of the runtime-telemetry subsystem.

    Attributes:
        enabled: master switch.  Defaults on — declaring a
            ``[telemetry]`` table *is* the opt-in; set
            ``enabled = false`` to keep the table (ports, windows)
            while running dark.
        metrics_port: serve Prometheus text + JSON over HTTP on this
            port for the lifetime of the pipeline (``0`` binds a free
            ephemeral port; ``None`` serves nothing — snapshots remain
            available via ``Pipeline.telemetry()``).
        rate_window: sliding-window width, in seconds, of the
            per-source arrival-rate meters.
        tracing: record sampled end-to-end spans and per-alert
            provenance (:mod:`repro.telemetry.tracing`).  Off by
            default — tracing is strictly pay-for-what-you-sample and
            this is the master switch for that cost.
        trace_sample_rate: fraction of batches/records to trace,
            ``0.0..1.0``.  Sampling is deterministic (every
            ``round(1/rate)``-th candidate); alert provenance is
            captured for every alert regardless of the rate.
        trace_buffer: capacity (spans) of the in-process trace ring
            buffer; oldest spans are evicted first.
        profile: run the continuous sampling profiler
            (:mod:`repro.telemetry.profiling`) for the pipeline's
            lifetime.  Off by default — the profiler is strictly
            pay-for-what-you-use and this is the master switch for
            that cost; alerts are byte-identical either way.
        profile_hz: samples per second the profiler takes
            (wall-clock sampling; ~100 Hz costs well under 5% of
            throughput at the default).
        profile_stacks: bound on distinct collapsed stacks the
            profiler retains; the minimum-count entry is evicted
            (and counted) when a new stack arrives at capacity.
    """

    enabled: bool = True
    metrics_port: int | None = None
    rate_window: float = 5.0
    tracing: bool = False
    trace_sample_rate: float = 1.0
    trace_buffer: int = 2048
    profile: bool = False
    profile_hz: float = 100.0
    profile_stacks: int = 2048

    def __post_init__(self) -> None:
        check = Validator(type(self).__name__)
        if self.metrics_port is not None:
            # A whole int, not merely int()-able: 9100.5 must fail
            # here with the field named, not at socket bind time.
            check.require(
                isinstance(self.metrics_port, int)
                and not isinstance(self.metrics_port, bool)
                and 0 <= self.metrics_port <= 65535,
                "metrics_port",
                f"must be a TCP port (0 = ephemeral), got "
                f"{self.metrics_port!r}",
            )
        check.require(
            isinstance(self.rate_window, (int, float))
            and not isinstance(self.rate_window, bool)
            and self.rate_window > 0,
            "rate_window", f"must be > 0, got {self.rate_window!r}")
        check.require(
            isinstance(self.tracing, bool),
            "tracing", f"must be a bool, got {self.tracing!r}")
        check.require(
            isinstance(self.trace_sample_rate, (int, float))
            and not isinstance(self.trace_sample_rate, bool)
            and 0.0 <= self.trace_sample_rate <= 1.0,
            "trace_sample_rate",
            f"must be in 0.0..1.0, got {self.trace_sample_rate!r}")
        check.require(
            isinstance(self.trace_buffer, int)
            and not isinstance(self.trace_buffer, bool)
            and self.trace_buffer >= 1,
            "trace_buffer",
            f"must be a whole number >= 1, got {self.trace_buffer!r}")
        check.require(
            isinstance(self.profile, bool),
            "profile", f"must be a bool, got {self.profile!r}")
        check.require(
            isinstance(self.profile_hz, (int, float))
            and not isinstance(self.profile_hz, bool)
            and 0 < self.profile_hz <= 10_000,
            "profile_hz",
            f"must be in (0, 10000] samples/second, got "
            f"{self.profile_hz!r}")
        check.require(
            isinstance(self.profile_stacks, int)
            and not isinstance(self.profile_stacks, bool)
            and self.profile_stacks >= 1,
            "profile_stacks",
            f"must be a whole number >= 1, got {self.profile_stacks!r}")
        check.done()
