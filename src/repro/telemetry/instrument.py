"""The bridge between pipeline internals and the metrics registry.

:class:`PipelineTelemetry` owns one :class:`MetricsRegistry` and knows
the metric catalog (see ``docs/telemetry.md``); the runtime objects
never touch metric names.  Two integration styles, chosen per signal:

* **push hooks** (``observe_*``) for the only things that must be
  measured in-band — stage latencies and batch sizes.  The pipeline
  calls them *only when telemetry is enabled*; the disabled path costs
  one ``is None`` check per batch.
* **pull collectors** (``attach_*``) for everything the runtime
  already counts — :class:`~repro.core.pipeline.PipelineStats`,
  :attr:`DistributedDrain.shard_loads`, the
  :class:`~repro.core.streaming.BatchHandoff` depth signal, ingestion
  meters, credit-gate accounting, autoscale knob positions.  These are
  read at exposition time only, so the hot path never pays for them.

The instrumentation contract is **byte-transparency**: nothing in this
module mutates pipeline state, so alerts are identical with telemetry
on or off, under every executor (``tests/test_telemetry_neutrality``
holds the system to it).
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)

#: Advisories kept in the snapshot (a scraped ring, not a log).
_MAX_ADVISORIES = 32


class PipelineTelemetry:
    """One pipeline's metric surface: registry + catalog + collectors.

    Args:
        config: the ``[telemetry]`` table; defaults to an enabled
            :class:`TelemetryConfig`.
        clock: the latency clock for the push hooks' callers
            (``time.perf_counter`` in production; tests inject a fake).
        registry: where the catalog's families are declared.  Defaults
            to a fresh private :class:`MetricsRegistry`; the gateway
            passes a :class:`~repro.telemetry.metrics.ScopedRegistry`
            view so N tenants' telemetry lands tenant-labeled in one
            shared registry.
    """

    def __init__(self, config: TelemetryConfig | None = None,
                 clock=time.perf_counter, *, registry=None) -> None:
        self.config = config or TelemetryConfig()
        self.clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self._advisories: deque[str] = deque(maxlen=_MAX_ADVISORIES)
        self._advisory_lock = threading.Lock()
        # Collector targets.  Each attach_* registers its collector
        # once and *re-points* these on later calls: the telemetry
        # object is pipeline-lifetime while services/hand-offs are
        # single-run, so per-run attachment must not accumulate
        # collectors (every scrape would replay dead services) or pin
        # finished runs in memory.
        self._pipeline = None
        self._handoff = None
        self._ingest = None
        self._autoscale = None
        self._tracer = None
        self._profiler = None
        registry = self.registry

        # -- stage latencies and batch sizes (push) ----------------------------
        self.parse_seconds = registry.histogram(
            "monilog_parse_seconds",
            "Stage-1 parse latency per micro-batch (seconds)",
            DEFAULT_LATENCY_BUCKETS)
        self.parse_batch_records = registry.histogram(
            "monilog_parse_batch_records",
            "Records per parse micro-batch", DEFAULT_SIZE_BUCKETS)
        self.detect_seconds = registry.histogram(
            "monilog_detect_seconds",
            "Stage-2 detect+classify latency per scoring call (seconds)",
            DEFAULT_LATENCY_BUCKETS)
        self.detect_batch_sessions = registry.histogram(
            "monilog_detect_batch_sessions",
            "Closed windows per scoring call", DEFAULT_SIZE_BUCKETS)
        self.sessionize_seconds = registry.histogram(
            "monilog_sessionize_seconds",
            "Streaming sessionizer latency per push loop (seconds)",
            DEFAULT_LATENCY_BUCKETS)
        self.ingest_batch_records = registry.histogram(
            "monilog_ingest_batch_records",
            "Records per ingestion micro-batch handed to the pipeline",
            DEFAULT_SIZE_BUCKETS)

        # -- pipeline counters (pulled from PipelineStats) ---------------------
        self.records_parsed = registry.counter(
            "monilog_records_parsed_total", "Records through stage 1")
        self.windows_scored = registry.counter(
            "monilog_windows_scored_total", "Closed windows scored")
        self.anomalies = registry.counter(
            "monilog_anomalies_total", "Windows flagged anomalous")
        self.alerts = registry.counter(
            "monilog_alerts_total", "Alerts classified and delivered")
        self.templates = registry.gauge(
            "monilog_templates", "Template inventory size")
        self.batch_size = registry.gauge(
            "monilog_batch_size",
            "Current pipeline micro-batch size (autoscale-adjustable)")
        self.shard_load = registry.gauge(
            "monilog_shard_load",
            "Records routed per parser shard (DistributedDrain)",
            ("shard",))
        self.shard_imbalance = registry.gauge(
            "monilog_shard_imbalance",
            "max/mean parser shard load (1.0 = perfectly balanced)")
        self.shards = registry.gauge(
            "monilog_shards",
            "Current parser shard count (reshard-adjustable)")
        self.open_sessions = registry.gauge(
            "monilog_open_sessions", "Streaming sessions currently open")

        # -- hand-off / ingestion (pulled) -------------------------------------
        self.handoff_depth = registry.gauge(
            "monilog_handoff_depth",
            "Records submitted to the pipeline and not yet processed")
        self.handoff_peak_depth = registry.gauge(
            "monilog_handoff_peak_depth", "High-water hand-off depth")
        self.handoff_batches = registry.counter(
            "monilog_handoff_batches_total", "Batches through the hand-off")
        self.handoff_records = registry.counter(
            "monilog_handoff_records_total", "Records through the hand-off")
        self.handoff_busy_seconds = registry.counter(
            "monilog_handoff_busy_seconds_total",
            "Seconds spent inside process_batch")
        self.source_records = registry.counter(
            "monilog_source_records_total",
            "Records read per live source", ("source",))
        self.source_rate = registry.gauge(
            "monilog_source_arrival_rate",
            "Per-source arrival rate (records/second, sliding window)",
            ("source",))
        self.merge_pending = registry.gauge(
            "monilog_merge_pending", "Items buffered behind the watermark")
        self.late_records = registry.counter(
            "monilog_late_records_total",
            "Records arriving beyond the lateness budget")
        self.batch_pending = registry.gauge(
            "monilog_batch_pending", "Records in the open micro-batch")
        self.size_flushes = registry.counter(
            "monilog_batch_size_flushes_total", "Batches flushed on size")
        self.age_flushes = registry.counter(
            "monilog_batch_age_flushes_total", "Batches flushed on age")
        self.forced_drains = registry.counter(
            "monilog_forced_drains_total",
            "Watermark drains forced by credit pressure")
        self.credits = registry.gauge(
            "monilog_credits", "Current credit budget (back-pressure)")
        self.credits_in_use = registry.gauge(
            "monilog_credits_in_use", "Credits currently held by records")
        self.credit_waits = registry.counter(
            "monilog_credit_waits_total",
            "Times a producer blocked on the credit gate")
        self.credit_wait_seconds = registry.counter(
            "monilog_credit_wait_seconds_total",
            "Seconds producers spent blocked on the credit gate")
        self.source_healthy = registry.gauge(
            "monilog_source_healthy",
            "1 while a live source is connected/readable, 0 while degraded "
            "(reconnecting socket, missing file)", ("source",))

        # -- tracing / provenance (pulled from the tracer) ---------------------
        self.traces_sampled = registry.counter(
            "monilog_traces_sampled_total",
            "End-to-end traces sampled into the ring buffer")
        self.trace_spans = registry.counter(
            "monilog_trace_spans_total", "Spans recorded (lifetime)")
        self.trace_evictions = registry.counter(
            "monilog_trace_evictions_total",
            "Spans evicted from the ring buffer (grow trace_buffer if > 0)")
        self.trace_buffered = registry.gauge(
            "monilog_trace_buffered_spans",
            "Spans currently retained in the ring buffer")
        self.alert_provenance = registry.gauge(
            "monilog_alert_provenance_records",
            "Alert provenance ledger entries held for `repro explain`")

        # -- semantic-tier embedding cache (pulled from detectors) -------------
        self.embedding_cache_hits = registry.counter(
            "monilog_embedding_cache_hits_total",
            "Template-vector lookups served from the embedding cache")
        self.embedding_cache_misses = registry.counter(
            "monilog_embedding_cache_misses_total",
            "Template-vector lookups that computed a fresh embedding")
        self.embedding_cache_evictions = registry.counter(
            "monilog_embedding_cache_evictions_total",
            "Embedding cache entries dropped by the LRU capacity bound")
        self.embedding_cache_rebuilds = registry.counter(
            "monilog_embedding_cache_rebuilds_total",
            "Embeddings recomputed after an IDF-drift generation change")
        self.embedding_cache_entries = registry.gauge(
            "monilog_embedding_cache_entries",
            "Template vectors currently memoized (all detector shards)")
        self.embedding_cache_generation = registry.gauge(
            "monilog_embedding_cache_generation",
            "Highest embedding-cache generation across detector shards")
        self.embedding_embed_calls = registry.counter(
            "monilog_embedding_embed_calls_total",
            "Full (uncached) template embedding computations")

        # -- autoscale (pushed by the controller, pulled for gauges) -----------
        self.autoscale_ticks = registry.counter(
            "monilog_autoscale_ticks_total", "Autoscale controller ticks")
        self.autoscale_adjustments = registry.counter(
            "monilog_autoscale_adjustments_total",
            "Knob adjustments by the autoscale controller", ("knob",))
        self.autoscale_knob = registry.gauge(
            "monilog_autoscale_knob",
            "Current value of each autoscale-controlled knob", ("knob",))
        self.advisories_total = registry.counter(
            "monilog_advisories_total", "Operator advisories raised")

        # -- elastic resharding (pushed per resize, pulled for sync) -----------
        self.reshard_total = registry.counter(
            "monilog_reshard_total", "Live parser shard-count resizes")
        self.reshard_keys_moved = registry.counter(
            "monilog_reshard_keys_moved_total",
            "Routing keys relocated by resizes")
        self.reshard_templates_moved = registry.counter(
            "monilog_reshard_templates_moved_total",
            "Templates migrated to relocated shards by resizes")
        self.reshard_bytes = registry.counter(
            "monilog_reshard_bytes_total",
            "Serialized bytes of migrated template state")
        self.reshard_seconds = registry.histogram(
            "monilog_reshard_seconds",
            "Wall-clock latency per resize (seconds)",
            DEFAULT_LATENCY_BUCKETS)
        self.template_sync_bytes = registry.counter(
            "monilog_template_sync_bytes_total",
            "Template-store delta-sync bytes between router and "
            "process-pool workers", ("direction",))
        self.template_full_syncs = registry.counter(
            "monilog_template_full_syncs_total",
            "Whole-parser (non-delta) syncs to process-pool workers")

    def __deepcopy__(self, memo: dict) -> "PipelineTelemetry":
        """Telemetry is a runtime resource, not model state: snapshots
        of an instrumented pipeline (``consistency_with`` probes,
        bench replicas) share the registry rather than cloning live
        locks and collector closures — the same contract executors
        follow."""
        return self

    # -- push hooks (enabled-path only) -----------------------------------------

    def observe_parse(self, records: int, seconds: float) -> None:
        self.parse_seconds.observe(seconds)
        self.parse_batch_records.observe(records)

    def observe_detect(self, sessions: int, seconds: float) -> None:
        self.detect_seconds.observe(seconds)
        self.detect_batch_sessions.observe(sessions)

    def observe_sessionize(self, seconds: float) -> None:
        self.sessionize_seconds.observe(seconds)

    def observe_ingest_batch(self, records: int) -> None:
        self.ingest_batch_records.observe(records)

    def observe_reshard(self, report) -> None:
        """Record one :class:`~repro.parsing.distributed.ReshardReport`."""
        self.reshard_total.inc()
        self.reshard_keys_moved.inc(report.keys_moved)
        self.reshard_templates_moved.inc(report.templates_moved)
        self.reshard_bytes.inc(report.bytes_moved)
        self.reshard_seconds.observe(report.seconds)

    def advise(self, message: str) -> None:
        """Raise an operator advisory (kept in the snapshot ring)."""
        with self._advisory_lock:
            if not self._advisories or self._advisories[-1] != message:
                self._advisories.append(message)
                self.advisories_total.inc()

    # -- pull collectors ---------------------------------------------------------

    def attach_pipeline(self, pipeline) -> None:
        """Mirror the pipeline's own counters at exposition time."""
        already = self._pipeline is not None
        self._pipeline = pipeline
        if already:
            return

        def collect() -> None:
            pipeline = self._pipeline
            stats = pipeline.stats()
            self.records_parsed.set_total(stats.records_parsed)
            self.windows_scored.set_total(stats.windows_scored)
            self.anomalies.set_total(stats.anomalies_detected)
            self.alerts.set_total(stats.alerts_classified)
            self.templates.set(stats.templates_discovered)
            self.batch_size.set(pipeline.batch_size)
            if pipeline.sharded:
                parser = pipeline.parser
                loads = parser.shard_loads
                for shard, load in enumerate(loads):
                    self.shard_load.labels(shard=shard).set(load)
                mean = sum(loads) / len(loads)
                self.shard_imbalance.set(
                    max(loads) / mean if mean else 1.0)
                self.shards.set(len(loads))
                sync = getattr(parser, "sync_stats", None)
                if sync is not None:
                    self.template_sync_bytes.labels(
                        direction="to_workers"
                    ).set_total(sync["bytes_to_workers"])
                    self.template_sync_bytes.labels(
                        direction="from_workers"
                    ).set_total(sync["bytes_from_workers"])
                    self.template_full_syncs.set_total(sync["full_syncs"])
            sessionizer = pipeline.sessionizer
            if sessionizer is not None:
                self.open_sessions.set(sessionizer.open_sessions)
            caches = [
                detector.embedding_cache
                for detector in getattr(pipeline, "detectors", ())
                if hasattr(detector, "embedding_cache")
            ]
            if caches:
                stats = [cache.stats() for cache in caches]
                self.embedding_cache_hits.set_total(
                    sum(s["hits"] for s in stats))
                self.embedding_cache_misses.set_total(
                    sum(s["misses"] for s in stats))
                self.embedding_cache_evictions.set_total(
                    sum(s["evictions"] for s in stats))
                self.embedding_cache_rebuilds.set_total(
                    sum(s["rebuilds"] for s in stats))
                self.embedding_cache_entries.set(
                    sum(s["entries"] for s in stats))
                self.embedding_cache_generation.set(
                    max(s["generation"] for s in stats))
                self.embedding_embed_calls.set_total(
                    sum(s["embed_calls"] for s in stats))

        self.registry.collect(collect)

    def attach_handoff(self, handoff) -> None:
        """Mirror the :class:`BatchHandoff` depth signal and totals."""
        already = self._handoff is not None
        self._handoff = handoff
        if already:
            return

        def collect() -> None:
            handoff = self._handoff
            self.handoff_depth.set(handoff.depth)
            self.handoff_peak_depth.set(handoff.peak_depth)
            self.handoff_batches.set_total(handoff.batches)
            self.handoff_records.set_total(handoff.records)
            self.handoff_busy_seconds.set_total(handoff.busy_seconds)

        self.registry.collect(collect)

    def attach_ingest(self, service) -> None:
        """Mirror the ingestion front-end's meters and gate accounting.

        The collector reads the live runtime objects directly rather
        than ``service.stats()`` — a scrape should roll each rate
        meter once and not pay for the stats snapshot's dict copies
        (or the autoscale status build) it would throw away.
        """
        already = self._ingest is not None
        self._ingest = service
        if already:
            return

        def collect() -> None:
            service = self._ingest
            now = time.monotonic()
            for name, count in service._records_in.items():
                self.source_records.labels(source=name).set_total(count)
            for name, meter in service.meters.items():
                self.source_rate.labels(source=name).set(meter.rate(now))
            self.merge_pending.set(service.merger.pending)
            self.late_records.set_total(service.merger.late)
            self.batch_pending.set(service.batcher.pending)
            self.size_flushes.set_total(service.batcher.size_flushes)
            self.age_flushes.set_total(service.batcher.age_flushes)
            self.forced_drains.set_total(service.forced_drains)
            self.credits.set(service.gate.capacity)
            self.credits_in_use.set(service.gate.in_use)
            self.credit_waits.set_total(service.gate.waits)
            self.credit_wait_seconds.set_total(service.gate.wait_seconds)
            for source in service.sources:
                self.source_healthy.labels(source=source.name).set(
                    1 if getattr(source, "healthy", True) else 0)

        self.registry.collect(collect)

    def attach_tracer(self, tracer) -> None:
        """Mirror the trace ring and provenance ledger sizes."""
        already = self._tracer is not None
        self._tracer = tracer
        if already:
            return

        def collect() -> None:
            tracer = self._tracer
            store = tracer.store
            self.traces_sampled.set_total(tracer.sampled)
            self.trace_spans.set_total(store.added)
            self.trace_evictions.set_total(store.evicted)
            self.trace_buffered.set(len(store))
            self.alert_provenance.set(len(tracer.alert_ids))

        self.registry.collect(collect)

    def attach_profiler(self, profiler) -> None:
        """Expose a :class:`~repro.telemetry.profiling.SamplingProfiler`.

        Unlike every other family in the catalog, the
        ``monilog_profile_*`` families are declared *here*, not in
        ``__init__`` — a profiler-off pipeline must expose zero
        profile families (absence is the "off" signal), so the
        declaration rides with the attachment.  The profiler itself
        guards re-attachment, matching the re-point contract of the
        other ``attach_*`` methods.
        """
        self._profiler = profiler
        profiler.attach(self.registry)

    def attach_autoscale(self, controller) -> None:
        """Mirror the controller's knob positions and tick count."""
        already = self._autoscale is not None
        self._autoscale = controller
        if already:
            return

        def collect() -> None:
            status = self._autoscale.status()
            self.autoscale_ticks.set_total(status["ticks"])
            for knob, value in status["knobs"].items():
                self.autoscale_knob.labels(knob=knob).set(value)

        self.registry.collect(collect)

    # -- exposition --------------------------------------------------------------

    def advisories(self) -> list[str]:
        with self._advisory_lock:
            return list(self._advisories)

    def snapshot(self) -> dict:
        """The JSON surface: every metric plus the advisory ring."""
        return {
            "metrics": self.registry.snapshot(),
            "advisories": self.advisories(),
        }

    def render_prometheus(self) -> str:
        return self.registry.render_prometheus()
