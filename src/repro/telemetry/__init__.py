"""Runtime telemetry: the pipeline watching itself.

A lock-cheap metrics registry (:mod:`repro.telemetry.metrics`), the
pipeline's metric catalog and collector wiring
(:class:`PipelineTelemetry`), a declarative config
(:class:`TelemetryConfig`, the spec's ``[telemetry]`` table), and a
stdlib-only HTTP endpoint (:class:`MetricsServer`) serving Prometheus
text at ``/metrics``, the JSON snapshot at ``/telemetry``, sampled
spans at ``/traces``, and liveness/readiness probes at ``/healthz`` /
``/readyz``.  :mod:`repro.telemetry.tracing` adds the causality tier:
sampled end-to-end spans (:class:`Tracer` + :class:`TraceStore`),
per-alert provenance (:class:`AlertProvenance`, ``repro explain``),
and the :class:`HealthMonitor` probe aggregate.
:mod:`repro.telemetry.profiling` adds the continuous-profiling tier:
a stdlib-only wall-clock sampler (:class:`SamplingProfiler`) whose
collapsed stacks are stage- and tenant-attributed, served at
``/profile`` and ranked by ``repro profile``.

Enable it declaratively and everything wires itself through the one
``Pipeline`` seam::

    spec = PipelineSpec(telemetry={"metrics_port": 9100})
    with Pipeline.from_spec(spec) as pipeline:
        ...
        print(pipeline.telemetry())        # JSON snapshot

See ``docs/telemetry.md`` for the metric catalog and a scrape config.
"""

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.instrument import PipelineTelemetry
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    BoundFamily,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RateMeter,
    ScopedRegistry,
    filter_prometheus,
    filter_snapshot,
)
from repro.telemetry.profiling import (
    DEFAULT_PROFILE_HZ,
    SamplingProfiler,
    current_stage,
    pop_stage,
    push_stage,
)
from repro.telemetry.server import MetricsServer
from repro.telemetry.tracing import (
    AlertProvenance,
    HealthMonitor,
    Span,
    TraceContext,
    Tracer,
    TraceStore,
)

__all__ = [
    "AlertProvenance",
    "BoundFamily",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_PROFILE_HZ",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "PipelineTelemetry",
    "RateMeter",
    "SamplingProfiler",
    "ScopedRegistry",
    "Span",
    "TelemetryConfig",
    "TraceContext",
    "Tracer",
    "TraceStore",
    "current_stage",
    "filter_prometheus",
    "filter_snapshot",
    "pop_stage",
    "push_stage",
]
