"""End-to-end tracing, alert provenance, and health/readiness probes.

Three runtime resources on top of the PR-5 metrics registry:

* :class:`TraceStore` + :class:`Tracer` — sampled end-to-end **spans**
  (batch- and record-granular: source read → merge → parse → detect →
  classify → alert) with per-stage wall/cpu timings and executor/shard
  attribution, recorded into a bounded in-process ring buffer.
  Sampling is counter-based and deterministic (every Nth candidate for
  ``trace_sample_rate = 1/N``) so a traced run stays reproducible and
  no RNG state leaks into the pipeline.
* :class:`AlertProvenance` — every alert resolvable back to source
  names, byte offsets, template ids, the detector window and scores,
  and the pool decision (predicted vs delivered).  Provenance is
  captured for **every** alert whenever tracing is enabled, not just
  for sampled traces: alerts are rare, causality must not be.
* :class:`HealthMonitor` — liveness/readiness probes behind
  ``/healthz`` and ``/readyz`` on the metrics server, fed by
  heartbeats (ingest loop iterations) and pull checks (source health,
  pipeline trained).

All three follow the runtime-resource contract established by
``PipelineTelemetry``: ``__deepcopy__`` returns ``self``, so
process-executor deepcopies of an instrumented pipeline share the
original stores instead of cloning them.

The strictly-pay-for-what-you-sample contract: with ``tracing = false``
no ``Tracer`` exists and every hook site short-circuits on ``is None``;
with tracing on, unsampled batches cost one lock-free-cheap counter
increment.  Alerts are byte-identical either way (bench_x14).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.logs.record import DEFAULT_TENANT

__all__ = [
    "Span",
    "TraceStore",
    "TraceContext",
    "Tracer",
    "AlertProvenance",
    "HealthMonitor",
]

#: Capacity of the (source, sequence) → checkpoint-offset side table a
#: tracer keeps so alert provenance can name real byte offsets.  Keys
#: are evicted oldest-first; an evicted (or never-ingested, i.e.
#: offline) record falls back to its ``sequence`` as the offset.
OFFSET_CACHE_CAPACITY = 65536

#: Sentinel handed from the ingest loop to the pipeline when the ingest
#: side already made a *negative* sampling decision for a batch — the
#: pipeline must consume it and not draw a second sample.
_SKIP = object()


@dataclass(frozen=True, slots=True)
class Span:
    """One timed stage of a sampled trace.

    ``duration`` is wall seconds, ``cpu`` is process CPU seconds over
    the same interval; ``wall_start`` is an epoch timestamp for
    display.  ``parent_id`` is ``None`` for the root span of a trace.
    """

    trace_id: str
    span_id: int
    parent_id: int | None
    name: str
    tenant: str
    wall_start: float
    duration: float
    cpu: float
    attributes: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "tenant": self.tenant,
            "wall_start": self.wall_start,
            "duration": self.duration,
            "cpu": self.cpu,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(
            trace_id=payload["trace"],
            span_id=payload["span"],
            parent_id=payload["parent"],
            name=payload["name"],
            tenant=payload.get("tenant", DEFAULT_TENANT),
            wall_start=payload["wall_start"],
            duration=payload["duration"],
            cpu=payload["cpu"],
            attributes=dict(payload.get("attributes", {})),
        )


class TraceStore:
    """Bounded ring buffer of finished spans.

    Oldest spans are evicted first once ``capacity`` is reached; the
    eviction count is exported as ``monilog_trace_evictions_total`` so
    an undersized ``trace_buffer`` is visible, not silent.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError("TraceStore capacity must be >= 1")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.added = 0
        self.evicted = 0

    def add(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self.evicted += 1
            self._spans.append(span)
            self.added += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def spans(
        self,
        *,
        trace_id: str | None = None,
        name: str | None = None,
        tenant: str | None = None,
        limit: int | None = None,
    ) -> list[Span]:
        """Retained spans, oldest first; ``limit`` keeps the newest N."""
        with self._lock:
            items = list(self._spans)
        if trace_id is not None:
            items = [span for span in items if span.trace_id == trace_id]
        if name is not None:
            items = [span for span in items if span.name == name]
        if tenant is not None:
            items = [span for span in items if span.tenant == tenant]
        if limit is not None and limit >= 0:
            items = items[-limit:] if limit else []
        return items

    def trace_ids(self) -> list[str]:
        """Distinct trace ids among retained spans, oldest first."""
        seen: dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def snapshot(self, **filters: Any) -> list[dict[str, Any]]:
        return [span.as_dict() for span in self.spans(**filters)]

    def __deepcopy__(self, memo: dict) -> "TraceStore":
        # Runtime-resource contract: executor deepcopies share the ring.
        return self


@dataclass(frozen=True)
class AlertProvenance:
    """Everything needed to answer "why did this alert fire?".

    ``records`` carries one ``(source, offset, template_id)`` triple per
    event in the detector window, in window order.  ``offset`` is the
    source's checkpoint resume token — a true byte offset for file
    tails, a record count for sockets and adapted sources — so an
    operator can seek the original line.  ``predicted_pool`` is the
    classifier's verdict; ``delivered_pool`` is where the pool manager
    actually placed the alert (they differ when the predicted pool was
    deleted and delivery fell back).
    """

    alert_id: int
    tenant: str
    session_id: str
    score: float
    reasons: tuple[str, ...]
    window_start: float
    window_end: float
    events: int
    predicted_pool: str
    delivered_pool: str
    criticality: str
    confidence: float
    sources: tuple[str, ...]
    template_ids: tuple[int, ...]
    templates: tuple[str, ...]
    records: tuple[tuple[str, int, int], ...]
    trace_id: str | None = None

    def offsets_by_source(self) -> dict[str, tuple[int, int, int]]:
        """``source → (first_offset, last_offset, record_count)``."""
        summary: dict[str, list[int]] = {}
        for source, offset, _template_id in self.records:
            summary.setdefault(source, []).append(offset)
        return {
            source: (min(offsets), max(offsets), len(offsets))
            for source, offsets in summary.items()
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "alert_id": self.alert_id,
            "tenant": self.tenant,
            "session_id": self.session_id,
            "score": self.score,
            "reasons": list(self.reasons),
            "window_start": self.window_start,
            "window_end": self.window_end,
            "events": self.events,
            "predicted_pool": self.predicted_pool,
            "delivered_pool": self.delivered_pool,
            "criticality": self.criticality,
            "confidence": self.confidence,
            "sources": list(self.sources),
            "template_ids": list(self.template_ids),
            "templates": list(self.templates),
            "records": [list(triple) for triple in self.records],
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AlertProvenance":
        return cls(
            alert_id=payload["alert_id"],
            tenant=payload.get("tenant", DEFAULT_TENANT),
            session_id=payload["session_id"],
            score=payload["score"],
            reasons=tuple(payload.get("reasons", ())),
            window_start=payload["window_start"],
            window_end=payload["window_end"],
            events=payload["events"],
            predicted_pool=payload["predicted_pool"],
            delivered_pool=payload["delivered_pool"],
            criticality=payload["criticality"],
            confidence=payload["confidence"],
            sources=tuple(payload.get("sources", ())),
            template_ids=tuple(payload.get("template_ids", ())),
            templates=tuple(payload.get("templates", ())),
            records=tuple(
                (source, offset, template_id)
                for source, offset, template_id in payload.get("records", ())
            ),
            trace_id=payload.get("trace_id"),
        )

    def render(self) -> str:
        """Operator-facing walkthrough, the body of ``repro explain``."""
        span_s = self.window_end - self.window_start
        lines = [
            f"alert #{self.alert_id} tenant={self.tenant} "
            f"session={self.session_id}",
            f"  window: {self.events} events, "
            f"t={self.window_start:.3f}..{self.window_end:.3f} "
            f"({span_s:.3f}s)",
            f"  detection: score={self.score:.3f}",
        ]
        for reason in self.reasons:
            lines.append(f"    - {reason}")
        pool = f"pool={self.delivered_pool}"
        if self.delivered_pool != self.predicted_pool:
            pool += f" (predicted {self.predicted_pool}, fell back)"
        else:
            pool += " (as predicted)"
        lines.append(
            f"  classification: {pool} criticality={self.criticality} "
            f"confidence={self.confidence:.2f}"
        )
        lines.append(f"  templates ({len(self.template_ids)}):")
        for template_id, template in zip(self.template_ids, self.templates):
            lines.append(f"    [{template_id}] {template}")
        lines.append("  source offsets:")
        for source, (first, last, count) in sorted(
            self.offsets_by_source().items()
        ):
            lines.append(
                f"    {source}: offsets {first}..{last} ({count} records)"
            )
        trace = self.trace_id if self.trace_id is not None else "not sampled"
        lines.append(f"  trace: {trace}")
        return "\n".join(lines)


class _SpanHandle:
    """Context manager timing one span; records into the store on exit."""

    __slots__ = ("_ctx", "name", "parent_id", "span_id", "_attributes",
                 "_wall", "_start", "_cpu")

    def __init__(
        self,
        ctx: "TraceContext",
        name: str,
        parent_id: int | None,
        attributes: dict[str, Any],
    ):
        self._ctx = ctx
        self.name = name
        self.parent_id = parent_id
        self.span_id = ctx._allocate_span_id()
        self._attributes = attributes

    def annotate(self, **attributes: Any) -> None:
        self._attributes.update(attributes)

    def __enter__(self) -> "_SpanHandle":
        tracer = self._ctx.tracer
        self._wall = tracer._wall_clock()
        self._cpu = tracer._cpu_clock()
        self._start = tracer._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._ctx.tracer
        tracer.store.add(Span(
            trace_id=self._ctx.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            tenant=tracer.tenant,
            wall_start=self._wall,
            duration=tracer._clock() - self._start,
            cpu=tracer._cpu_clock() - self._cpu,
            attributes=self._attributes,
        ))


class TraceContext:
    """One sampled end-to-end trace: a root span plus its children.

    Created by :meth:`Tracer.begin`; stage hooks open child spans via
    :meth:`span` while the context is active on the pipeline.  A
    context is used by one thread at a time (the ingest loop builds it,
    then hands it to the executor thread through
    :meth:`Tracer.hand_off`; the batch handoff serializes batches, so
    the two never race).
    """

    __slots__ = ("tracer", "trace_id", "kind", "_next_span", "_root")

    def __init__(self, tracer: "Tracer", trace_id: str, kind: str,
                 attributes: dict[str, Any]):
        self.tracer = tracer
        self.trace_id = trace_id
        self.kind = kind
        self._next_span = 0
        self._root = _SpanHandle(self, kind, None, attributes)
        self._root.__enter__()

    def _allocate_span_id(self) -> int:
        span_id = self._next_span
        self._next_span += 1
        return span_id

    @property
    def root_id(self) -> int:
        return self._root.span_id

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the root span."""
        self._root.annotate(**attributes)

    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        """Open a child span (use as a context manager)."""
        return _SpanHandle(self, name, self.root_id, attributes)

    def event(self, name: str, **attributes: Any) -> None:
        """Record an instantaneous (zero-duration) child span."""
        with self.span(name, **attributes):
            pass

    def _finish(self) -> None:
        self._root.__exit__(None, None, None)


class Tracer:
    """Sampling decisions, span plumbing, and the provenance ledger.

    One tracer per pipeline (per tenant in the gateway); tracers may
    share one :class:`TraceStore`.  Deterministic sampling: candidate
    batches/records are counted and every ``interval``-th one is traced,
    where ``interval = round(1 / sample_rate)`` — rate 1.0 traces
    everything, rate 0.0 nothing, and a given corpus always samples the
    same batches.
    """

    def __init__(
        self,
        store: TraceStore,
        *,
        sample_rate: float = 1.0,
        tenant: str = DEFAULT_TENANT,
        clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
        wall_clock: Callable[[], float] = time.time,
    ):
        self.store = store
        self.sample_rate = sample_rate
        self.tenant = tenant
        self.interval = 0 if sample_rate <= 0 else max(
            1, round(1 / sample_rate))
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._wall_clock = wall_clock
        self._lock = threading.Lock()
        self._candidates = 0
        self._trace_seq = 0
        self.sampled = 0
        self._pending: object = None
        self._offsets: OrderedDict[tuple[str, int], int] = OrderedDict()
        self._provenance: OrderedDict[int, AlertProvenance] = OrderedDict()
        # Keep at least a full ring's worth of alert ledger entries so
        # `repro explain` round-trips every alert of a bounded run.
        self._provenance_capacity = max(store.capacity, 1024)

    # -- sampling / span lifecycle ------------------------------------

    def begin(self, kind: str, **attributes: Any) -> TraceContext | None:
        """Start (or adopt) a trace for one candidate batch/record.

        If the ingest loop already rooted a trace for this batch and
        handed it off, that context is adopted (annotated with the
        pipeline-side attributes) instead of drawing a new sample.
        Returns ``None`` when the candidate is not sampled.
        """
        with self._lock:
            pending, self._pending = self._pending, None
            if pending is None:
                self._candidates += 1
                sample = (
                    self.interval > 0
                    and self._candidates % self.interval == 0
                )
                if sample:
                    self._trace_seq += 1
                    self.sampled += 1
                    trace_id = f"{self.tenant}-{self._trace_seq:06d}"
                else:
                    trace_id = None
        if pending is _SKIP:
            return None
        if pending is not None:
            assert isinstance(pending, TraceContext)
            pending.annotate(**attributes)
            return pending
        if trace_id is None:
            return None
        return TraceContext(self, trace_id, kind, attributes)

    def finish(self, ctx: TraceContext | None) -> None:
        """Close a trace's root span and commit it to the store."""
        if ctx is not None:
            ctx._finish()

    def hand_off(self, ctx: TraceContext | None) -> None:
        """Transfer a trace (or a negative decision) to the next stage.

        The ingest loop roots an ``ingest`` trace before submitting the
        batch to the executor; the pipeline's :meth:`begin` call inside
        the executor thread adopts it.  Passing ``None`` records the
        negative sampling decision so the pipeline does not draw a
        second sample for the same batch.
        """
        with self._lock:
            self._pending = ctx if ctx is not None else _SKIP

    # -- provenance ----------------------------------------------------

    def note_offsets(self, batch: Iterable[Any]) -> None:
        """Remember checkpoint offsets for a batch of ``SourceItem``s."""
        with self._lock:
            offsets = self._offsets
            for item in batch:
                key = (item.record.source, item.record.sequence)
                offsets[key] = item.offset
                offsets.move_to_end(key)
            while len(offsets) > OFFSET_CACHE_CAPACITY:
                offsets.popitem(last=False)

    def offset_of(self, event: Any) -> int:
        """The checkpoint offset of a parsed event's record.

        Falls back to the record's ``sequence`` when the record never
        passed through ingestion (offline runs) or was evicted from the
        side table.
        """
        record = event.record
        with self._lock:
            return self._offsets.get(
                (record.source, record.sequence), record.sequence)

    def record_alert(
        self,
        alert: Any,
        *,
        predicted_pool: str,
        trace_id: str | None = None,
    ) -> AlertProvenance:
        """Capture provenance for a delivered alert (every alert)."""
        report = alert.report
        template_ids: dict[int, str] = {}
        records = []
        with self._lock:  # one acquisition for the whole window
            offsets = self._offsets
            for event in report.events:
                template_ids.setdefault(event.template_id, event.template)
                record = event.record
                offset = offsets.get(
                    (record.source, record.sequence), record.sequence)
                records.append((event.source, offset, event.template_id))
        provenance = AlertProvenance(
            alert_id=report.report_id,
            tenant=self.tenant,
            session_id=report.session_id,
            score=report.detection.score,
            reasons=tuple(report.detection.reasons),
            window_start=report.start_time,
            window_end=report.end_time,
            events=len(report.events),
            predicted_pool=predicted_pool,
            delivered_pool=alert.pool,
            criticality=alert.criticality,
            confidence=alert.confidence,
            sources=report.sources,
            template_ids=tuple(template_ids),
            templates=tuple(template_ids.values()),
            records=tuple(records),
            trace_id=trace_id,
        )
        with self._lock:
            ledger = self._provenance
            ledger[provenance.alert_id] = provenance
            while len(ledger) > self._provenance_capacity:
                ledger.popitem(last=False)
        return provenance

    def explain(self, alert_id: int) -> AlertProvenance:
        """Provenance for one alert id; raises ``KeyError`` if unknown."""
        with self._lock:
            try:
                return self._provenance[alert_id]
            except KeyError:
                known = sorted(self._provenance)
                raise KeyError(
                    f"no provenance for alert #{alert_id}; known alert ids: "
                    f"{known if known else 'none'}"
                ) from None

    def provenance(self) -> list[AlertProvenance]:
        """All retained provenance records, oldest first."""
        with self._lock:
            return list(self._provenance.values())

    @property
    def alert_ids(self) -> list[int]:
        with self._lock:
            return list(self._provenance)

    def __deepcopy__(self, memo: dict) -> "Tracer":
        # Runtime-resource contract: executor deepcopies share the tracer.
        return self


class HealthMonitor:
    """Aggregates liveness/readiness probes for ``/readyz``.

    Three probe styles:

    * **heartbeats** (:meth:`beat`) — ready while the last beat is
      fresher than ``stale_after`` seconds; the ingest loop beats once
      per iteration, so a wedged loop goes unready by itself;
    * **flags** (:meth:`set_ready`) — explicit ready/unready with a
      detail string;
    * **pull checks** (:meth:`check`) — a callable evaluated at probe
      time (e.g. ``source.healthy``); exceptions read as unready.

    ``/healthz`` (process liveness) never consults this monitor — a
    process that can answer HTTP is alive; readiness is the
    discriminating probe.
    """

    def __init__(
        self,
        *,
        stale_after: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.stale_after = stale_after
        self._clock = clock
        self._lock = threading.Lock()
        self._beats: dict[str, float] = {}
        self._flags: dict[str, tuple[bool, str]] = {}
        self._checks: dict[str, Callable[[], bool]] = {}

    def beat(self, probe: str) -> None:
        with self._lock:
            self._beats[probe] = self._clock()

    def set_ready(self, probe: str, ready: bool, detail: str = "") -> None:
        with self._lock:
            self._flags[probe] = (ready, detail)

    def check(self, probe: str, fn: Callable[[], bool]) -> None:
        """Register a pull check, evaluated on every :meth:`probes` call."""
        with self._lock:
            self._checks[probe] = fn

    def probes(self) -> dict[str, dict[str, Any]]:
        now = self._clock()
        with self._lock:
            beats = dict(self._beats)
            flags = dict(self._flags)
            checks = dict(self._checks)
        report: dict[str, dict[str, Any]] = {}
        for probe, stamp in beats.items():
            age = now - stamp
            report[probe] = {
                "ready": age <= self.stale_after,
                "detail": f"last heartbeat {age:.1f}s ago",
            }
        for probe, (ready, detail) in flags.items():
            report[probe] = {"ready": ready, "detail": detail}
        for probe, fn in checks.items():
            try:
                ready = bool(fn())
                detail = "" if ready else "check reported unready"
            except Exception as error:  # noqa: BLE001 - probe must not raise
                ready = False
                detail = f"check raised: {error}"
            report[probe] = {"ready": ready, "detail": detail}
        return report

    def ready(self) -> tuple[bool, dict[str, dict[str, Any]]]:
        """Overall readiness: every registered probe must be ready."""
        probes = self.probes()
        return all(entry["ready"] for entry in probes.values()), probes

    def __deepcopy__(self, memo: dict) -> "HealthMonitor":
        # Runtime-resource contract: executor deepcopies share the monitor.
        return self
