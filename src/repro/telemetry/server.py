"""A stdlib-only HTTP endpoint serving the metrics registry.

Two routes, mirroring the two exposition formats:

* ``GET /metrics``    — Prometheus text format (version 0.0.4), the
  scrape target a monitoring stack points at;
* ``GET /telemetry``  — the JSON snapshot, for humans and scripts
  (``curl :9100/telemetry | jq .``).

The server is a ``ThreadingHTTPServer`` on a daemon thread: scrapes
run concurrently with the pipeline (registry reads are thread-safe and
collector-driven), binding to port ``0`` picks a free ephemeral port
(tests and the ``--metrics-port 0`` CLI spelling), and :meth:`close`
is idempotent.  No third-party dependency — the whole exposition path
is ``http.server`` + the registry's own renderers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.telemetry.metrics import MetricsRegistry

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # The registry is attached to the *server* (one per MetricsServer);
    # handlers are constructed per request by http.server.

    def do_GET(self) -> None:  # noqa: N802 - http.server's contract
        registry: MetricsRegistry = self.server.registry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = registry.render_prometheus().encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        elif path in ("/telemetry", "/stats"):
            body = json.dumps(registry.snapshot(), indent=2).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        else:
            self.send_error(404, "try /metrics or /telemetry")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Silence per-request access logging (scrapes are periodic)."""


class MetricsServer:
    """Serve one registry over HTTP until :meth:`close`.

    Args:
        registry: the metrics namespace to expose.
        port: TCP port to bind; ``0`` picks a free ephemeral port
            (read it back from :attr:`port`).
        host: bind address; loopback by default — exposing metrics
            beyond the host is a deployment decision, not a default.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.registry = registry
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.registry = registry  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="monilog-metrics",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    @property
    def port(self) -> int:
        """The bound TCP port (useful after binding port 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint (scrape ``{url}/metrics``)."""
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __deepcopy__(self, memo: dict) -> "MetricsServer":
        """A bound socket cannot be cloned; copies share the endpoint
        (the executor/telemetry runtime-resource contract)."""
        return self
