"""A stdlib-only HTTP endpoint serving the metrics registry.

Five routes, mirroring the exposition surfaces:

* ``GET /metrics``    — Prometheus text format (version 0.0.4), the
  scrape target a monitoring stack points at;
* ``GET /telemetry``  — the JSON snapshot, for humans and scripts
  (``curl :9100/telemetry | jq .``);
* ``GET /traces``     — JSON spans from the trace ring buffer when a
  :class:`~repro.telemetry.tracing.TraceStore` is attached
  (``?trace=``, ``?name=``, ``?tenant=``, ``?limit=`` filters);
* ``GET /healthz``    — liveness: 200 whenever the process can answer;
* ``GET /readyz``     — readiness: 200/503 from the attached
  :class:`~repro.telemetry.tracing.HealthMonitor` probes, with the
  per-probe detail in the JSON body.

The server is a ``ThreadingHTTPServer`` on a daemon thread: scrapes
run concurrently with the pipeline (registry reads are thread-safe and
collector-driven), binding to port ``0`` picks a free ephemeral port
(tests and the ``--metrics-port 0`` CLI spelling), and :meth:`close`
is idempotent.  A port that is already taken surfaces as a
:class:`~repro.core.validation.ConfigError` naming the endpoint, not a
raw ``OSError`` traceback.  No third-party dependency — the whole
exposition path is ``http.server`` + the registry's own renderers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro.core.validation import ConfigError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import HealthMonitor, TraceStore

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Spans returned by ``/traces`` when no ``?limit=`` is given.
DEFAULT_TRACE_LIMIT = 256


class _Handler(BaseHTTPRequestHandler):
    # The registry/trace store/health monitor are attached to the
    # *server* (one per MetricsServer); handlers are constructed per
    # request by http.server.

    def do_GET(self) -> None:  # noqa: N802 - http.server's contract
        registry: MetricsRegistry = self.server.registry  # type: ignore[attr-defined]
        path, _, query = self.path.partition("?")
        status = 200
        if path == "/metrics":
            body = registry.render_prometheus().encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        elif path in ("/telemetry", "/stats"):
            body = json.dumps(registry.snapshot(), indent=2).encode("utf-8")
            content_type = _JSON_CONTENT_TYPE
        elif path == "/traces":
            store: TraceStore | None = self.server.trace_store  # type: ignore[attr-defined]
            if store is None:
                self.send_error(
                    404, "tracing is not enabled ([telemetry] tracing)")
                return
            body = self._render_traces(store, query)
            content_type = _JSON_CONTENT_TYPE
        elif path == "/healthz":
            # Liveness: a process that can answer HTTP is alive.
            body = json.dumps({"status": "alive"}).encode("utf-8")
            content_type = _JSON_CONTENT_TYPE
        elif path == "/readyz":
            health: HealthMonitor | None = self.server.health  # type: ignore[attr-defined]
            if health is None:
                ready, probes = True, {}
            else:
                ready, probes = health.ready()
            status = 200 if ready else 503
            body = json.dumps(
                {"status": "ready" if ready else "unready",
                 "probes": probes},
                indent=2,
            ).encode("utf-8")
            content_type = _JSON_CONTENT_TYPE
        else:
            self.send_error(
                404, "try /metrics, /telemetry, /traces, /healthz, /readyz")
            return
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @staticmethod
    def _render_traces(store: TraceStore, query: str) -> bytes:
        params = parse_qs(query)

        def first(name: str) -> str | None:
            values = params.get(name)
            return values[0] if values else None

        limit = DEFAULT_TRACE_LIMIT
        raw_limit = first("limit")
        if raw_limit is not None:
            try:
                limit = max(0, int(raw_limit))
            except ValueError:
                limit = DEFAULT_TRACE_LIMIT
        spans = store.snapshot(
            trace_id=first("trace"),
            name=first("name"),
            tenant=first("tenant"),
            limit=limit,
        )
        return json.dumps(
            {
                "spans": spans,
                "buffered": len(store),
                "capacity": store.capacity,
                "evicted": store.evicted,
            },
            indent=2,
        ).encode("utf-8")

    def log_message(self, format: str, *args) -> None:
        """Silence per-request access logging (scrapes are periodic)."""


class MetricsServer:
    """Serve one registry over HTTP until :meth:`close`.

    Args:
        registry: the metrics namespace to expose.
        port: TCP port to bind; ``0`` picks a free ephemeral port
            (read it back from :attr:`port`).
        host: bind address; loopback by default — exposing metrics
            beyond the host is a deployment decision, not a default.
        trace_store: optional span ring buffer behind ``/traces``.
        health: optional probe aggregate behind ``/readyz``.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1", *,
                 trace_store: TraceStore | None = None,
                 health: HealthMonitor | None = None) -> None:
        self.registry = registry
        try:
            self._server = ThreadingHTTPServer((host, port), _Handler)
        except OSError as error:
            # Port already taken (or unbindable host): a deployment
            # problem, reported like every other config problem.
            reason = error.strerror or str(error)
            raise ConfigError("MetricsServer", [
                f"metrics_port: cannot bind {host}:{port} ({reason})",
            ]) from error
        self._server.daemon_threads = True
        self._server.registry = registry  # type: ignore[attr-defined]
        self._server.trace_store = trace_store  # type: ignore[attr-defined]
        self._server.health = health  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="monilog-metrics",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    @property
    def port(self) -> int:
        """The bound TCP port (useful after binding port 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint (scrape ``{url}/metrics``)."""
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __deepcopy__(self, memo: dict) -> "MetricsServer":
        """A bound socket cannot be cloned; copies share the endpoint
        (the executor/telemetry runtime-resource contract)."""
        return self
