"""A stdlib-only HTTP endpoint serving the metrics registry.

Six routes, mirroring the exposition surfaces:

* ``GET /metrics``    — Prometheus text format (version 0.0.4), the
  scrape target a monitoring stack points at;
* ``GET /telemetry``  — the JSON snapshot, for humans and scripts
  (``curl :9100/telemetry | jq .``);
* ``GET /traces``     — JSON spans from the trace ring buffer when a
  :class:`~repro.telemetry.tracing.TraceStore` is attached
  (``?trace=``, ``?name=``, ``?tenant=``, ``?limit=`` filters);
* ``GET /profile``    — the continuous profiler's hotspot ranking
  when a :class:`~repro.telemetry.profiling.SamplingProfiler` is
  attached: JSON top-N by default (``?limit=``),
  ``?format=collapsed`` for the flamegraph-ready collapsed-stack
  text (``curl :9100/profile?format=collapsed | flamegraph.pl``);
* ``GET /healthz``    — liveness: 200 whenever the process can answer;
* ``GET /readyz``     — readiness: 200/503 from the attached
  :class:`~repro.telemetry.tracing.HealthMonitor` probes, with the
  per-probe detail in the JSON body.

Malformed query parameters (a non-integer ``limit``, an unknown
``format``) answer a clean 400 with a JSON error body naming the
offending parameter — operator typos read as diagnoses, not 500
tracebacks or silently-defaulted answers.

The server is a ``ThreadingHTTPServer`` on a daemon thread: scrapes
run concurrently with the pipeline (registry reads are thread-safe and
collector-driven), binding to port ``0`` picks a free ephemeral port
(tests and the ``--metrics-port 0`` CLI spelling), and :meth:`close`
is idempotent.  A port that is already taken surfaces as a
:class:`~repro.core.validation.ConfigError` naming the endpoint, not a
raw ``OSError`` traceback.  No third-party dependency — the whole
exposition path is ``http.server`` + the registry's own renderers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro.core.validation import ConfigError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import SamplingProfiler
from repro.telemetry.tracing import HealthMonitor, TraceStore

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_JSON_CONTENT_TYPE = "application/json; charset=utf-8"
_TEXT_CONTENT_TYPE = "text/plain; charset=utf-8"

#: Spans returned by ``/traces`` when no ``?limit=`` is given.
DEFAULT_TRACE_LIMIT = 256

#: Hotspot stacks returned by ``/profile`` when no ``?limit=`` is given.
DEFAULT_PROFILE_LIMIT = 50


class _BadQuery(ValueError):
    """A malformed query parameter (answered as a 400 + JSON body)."""


def _first(params: dict, name: str) -> str | None:
    values = params.get(name)
    return values[0] if values else None


def _int_param(params: dict, name: str, default: int) -> int:
    """A non-negative integer query parameter, or a named 400."""
    raw = _first(params, name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise _BadQuery(
            f"query parameter {name!r} must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise _BadQuery(
            f"query parameter {name!r} must be >= 0, got {raw!r}")
    return value


class _Handler(BaseHTTPRequestHandler):
    # The registry/trace store/health monitor/profiler are attached to
    # the *server* (one per MetricsServer); handlers are constructed
    # per request by http.server.

    def do_GET(self) -> None:  # noqa: N802 - http.server's contract
        registry: MetricsRegistry = self.server.registry  # type: ignore[attr-defined]
        path, _, query = self.path.partition("?")
        status = 200
        content_type = _JSON_CONTENT_TYPE
        try:
            if path == "/metrics":
                body = registry.render_prometheus().encode("utf-8")
                content_type = PROMETHEUS_CONTENT_TYPE
            elif path in ("/telemetry", "/stats"):
                body = json.dumps(
                    registry.snapshot(), indent=2).encode("utf-8")
            elif path == "/traces":
                store: TraceStore | None = self.server.trace_store  # type: ignore[attr-defined]
                if store is None:
                    self.send_error(
                        404, "tracing is not enabled ([telemetry] tracing)")
                    return
                body = self._render_traces(store, query)
            elif path == "/profile":
                profiler: SamplingProfiler | None = self.server.profiler  # type: ignore[attr-defined]
                if profiler is None:
                    self.send_error(
                        404,
                        "profiling is not enabled ([telemetry] profile)")
                    return
                body, content_type = self._render_profile(profiler, query)
            elif path == "/healthz":
                # Liveness: a process that can answer HTTP is alive.
                body = json.dumps({"status": "alive"}).encode("utf-8")
            elif path == "/readyz":
                health: HealthMonitor | None = self.server.health  # type: ignore[attr-defined]
                if health is None:
                    ready, probes = True, {}
                else:
                    ready, probes = health.ready()
                status = 200 if ready else 503
                body = json.dumps(
                    {"status": "ready" if ready else "unready",
                     "probes": probes},
                    indent=2,
                ).encode("utf-8")
            else:
                self.send_error(
                    404, "try /metrics, /telemetry, /traces, /profile, "
                         "/healthz, /readyz")
                return
        except _BadQuery as error:
            self._send_json_error(400, str(error))
            return
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json_error(self, status: int, message: str) -> None:
        """A clean JSON error body (operator typos are diagnoses)."""
        body = json.dumps({"error": message}, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", _JSON_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @staticmethod
    def _render_traces(store: TraceStore, query: str) -> bytes:
        params = parse_qs(query)
        limit = _int_param(params, "limit", DEFAULT_TRACE_LIMIT)
        spans = store.snapshot(
            trace_id=_first(params, "trace"),
            name=_first(params, "name"),
            tenant=_first(params, "tenant"),
            limit=limit,
        )
        return json.dumps(
            {
                "spans": spans,
                "buffered": len(store),
                "capacity": store.capacity,
                "evicted": store.evicted,
            },
            indent=2,
        ).encode("utf-8")

    @staticmethod
    def _render_profile(profiler: SamplingProfiler,
                        query: str) -> tuple[bytes, str]:
        params = parse_qs(query)
        fmt = _first(params, "format") or "json"
        if fmt == "collapsed":
            return (profiler.collapsed().encode("utf-8"),
                    _TEXT_CONTENT_TYPE)
        if fmt != "json":
            raise _BadQuery(
                f"query parameter 'format' must be 'json' or "
                f"'collapsed', got {fmt!r}")
        limit = _int_param(params, "limit", DEFAULT_PROFILE_LIMIT)
        body = json.dumps(
            {
                "stats": profiler.stats(),
                "hotspots": profiler.top(limit),
            },
            indent=2,
        ).encode("utf-8")
        return body, _JSON_CONTENT_TYPE

    def log_message(self, format: str, *args) -> None:
        """Silence per-request access logging (scrapes are periodic)."""


class MetricsServer:
    """Serve one registry over HTTP until :meth:`close`.

    Args:
        registry: the metrics namespace to expose.
        port: TCP port to bind; ``0`` picks a free ephemeral port
            (read it back from :attr:`port`).
        host: bind address; loopback by default — exposing metrics
            beyond the host is a deployment decision, not a default.
        trace_store: optional span ring buffer behind ``/traces``.
        health: optional probe aggregate behind ``/readyz``.
        profiler: optional continuous profiler behind ``/profile``.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1", *,
                 trace_store: TraceStore | None = None,
                 health: HealthMonitor | None = None,
                 profiler: SamplingProfiler | None = None) -> None:
        self.registry = registry
        try:
            self._server = ThreadingHTTPServer((host, port), _Handler)
        except OSError as error:
            # Port already taken (or unbindable host): a deployment
            # problem, reported like every other config problem.
            reason = error.strerror or str(error)
            raise ConfigError("MetricsServer", [
                f"metrics_port: cannot bind {host}:{port} ({reason})",
            ]) from error
        self._server.daemon_threads = True
        self._server.registry = registry  # type: ignore[attr-defined]
        self._server.trace_store = trace_store  # type: ignore[attr-defined]
        self._server.health = health  # type: ignore[attr-defined]
        self._server.profiler = profiler  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="monilog-metrics",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    @property
    def port(self) -> int:
        """The bound TCP port (useful after binding port 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint (scrape ``{url}/metrics``)."""
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __deepcopy__(self, memo: dict) -> "MetricsServer":
        """A bound socket cannot be cloned; copies share the endpoint
        (the executor/telemetry runtime-resource contract)."""
        return self
