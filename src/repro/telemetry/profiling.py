"""Continuous sampling profiler: function-granular, stdlib-only.

MoniLog is pitched as an *online* monitoring layer, so the
reproduction's own hot paths — parse, detect, merge, embed — must be
observable at function granularity while the system serves, not only
at the stage granularity the tracer (:mod:`repro.telemetry.tracing`)
gives per span.  :class:`SamplingProfiler` is the classic wall-clock
sampling design, built entirely from the stdlib:

* a daemon thread wakes at a configurable rate (``hz``), walks
  ``sys._current_frames()``, and collapses each thread's Python stack
  into one ``frame;frame;...`` string (root first — the flamegraph
  "collapsed stack" format, ``flamegraph.pl`` / speedscope ready);
* each sample is attributed to the **pipeline stage** active on that
  thread at that instant — the pipeline pushes ``(tenant, stage)``
  markers around its stage hooks (the same seam the tracer's spans
  wrap), so the profile answers "which *function*, inside which
  *stage*, for which *tenant*" in one read;
* aggregation is a bounded ``stack -> count`` table: when the table is
  full a new stack evicts the current minimum-count entry (and the
  eviction is counted), so memory stays flat no matter how long the
  profiler runs.

The cost contract mirrors tracing's pay-for-what-you-use rule:

* **profiler off** — the pipeline never constructs one, the stage
  hooks cost one ``is None`` check, and no ``monilog_profile_*``
  family exists in the registry;
* **profiler on** — the sampled threads pay *nothing* (sampling reads
  their frames from the outside); the only in-band cost is the stage
  markers (two GIL-atomic list ops per hook) and the sampler thread's
  own work, which it meters into
  ``monilog_profile_overhead_seconds_total`` so the profiler's cost is
  itself a metric.

Alerts are byte-identical with the profiler on or off, under every
executor — the profiler reads frames and clocks, never pipeline state
(``benchmarks/bench_x16_profiling_overhead.py`` holds the system to
it, alongside a >=95% throughput bound at the default rate).
"""

from __future__ import annotations

import sys
import threading
import time

#: Default sampling rate (samples per second per thread).  ~100 Hz is
#: the classic continuous-profiling default: coarse enough to be
#: invisible next to millisecond-scale batch work, fine enough that a
#: seconds-long run already ranks hotspots.  Deliberately not a round
#: power of common batch cadences, to avoid lockstep aliasing.
DEFAULT_PROFILE_HZ = 100.0

#: Default bound on distinct collapsed stacks retained.
DEFAULT_MAX_STACKS = 2048

#: Frames deeper than this are truncated (leaf-most kept) — bounded
#: key size, and runaway recursion cannot balloon the table.
_MAX_DEPTH = 64

#: Stage recorded for samples on threads with no stage marker (the
#: sampler's own bookkeeping, executor workers between tasks, the
#: HTTP endpoint, test harnesses).
UNATTRIBUTED_STAGE = "other"

#: Tenant recorded for unattributed samples.
UNATTRIBUTED_TENANT = ""

#: thread ident -> stack of (tenant, stage) markers.  Mutations are
#: single list/dict operations (GIL-atomic); the sampler thread reads
#: racily and a stale read merely attributes one sample to the
#: neighboring stage — an acceptable error for a statistical profile,
#: and the price of keeping the hot path lock-free.
_STAGE_STACKS: dict[int, list[tuple[str, str]]] = {}


def push_stage(tenant: str, stage: str) -> None:
    """Mark the calling thread as inside ``stage`` for ``tenant``."""
    ident = threading.get_ident()
    stack = _STAGE_STACKS.get(ident)
    if stack is None:
        stack = []
        _STAGE_STACKS[ident] = stack
    stack.append((tenant, stage))


def pop_stage() -> None:
    """Unwind the calling thread's innermost stage marker."""
    stack = _STAGE_STACKS.get(threading.get_ident())
    if stack:
        stack.pop()


def current_stage() -> tuple[str, str] | None:
    """The calling thread's active ``(tenant, stage)``, if any."""
    stack = _STAGE_STACKS.get(threading.get_ident())
    return stack[-1] if stack else None


def _frame_name(frame) -> str:
    """One collapsed-stack frame: ``module:Qualified.name``."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{code.co_qualname}"


class SamplingProfiler:
    """A bounded, stage-attributed wall-clock sampling profiler.

    Args:
        hz: samples per second (the sampler thread's wake rate).
        max_stacks: bound on distinct collapsed stacks retained; the
            minimum-count entry is evicted (and counted) when a new
            stack arrives at capacity.

    Lifecycle: :meth:`start` spawns the daemon sampler thread,
    :meth:`stop` joins it; both are idempotent and the pair can cycle
    (counts accumulate across cycles — the profile is the process
    lifetime's, like every other counter).  One profiler may be shared
    by many pipelines (the gateway shares one across tenants; stage
    markers carry the tenant name, so attribution stays per-tenant).
    """

    def __init__(self, hz: float = DEFAULT_PROFILE_HZ,
                 max_stacks: int = DEFAULT_MAX_STACKS) -> None:
        if not hz > 0:
            raise ValueError(f"hz must be > 0, got {hz!r}")
        if max_stacks < 1:
            raise ValueError(f"max_stacks must be >= 1, got {max_stacks!r}")
        self.hz = float(hz)
        self.max_stacks = int(max_stacks)
        self.interval = 1.0 / self.hz
        self._lock = threading.Lock()
        self._stacks: dict[str, int] = {}
        self._stage_samples: dict[tuple[str, str], int] = {}
        self._samples = 0
        self._evictions = 0
        self._overhead = 0.0
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._attached = False

    # -- runtime-resource contract ----------------------------------------------

    def __deepcopy__(self, memo: dict) -> "SamplingProfiler":
        """A live sampler thread cannot be cloned; snapshots of a
        profiled pipeline share the profiler (the executor/telemetry
        runtime-resource contract)."""
        return self

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Spawn the sampler thread (idempotent while running)."""
        if self.running:
            return self
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="monilog-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the sampler thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=5.0)
        self._thread = None

    # -- the sampler loop --------------------------------------------------------

    def _run(self) -> None:
        stop = self._stop_event
        while not stop.wait(self.interval):
            self._sample_once()

    def _sample_once(self) -> None:
        """Walk every thread's frames; attribute and aggregate."""
        started = time.perf_counter()
        own = threading.get_ident()
        frames = sys._current_frames()
        for ident, frame in frames.items():
            if ident == own:
                continue
            parts: list[str] = []
            depth = 0
            while frame is not None and depth < _MAX_DEPTH:
                parts.append(_frame_name(frame))
                frame = frame.f_back
                depth += 1
            parts.reverse()  # root first, the collapsed-stack order
            marker = _STAGE_STACKS.get(ident)
            if marker:
                tenant, stage = marker[-1]
            else:
                tenant, stage = UNATTRIBUTED_TENANT, UNATTRIBUTED_STAGE
            self._record_sample(";".join([stage] + parts), tenant, stage)
        # Frames hold the sampled threads' locals alive; drop promptly.
        del frames
        with self._lock:
            self._overhead += time.perf_counter() - started

    def _record_sample(self, stack: str, tenant: str, stage: str) -> None:
        """Aggregate one sample under the capacity bound."""
        with self._lock:
            self._samples += 1
            key = (tenant, stage)
            self._stage_samples[key] = self._stage_samples.get(key, 0) + 1
            count = self._stacks.get(stack)
            if count is not None:
                self._stacks[stack] = count + 1
                return
            if len(self._stacks) >= self.max_stacks:
                victim = min(self._stacks, key=self._stacks.get)
                del self._stacks[victim]
                self._evictions += 1
            self._stacks[stack] = 1

    # -- exposition --------------------------------------------------------------

    def stats(self) -> dict:
        """The profile's aggregate counters, JSON-ready."""
        with self._lock:
            stage_samples = {
                f"{tenant}/{stage}" if tenant else stage: count
                for (tenant, stage), count in sorted(
                    self._stage_samples.items())
            }
            return {
                "hz": self.hz,
                "running": self.running,
                "samples": self._samples,
                "stacks": len(self._stacks),
                "max_stacks": self.max_stacks,
                "evictions": self._evictions,
                "overhead_seconds": self._overhead,
                "stage_samples": stage_samples,
            }

    def attributed_fraction(self) -> float:
        """Fraction of samples landing inside a known pipeline stage."""
        with self._lock:
            total = self._samples
            other = sum(
                count for (_, stage), count in self._stage_samples.items()
                if stage == UNATTRIBUTED_STAGE
            )
        return (total - other) / total if total else 0.0

    def top(self, limit: int = 20) -> list[dict]:
        """The hottest collapsed stacks, descending by sample count."""
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        with self._lock:
            total = self._samples
            ranked = sorted(self._stacks.items(),
                            key=lambda item: (-item[1], item[0]))[:limit]
        return [
            {
                "stack": stack,
                "samples": count,
                "share": count / total if total else 0.0,
            }
            for stack, count in ranked
        ]

    def collapsed(self) -> str:
        """The full profile in collapsed-stack text (``stack count``).

        One ``frames... N`` line per distinct stack, root frame first,
        frames joined by ``;`` — feed it straight to ``flamegraph.pl``
        or paste into speedscope.  The stage marker leads each stack,
        so flamegraphs group by pipeline stage at the root.
        """
        with self._lock:
            lines = [f"{stack} {count}"
                     for stack, count in sorted(self._stacks.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    # -- registry integration ----------------------------------------------------

    def attach(self, registry) -> None:
        """Declare the ``monilog_profile_*`` families and mirror into
        them at exposition time (first call wins; later calls no-op).

        Deliberately *not* part of the static telemetry catalog:
        profile families exist only while a profiler does, so a
        profiler-off pipeline exposes zero ``monilog_profile_*``
        families — absence is the "off" signal, exactly like tracing.
        """
        if self._attached:
            return
        self._attached = True
        samples = registry.counter(
            "monilog_profile_samples_total",
            "Stack samples taken by the continuous profiler")
        stacks = registry.gauge(
            "monilog_profile_stacks",
            "Distinct collapsed stacks currently retained")
        evictions = registry.counter(
            "monilog_profile_evictions_total",
            "Collapsed stacks evicted by the capacity bound "
            "(grow profile_stacks if > 0)")
        overhead = registry.counter(
            "monilog_profile_overhead_seconds_total",
            "Seconds the sampler thread spent walking frames")
        stage_samples = registry.counter(
            "monilog_profile_stage_samples_total",
            "Stack samples attributed per pipeline stage",
            ("tenant", "stage"))

        def collect() -> None:
            with self._lock:
                samples.set_total(self._samples)
                stacks.set(len(self._stacks))
                evictions.set_total(self._evictions)
                overhead.set_total(self._overhead)
                per_stage = dict(self._stage_samples)
            for (tenant, stage), count in per_stage.items():
                stage_samples.labels(
                    tenant=tenant, stage=stage).set_total(count)

        registry.collect(collect)
