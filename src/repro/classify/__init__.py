"""Anomaly classification (MoniLog stage 3, paper §V).

Detected anomalies receive a *type* (which team pool handles them) and
a *criticality* level.  Both taxonomies are defined by monitoring
teams, so the module is built around a customizable pool system
(Fig. 3): one default pool plus administrator-created pools.

The classifier is trained *passively*: "Each time an alert is moved
from a pool to another, it is used as an assessment signal [...] every
time the level of criticality is manually modified, it is used to
improve further anomaly evaluation."  No labelling campaign is
required; the admin's routine actions are the supervision.
"""

from repro.classify.pools import Pool, PoolManager, RoutedAlert
from repro.classify.features import featurize_report
from repro.classify.classifier import AnomalyClassifier, Criticality
from repro.classify.feedback import AdministratorSimulator, AdminPolicy
from repro.classify.suppression import AlertDeduplicator, alert_signature

__all__ = [
    "AdminPolicy",
    "AlertDeduplicator",
    "AdministratorSimulator",
    "AnomalyClassifier",
    "Criticality",
    "Pool",
    "PoolManager",
    "RoutedAlert",
    "alert_signature",
    "featurize_report",
]
