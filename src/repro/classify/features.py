"""Featurization of anomaly reports for the classifier.

An anomaly report is turned into a bag-of-features counting the
signals a monitoring team member actually looks at when routing an
alert: the tokens of the involved templates, the sources, the
severity profile, and the detector's stated reasons.  The bag
representation lets the online naive-Bayes classifier update in O(#
features) per admin action — passive learning must be cheap.
"""

from __future__ import annotations

from collections import Counter

from repro.core.reports import AnomalyReport
from repro.logs.record import WILDCARD, tokenize


def featurize_report(report: AnomalyReport) -> Counter[str]:
    """Bag-of-features of one anomaly report.

    Feature namespaces are prefixed (``token:``, ``source:`` ...) so
    the classifier never confuses a source named "error" with the word
    "error" in a template.
    """
    features: Counter[str] = Counter()
    for template in report.templates:
        for token in tokenize(template):
            if token != WILDCARD:
                features[f"token:{token.lower()}"] += 1
    for source in report.sources:
        features[f"source:{source}"] += 1
    for event in report.events:
        features[f"severity:{event.record.severity.name}"] += 1
    for reason in report.detection.reasons:
        for token in tokenize(reason)[:8]:
            features[f"reason:{token.lower()}"] += 1
    features[f"span:{'multi' if len(report.sources) > 1 else 'single'}-source"] += 1
    return features
