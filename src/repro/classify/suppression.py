"""Alert deduplication and suppression.

At "millions of log lines each second" (§II), one incident produces a
*storm* of near-identical anomaly reports; paging a team once per
report buries the signal.  The deduplicator sits between the
classifier and the pools and folds repeats:

* two alerts are *duplicates* when they share a signature — the set of
  involved templates plus the involved sources — within
  ``window`` seconds of stream time;
* the first alert of a signature passes through; repeats within the
  window are suppressed and counted on the surviving alert's
  :class:`SuppressionRecord`;
* a signature quiet for ``window`` seconds fires again (incidents that
  resume deserve a fresh page).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.reports import ClassifiedAlert


def alert_signature(alert: ClassifiedAlert) -> tuple:
    """The identity used for deduplication."""
    return (
        tuple(sorted(set(alert.report.templates))),
        tuple(sorted(set(alert.report.sources))),
    )


@dataclass
class SuppressionRecord:
    """Bookkeeping for one live signature."""

    first_alert: ClassifiedAlert
    last_seen: float
    suppressed: int = 0


class AlertDeduplicator:
    """Fold repeated alerts within a stream-time window.

    Args:
        window: seconds of stream time a signature stays suppressed
            after its last occurrence.
    """

    def __init__(self, window: float = 300.0):
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = window
        self._live: dict[tuple, SuppressionRecord] = {}
        self.total_seen = 0
        self.total_suppressed = 0

    def offer(self, alert: ClassifiedAlert) -> ClassifiedAlert | None:
        """Pass the alert through, or ``None`` if it is a duplicate."""
        self.total_seen += 1
        signature = alert_signature(alert)
        now = alert.report.end_time
        record = self._live.get(signature)
        if record is not None and now - record.last_seen <= self.window:
            record.last_seen = now
            record.suppressed += 1
            self.total_suppressed += 1
            return None
        self._live[signature] = SuppressionRecord(
            first_alert=alert, last_seen=now
        )
        return alert

    def suppressed_count(self, alert: ClassifiedAlert) -> int:
        """How many repeats were folded into ``alert`` so far."""
        record = self._live.get(alert_signature(alert))
        return record.suppressed if record is not None else 0

    @property
    def live_signatures(self) -> int:
        return len(self._live)

    def expire(self, now: float) -> None:
        """Drop signatures quiet for longer than the window."""
        stale = [
            signature
            for signature, record in self._live.items()
            if now - record.last_seen > self.window
        ]
        for signature in stale:
            del self._live[signature]
