"""Simulated administrators: the passive-learning supervision source.

The paper's classifier learns "by observing the administrator's
actions".  No humans are available in a reproduction, so
:class:`AdministratorSimulator` plays the monitoring team: it holds a
hidden :class:`AdminPolicy` (the organization's true routing rules)
and reviews delivered alerts, moving the misrouted ones and correcting
wrong criticalities — exactly the signals a real admin produces as a
side effect of their work.

The simulator is intentionally *lazy*, like real operators: it reviews
each alert with probability ``diligence`` and otherwise leaves it
where it landed.  Experiments can sweep diligence to measure how much
passive signal the classifier needs (Fig. 3 bench).
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.classify.pools import PoolManager
from repro.core.reports import AnomalyReport, ClassifiedAlert


@dataclass(frozen=True)
class AdminPolicy:
    """The hidden ground-truth routing policy.

    ``route`` maps an anomaly report to its correct (pool,
    criticality).  Policies are plain functions so experiments can
    encode arbitrary team structures.
    """

    route: Callable[[AnomalyReport], tuple[str, str]]

    def correct_pool(self, report: AnomalyReport) -> str:
        return self.route(report)[0]

    def correct_criticality(self, report: AnomalyReport) -> str:
        return self.route(report)[1]


def source_based_policy(
    pool_of_source: dict[str, str],
    default_pool: str = "default",
    critical_severity: str = "ERROR",
) -> AdminPolicy:
    """A realistic policy: route by the dominant source, escalate errors.

    Teams usually own systems, and severity drives criticality; this
    mirrors the Team A / Team B split of Fig. 3.
    """

    def route(report: AnomalyReport) -> tuple[str, str]:
        pool = pool_of_source.get(report.sources[0], default_pool)
        if len(report.sources) > 1:
            # Cross-source incidents conventionally go to the first
            # involved team but at raised criticality.
            criticality = "high"
        elif report.max_severity.name in (critical_severity, "CRITICAL"):
            criticality = "high"
        elif report.max_severity.name == "WARNING":
            criticality = "moderate"
        else:
            criticality = "low"
        return pool, criticality

    return AdminPolicy(route=route)


class AdministratorSimulator:
    """Reviews delivered alerts and issues corrective admin actions.

    Args:
        manager: the pool manager to act on.
        policy: the hidden ground truth.
        diligence: probability an alert gets reviewed at all.
        seed: RNG seed for the diligence draw.
    """

    def __init__(
        self,
        manager: PoolManager,
        policy: AdminPolicy,
        diligence: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= diligence <= 1.0:
            raise ValueError(f"diligence must be in [0, 1], got {diligence}")
        self.manager = manager
        self.policy = policy
        self.diligence = diligence
        self._rng = random.Random(seed)
        self.reviews = 0
        self.pool_moves = 0
        self.criticality_edits = 0

    def review(self, alert: ClassifiedAlert) -> ClassifiedAlert:
        """Review one delivered alert; returns its final state."""
        if self._rng.random() >= self.diligence:
            return alert
        self.reviews += 1
        correct_pool, correct_criticality = self.policy.route(alert.report)
        current = alert
        if current.pool != correct_pool:
            current = self.manager.move_alert(current, correct_pool)
            self.pool_moves += 1
        if current.criticality != correct_criticality:
            current = self.manager.set_criticality(current, correct_criticality)
            self.criticality_edits += 1
        return current
