"""The pool system (paper Fig. 3).

"Initially, there is just one default pool, but additional pools can be
created or deleted by administrators."  A pool is where a team receives
the alerts it is responsible for; moving an alert between pools is both
a workflow action and a training signal.

:class:`PoolManager` owns the pool set and the alert placements, and
notifies registered feedback listeners (the classifier) on every admin
action — the passive-learning hook.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.reports import ClassifiedAlert

DEFAULT_POOL = "default"

#: Listener signature: (alert, kind, old_value, new_value).  ``kind``
#: is ``"pool"`` or ``"criticality"``.
FeedbackListener = Callable[[ClassifiedAlert, str, str, str], None]


@dataclass
class Pool:
    """One alert pool, typically owned by one team."""

    name: str
    description: str = ""
    alerts: list[ClassifiedAlert] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.alerts)


class PoolManager:
    """Pools, alert placement, and admin actions.

    All mutation goes through admin-action methods (:meth:`move_alert`,
    :meth:`set_criticality`) so every correction reaches the feedback
    listeners exactly once.
    """

    def __init__(self) -> None:
        self._pools: dict[str, Pool] = {
            DEFAULT_POOL: Pool(DEFAULT_POOL, "unrouted alerts")
        }
        self._listeners: list[FeedbackListener] = []

    # -- pool administration -------------------------------------------------

    def create_pool(self, name: str, description: str = "") -> Pool:
        if name in self._pools:
            raise ValueError(f"pool {name!r} already exists")
        pool = Pool(name, description)
        self._pools[name] = pool
        return pool

    def delete_pool(self, name: str, *, notify: bool = True) -> None:
        """Delete a pool; its alerts return to the default pool.

        Deleting a pool is an admin action, so by default every
        relocated alert reaches the feedback listeners as a pool move
        (``name`` → default) — the classifier must unlearn routes into
        a pool that no longer exists.  Pass ``notify=False`` when the
        deletion is housekeeping that should not count as an assessment
        of where those alerts belong (e.g. re-organizing teams before
        re-creating the pool under another name).
        """
        if name == DEFAULT_POOL:
            raise ValueError("the default pool cannot be deleted")
        pool = self._pools.pop(name, None)
        if pool is None:
            raise KeyError(f"no pool named {name!r}")
        for alert in pool.alerts:
            moved = alert.moved_to(DEFAULT_POOL)
            self._pools[DEFAULT_POOL].alerts.append(moved)
            if notify:
                self._notify(moved, "pool", name, DEFAULT_POOL)

    def pool(self, name: str) -> Pool:
        return self._pools[name]

    @property
    def pool_names(self) -> list[str]:
        return list(self._pools)

    # -- alert flow ------------------------------------------------------------

    def deliver(self, alert: ClassifiedAlert) -> ClassifiedAlert:
        """Place a freshly classified alert into its predicted pool.

        Unknown pools fall back to the default pool (a classifier may
        have learned a pool that an admin later deleted).
        """
        pool_name = alert.pool if alert.pool in self._pools else DEFAULT_POOL
        placed = alert.moved_to(pool_name)
        self._pools[pool_name].alerts.append(placed)
        return placed

    def subscribe(self, listener: FeedbackListener) -> None:
        self._listeners.append(listener)

    def _notify(
        self, alert: ClassifiedAlert, kind: str, old: str, new: str
    ) -> None:
        for listener in self._listeners:
            listener(alert, kind, old, new)

    # -- admin actions (the passive training signals) ---------------------------

    def move_alert(
        self, alert: ClassifiedAlert, to_pool: str
    ) -> ClassifiedAlert:
        """Admin action: move an alert to another pool.

        Returns the relocated alert; listeners receive the assessment
        signal.
        """
        if to_pool not in self._pools:
            raise KeyError(f"no pool named {to_pool!r}")
        source_pool = self._pools[alert.pool]
        try:
            source_pool.alerts.remove(alert)
        except ValueError:
            raise KeyError(
                f"alert #{alert.report.report_id} is not in pool {alert.pool!r}"
            ) from None
        moved = alert.moved_to(to_pool)
        self._pools[to_pool].alerts.append(moved)
        self._notify(moved, "pool", alert.pool, to_pool)
        return moved

    def set_criticality(
        self, alert: ClassifiedAlert, criticality: str
    ) -> ClassifiedAlert:
        """Admin action: correct an alert's criticality level."""
        pool = self._pools[alert.pool]
        try:
            index = pool.alerts.index(alert)
        except ValueError:
            raise KeyError(
                f"alert #{alert.report.report_id} is not in pool {alert.pool!r}"
            ) from None
        updated = alert.with_criticality(criticality)
        pool.alerts[index] = updated
        self._notify(updated, "criticality", alert.criticality, criticality)
        return updated


@dataclass(frozen=True)
class RoutedAlert:
    """An alert with its final placement, for experiment bookkeeping."""

    alert: ClassifiedAlert
    predicted_pool: str
    final_pool: str

    @property
    def correct(self) -> bool:
        return self.predicted_pool == self.final_pool
