"""The online anomaly classifier (type + criticality).

A multinomial naive Bayes over report features, updated online from
admin actions: each pool move or criticality edit adds the report's
feature bag to the corrected class.  Naive Bayes is the right tool for
passive learning: updates are counter increments, predictions stay
calibrated with very few examples per class, and new classes (new
pools) can appear at any time — all properties the paper's design
needs.

Criticality uses a second, independent NB over the same features with
the levels as classes (the paper's example scale: low / moderate /
high).
"""

from __future__ import annotations

import math
from collections import Counter

from repro.classify.features import featurize_report
from repro.classify.pools import DEFAULT_POOL
from repro.core.reports import AnomalyReport, ClassifiedAlert


class Criticality:
    """The default criticality scale from the paper (§V)."""

    LOW = "low"
    MODERATE = "moderate"
    HIGH = "high"
    SCALE = (LOW, MODERATE, HIGH)


class _OnlineNaiveBayes:
    """Multinomial NB with Laplace smoothing and online counter updates."""

    def __init__(self, smoothing: float = 1.0):
        self.smoothing = smoothing
        self.class_counts: Counter[str] = Counter()
        self.feature_counts: dict[str, Counter[str]] = {}
        self.feature_totals: Counter[str] = Counter()
        self.vocabulary: set[str] = set()

    @property
    def classes(self) -> list[str]:
        return list(self.class_counts)

    def observe(self, features: Counter[str], label: str) -> None:
        self.class_counts[label] += 1
        per_class = self.feature_counts.setdefault(label, Counter())
        for feature, count in features.items():
            per_class[feature] += count
            self.feature_totals[label] += count
            self.vocabulary.add(feature)

    def log_posterior(self, features: Counter[str]) -> dict[str, float]:
        total_observations = sum(self.class_counts.values())
        if total_observations == 0:
            return {}
        vocabulary_size = max(1, len(self.vocabulary))
        scores: dict[str, float] = {}
        for label, class_count in self.class_counts.items():
            score = math.log(class_count / total_observations)
            per_class = self.feature_counts.get(label, Counter())
            denominator = self.feature_totals[label] + self.smoothing * vocabulary_size
            for feature, count in features.items():
                likelihood = (per_class[feature] + self.smoothing) / denominator
                score += count * math.log(likelihood)
            scores[label] = score
        return scores

    def predict(self, features: Counter[str]) -> tuple[str | None, float]:
        """(best class, posterior probability); (None, 0) if untrained."""
        scores = self.log_posterior(features)
        if not scores:
            return None, 0.0
        best = max(scores, key=lambda label: scores[label])
        # Convert to a proper posterior for the confidence signal.
        peak = scores[best]
        total = sum(math.exp(score - peak) for score in scores.values())
        return best, 1.0 / total


class AnomalyClassifier:
    """Pool + criticality classifier with passive learning.

    Wire it to a :class:`~repro.classify.pools.PoolManager` with
    :meth:`attach`; every admin action then becomes a training example
    without further code.  Until it has seen any feedback it routes
    everything to the default pool at the lowest criticality — honest
    behaviour for a cold start.
    """

    def __init__(self, smoothing: float = 1.0):
        self._pool_model = _OnlineNaiveBayes(smoothing)
        self._criticality_model = _OnlineNaiveBayes(smoothing)
        self.feedback_count = 0

    # -- classification -------------------------------------------------------

    def classify(self, report: AnomalyReport) -> ClassifiedAlert:
        features = featurize_report(report)
        pool, pool_confidence = self._pool_model.predict(features)
        criticality, _ = self._criticality_model.predict(features)
        return ClassifiedAlert(
            report=report,
            pool=pool if pool is not None else DEFAULT_POOL,
            criticality=(
                criticality if criticality is not None else Criticality.LOW
            ),
            confidence=pool_confidence,
        )

    # -- passive learning -------------------------------------------------------

    def attach(self, manager) -> "AnomalyClassifier":
        """Subscribe to a PoolManager's admin actions."""
        manager.subscribe(self.on_admin_action)
        return self

    def on_admin_action(
        self, alert: ClassifiedAlert, kind: str, old: str, new: str
    ) -> None:
        """Feedback listener: learn from one admin correction."""
        features = featurize_report(alert.report)
        if kind == "pool":
            self._pool_model.observe(features, new)
        elif kind == "criticality":
            self._criticality_model.observe(features, new)
        else:
            raise ValueError(f"unknown admin action kind: {kind!r}")
        self.feedback_count += 1

    def confirm(self, alert: ClassifiedAlert) -> None:
        """Learn from an implicit confirmation.

        An alert the admin *left where it was delivered* is also a
        signal (the placement was acceptable); pipelines may call this
        periodically for aged, untouched alerts.
        """
        features = featurize_report(alert.report)
        self._pool_model.observe(features, alert.pool)
        self._criticality_model.observe(features, alert.criticality)
        self.feedback_count += 1
