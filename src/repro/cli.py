"""Command-line interface: ``python -m repro <command>``.

Eleven commands covering the adoption path of a downstream user:

* ``generate`` — write a synthetic ground-truthed corpus to a log file
  (dashed Fig. 2 layout) for trying the tools on disk;
* ``parse``    — structure a log file with any registered template
  miner and print the discovered template inventory;
* ``detect``   — train a registered detector on the head of a log file
  and report anomalous sessions in the tail;
* ``pipeline`` — run the full MoniLog system over a history file and a
  live file, printing classified alerts;
* ``tail``     — train on a history file, then *live-ingest* N files
  and/or sockets concurrently through the async front-end
  (:mod:`repro.ingest`): watermark merge, micro-batching, credit-based
  back-pressure, and per-source checkpoints for exact resume;
* ``stats``    — run the pipeline with telemetry enabled and print the
  JSON metric snapshot (or, with ``--metrics-port``/``--scrape``, the
  Prometheus exposition fetched through the real HTTP endpoint).  On a
  multi-tenant spec the whole gateway runs and ``--tenant NAME`` cuts
  the exposition down to one tenant's samples;
* ``serve``    — run the multi-tenant gateway of a spec with
  ``[tenants.*]`` tables: every tenant's sources ingest concurrently
  through per-tenant back-pressured services over shared executor
  pools, alerts print tagged with their tenant, and one ``/metrics``
  endpoint serves every tenant with a ``tenant`` label (see
  ``docs/gateway.md``);
* ``trace``    — run the pipeline with end-to-end tracing enabled and
  print the sampled span table (source read → merge → parse → detect →
  classify), with ``--stage``/``--last`` filters, ``--json``, and
  ``--dump PATH`` for the full trace+provenance JSON;
* ``explain``  — resolve one alert id to its full provenance: source
  names and byte offsets, template ids, detector window and score,
  and the pool decision — from a ``--trace-file`` dump or by rerunning
  ``--history``/``--live`` with tracing forced on;
* ``profile``  — run the pipeline with the continuous sampling
  profiler forced on and print the top-N hottest stacks,
  stage-attributed, with ``--collapsed FILE`` dumping the full
  flamegraph.pl-ready collapsed-stack text (see
  ``docs/profiling.md``);
* ``perf``     — diff the append-only perf-trajectory ledger
  (``benchmarks/results/TRAJECTORY.jsonl``): the latest entry of each
  bench against the median of its history, exiting non-zero on a
  regression beyond the tolerance band (the same code path as
  ``scripts/perf_diff.py``).

``--telemetry`` / ``--metrics-port`` / ``--autoscale`` arm the
observability subsystem on ``pipeline`` and ``tail``: metrics serve at
``http://127.0.0.1:<port>/metrics`` (Prometheus) and ``/telemetry``
(JSON) while the command runs, and the autoscale controller adapts
batch/credit knobs live (see ``docs/telemetry.md``).

The CLI is a thin veneer over the unified pipeline API
(:mod:`repro.api`): component menus come from the registry, and the
``pipeline``/``tail`` flags map 1:1 onto
:class:`~repro.api.spec.PipelineSpec` fields.  ``--spec path.toml``
loads a full spec file; precedence is **flags > MONILOG_* environment
> spec file > defaults**, so a checked-in spec can be nudged per run.
Output is identical across batch sizes, shard counts, and executors —
those knobs change wall-clock only.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from collections.abc import Sequence

from repro.api.pipeline import Pipeline
from repro.api.registry import REGISTRY
from repro.api.spec import PipelineSpec
from repro.core.executors import default_executor_name
from repro.core.validation import ConfigError
from repro.datasets import generate_bgl, generate_cloud_platform, generate_hdfs
from repro.detection import sessions_from_parsed
from repro.eval import Table
from repro.logs.formats import read_log_lines, render_line
from repro.logs.sessions import SessionKeyExtractor
from repro.parsing import (
    BATCH_PARSERS,
    LogramParser,
    default_masker,
    no_masker,
    parse_in_batches,
)

#: Parser menu for single-instance construction sites: the distributed
#: Drain is reached via --shards (it wraps per-shard Drains), not by
#: name.
_SINGLE_PARSERS = [name for name in REGISTRY.names("parser")
                   if name != "drain-distributed"]

_GENERATORS = {
    "hdfs": lambda args: generate_hdfs(
        sessions=args.sessions, anomaly_rate=args.anomaly_rate, seed=args.seed
    ),
    "bgl": lambda args: generate_bgl(
        records=args.sessions * 15, seed=args.seed
    ),
    "cloud": lambda args: generate_cloud_platform(
        sessions=args.sessions, anomaly_rate=args.anomaly_rate, seed=args.seed
    ),
}


def _read_records(path: str, sessionize: bool = False):
    with open(path, encoding="utf-8") as handle:
        records = list(read_log_lines(handle))
    if sessionize:
        records = list(SessionKeyExtractor().assign(records))
    return records


def _batch_size(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"batch size must be >= 0 (0 disables batching), got {value}"
        )
    return value


def _shard_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"shard count must be >= 0 (0 disables sharding), got {value}"
        )
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected > 0, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected >= 0, got {value}")
    return value


def _sample_rate(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"sample rate must be in 0.0..1.0, got {value}"
        )
    return value


def _socket_spec(text: str) -> tuple[str, int]:
    host, separator, port = text.rpartition(":")
    if not separator or not host:
        raise argparse.ArgumentTypeError(
            f"socket spec must be host:port, got {text!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"socket port must be an integer, got {port!r}"
        ) from None


#: ``pipeline``/``tail`` argparse dest -> PipelineSpec field.  Every
#: flag defaults to None so "user said nothing" is distinguishable and
#: the spec file / environment / dataclass default shows through.
_SPEC_FLAGS = {
    "parser": "parser",
    "detector": "detector",
    "masking": "masking",
    "extract": "extract_structured",
    "batch_size": "batch_size",
    "shards": "shards",
    "detector_shards": "detector_shards",
    "executor": "executor",
    # tail-only knobs
    "ingest_batch_size": "ingest_batch_size",
    "max_batch_age": "max_batch_age",
    "lateness": "lateness",
    "credits": "credits",
    "poll_interval": "poll_interval",
    "checkpoint": "checkpoint",
    "session_timeout": "session_timeout",
}


def _spec_from_args(args: argparse.Namespace, **forced) -> PipelineSpec:
    """flags > MONILOG_* env > ``--spec`` file > defaults, aggregated.

    ``forced`` fields (e.g. ``streaming=True`` for ``tail``) apply
    last — they are part of the command's contract, not user knobs.
    The observability flags merge *into* the spec's tables instead of
    replacing them: ``--metrics-port`` on top of a ``[telemetry]``
    table changes the port and keeps the rest.
    """
    try:
        spec = (PipelineSpec.from_file(args.spec) if getattr(args, "spec", None)
                else PipelineSpec())
        spec = spec.with_env()
        overrides = {
            field: getattr(args, flag)
            for flag, field in _SPEC_FLAGS.items()
            if getattr(args, flag, None) is not None
        }
        telemetry = dict(spec.telemetry)
        if getattr(args, "telemetry", None):
            telemetry["enabled"] = True
        if getattr(args, "metrics_port", None) is not None:
            telemetry["enabled"] = True
            telemetry["metrics_port"] = args.metrics_port
        if getattr(args, "trace", None):
            telemetry["enabled"] = True
            telemetry["tracing"] = True
        if getattr(args, "trace_sample_rate", None) is not None:
            telemetry["enabled"] = True
            telemetry["tracing"] = True
            telemetry["trace_sample_rate"] = args.trace_sample_rate
        if getattr(args, "profile", None):
            telemetry["enabled"] = True
            telemetry["profile"] = True
        if getattr(args, "profile_hz", None) is not None:
            telemetry["enabled"] = True
            telemetry["profile"] = True
            telemetry["profile_hz"] = args.profile_hz
        if telemetry != spec.telemetry:
            overrides["telemetry"] = telemetry
        autoscale = dict(spec.autoscale)
        if getattr(args, "autoscale", None):
            autoscale["enabled"] = True
        if getattr(args, "autoscale_reshard", None):
            autoscale["enabled"] = True
            autoscale["reshard"] = True
        if autoscale != spec.autoscale:
            overrides["autoscale"] = autoscale
        overrides.update(forced)
        return spec.replace(**overrides) if overrides else spec
    except (ConfigError, ValueError, OSError) as error:
        raise SystemExit(f"repro: {error}") from None


def _add_spec_flags(command: argparse.ArgumentParser,
                    ingestion: bool = False) -> None:
    """The PipelineSpec-mapped flags shared by ``pipeline`` and ``tail``."""
    command.add_argument(
        "--spec", metavar="PATH",
        help="PipelineSpec file (.toml or .json); flags override it",
    )
    command.add_argument(
        "--parser", choices=_SINGLE_PARSERS,
        help="stage-1 template miner (spec field: parser; default drain)",
    )
    command.add_argument(
        "--detector", choices=REGISTRY.names("detector"),
        help="stage-2 anomaly detector (spec field: detector; "
             "default deeplog; catalog in docs/detectors.md)",
    )
    command.add_argument("--masking", action="store_true", default=None,
                         help="apply the expert regex masker before mining")
    command.add_argument("--extract", action="store_true", default=None,
                         help="run JSON/XML payload extraction first "
                              "(spec field: extract_structured)")
    command.add_argument(
        "--batch-size", type=_batch_size,
        help="micro-batch size for the amortized parse path "
             "(0 = per-record; alerts are identical either way; "
             "spec field: batch_size, default 512)",
    )
    command.add_argument(
        "--shards", type=_shard_count,
        help="run the sharded pipeline with this many parser shards "
             "(0 = single instance; spec field: shards)",
    )
    command.add_argument(
        "--detector-shards", type=_positive_int,
        help="detector replicas in the sharded runtime (with --shards; "
             "spec field: detector_shards)",
    )
    command.add_argument(
        "--executor", choices=REGISTRY.names("executor"),
        help="how shard work runs with --shards: serially, on a thread "
             "pool, or on a process pool (output is identical; default "
             "honors MONILOG_EXECUTOR)",
    )
    command.add_argument(
        "--telemetry", action="store_true", default=None,
        help="enable runtime telemetry (spec table: [telemetry]); "
             "alerts are byte-identical with it on or off",
    )
    command.add_argument(
        "--metrics-port", type=int, metavar="PORT",
        help="serve Prometheus metrics at /metrics and the JSON "
             "snapshot at /telemetry on this port while running "
             "(0 = free ephemeral port; implies --telemetry)",
    )
    command.add_argument(
        "--trace", action="store_true", default=None,
        help="enable sampled end-to-end tracing and alert provenance "
             "(spec key: [telemetry] tracing; implies --telemetry); "
             "alerts stay byte-identical, see `repro explain`",
    )
    command.add_argument(
        "--trace-sample-rate", type=_sample_rate, metavar="RATE",
        help="fraction of batches/records that carry a full span tree "
             "(deterministic counter sampling, no RNG; 1.0 = all, "
             "implies --trace; spec key: [telemetry] trace_sample_rate)",
    )
    command.add_argument(
        "--profile", action="store_true", default=None,
        help="run the continuous sampling profiler for the lifetime "
             "of the run (spec key: [telemetry] profile; implies "
             "--telemetry); stage-attributed hotspots at /profile and "
             "`repro profile`, alerts stay byte-identical",
    )
    command.add_argument(
        "--profile-hz", type=_positive_float, metavar="HZ",
        help="profiler sampling rate in samples/second (implies "
             "--profile; spec key: [telemetry] profile_hz, "
             "default 100)",
    )
    command.add_argument(
        "--autoscale", action="store_true", default=None,
        help="adapt batch sizes and ingestion credits at runtime from "
             "measured rates and latencies (spec table: [autoscale]); "
             "alerts stay byte-identical",
    )
    command.add_argument(
        "--autoscale-reshard", action="store_true", default=None,
        help="let the autoscaler also resize the parser shard count "
             "live (implies --autoscale; spec key: [autoscale] "
             "reshard; template state migrates with relocated keys "
             "and alerts stay byte-identical)",
    )
    if not ingestion:
        return
    command.add_argument(
        "--ingest-batch-size", dest="ingest_batch_size", type=_positive_int,
        help="records per micro-batch handed to the pipeline "
             "(spec field: ingest_batch_size, default 256)",
    )
    command.add_argument(
        "--max-batch-age", type=_positive_float,
        help="seconds a non-empty batch may wait before flushing "
             "(spec field: max_batch_age)",
    )
    command.add_argument(
        "--lateness", type=_nonnegative_float,
        help="out-of-order tolerance of the live merge in event seconds "
             "(spec field: lateness)",
    )
    command.add_argument(
        "--credits", type=_positive_int,
        help="max records in flight between readers and the pipeline "
             "(spec field: credits)",
    )
    command.add_argument(
        "--poll-interval", type=_positive_float,
        help="idle-poll cadence for file tails in seconds "
             "(spec field: poll_interval)",
    )
    command.add_argument(
        "--checkpoint", metavar="PATH",
        help="offset checkpoint file; resume skips processed records "
             "(spec field: checkpoint)",
    )
    command.add_argument(
        "--session-timeout", type=_positive_float,
        help="idle seconds of stream time before a session closes "
             "(spec field: session_timeout, default 30)",
    )
    command.add_argument(
        "--socket-framing", choices=["lines", "jsonl", "framed"],
        default=None,
        help="framing of --socket streams: 'lines' (trusted newline "
             "protocol), 'jsonl' (JSON-lines; messages containing "
             "newlines survive, since JSON escapes them in the frame), "
             "or 'framed' (length-prefixed binary frames carrying a "
             "tenant id; see docs/gateway.md)",
    )


def _print_alert(alert) -> None:
    print(
        f"[{alert.criticality:>8s}] pool={alert.pool} "
        f"{alert.report.summary()}",
        flush=True,
    )


def _command_generate(args: argparse.Namespace) -> int:
    dataset = _GENERATORS[args.dataset](args)
    with open(args.output, "w", encoding="utf-8") as handle:
        for record in dataset.records:
            handle.write(render_line(record) + "\n")
    print(
        f"wrote {len(dataset.records)} records "
        f"({len(dataset.anomalous_sessions())} anomalous sessions) "
        f"to {args.output}"
    )
    if args.labels:
        with open(args.labels, "w", encoding="utf-8") as handle:
            for session_id, truth in dataset.sessions.items():
                label = truth.kind or ("anomaly" if truth.anomalous else "normal")
                handle.write(f"{session_id}\t{int(truth.anomalous)}\t{label}\n")
        print(f"wrote session labels to {args.labels}")
    return 0


def _command_parse(args: argparse.Namespace) -> int:
    records = _read_records(args.input)
    masker = default_masker() if args.masking else no_masker()
    if args.shards:
        if args.parser != "drain":
            raise SystemExit(
                "--shards runs the distributed Drain; "
                f"it cannot shard {args.parser!r}"
            )
        parser = REGISTRY.create(
            "parser", "drain-distributed", {},
            shards=args.shards,
            masker=masker,
            extract_structured=bool(args.extract),
            executor=args.executor,
        )
        template_of = parser.template_string
    else:
        parser = REGISTRY.create(
            "parser", args.parser, {},
            masker=masker, extract_structured=bool(args.extract),
        )
        template_of = lambda template_id: parser.store[template_id].template
        if args.parser in BATCH_PARSERS:
            parser.fit(records)
        if isinstance(parser, LogramParser):
            parser.warmup(records)
    if args.batch_size:
        parsed = parse_in_batches(parser, records, args.batch_size)
    else:
        parsed = parser.parse_all(records)
    counts: dict[int, int] = {}
    for event in parsed:
        counts[event.template_id] = counts.get(event.template_id, 0) + 1
    table = Table(
        f"{args.parser} on {args.input}: {parser.template_count} templates",
        ["id", "count", "template"],
    )
    for template_id, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        table.add_row(template_id, count, template_of(template_id))
    table.print()
    if args.shards:
        # --batch-size 0 parses record by record, which never fans out
        # to the executor; attribute the run to the path that ran.
        executor_name = args.executor or parser.executor.name
        mode = f"{executor_name} executor" if args.batch_size else "per-record"
        loads = ", ".join(str(load) for load in parser.shard_loads)
        print(f"\nshard loads ({mode}): {loads}")
        parser.executor.close()
    return 0


def _command_detect(args: argparse.Namespace) -> int:
    records = _read_records(args.input, sessionize=True)
    cut = int(len(records) * args.train_fraction)
    masker = default_masker() if args.masking else no_masker()
    parser = REGISTRY.create(
        "parser", args.parser, {},
        masker=masker, extract_structured=bool(args.extract),
    )
    if args.parser in BATCH_PARSERS:
        parser.fit(records[:cut])
    if isinstance(parser, LogramParser):
        parser.warmup(records[:cut])
    train_sessions = [
        s for s in sessions_from_parsed(parser.parse_all(records[:cut])).values()
        if len(s) >= 2
    ]
    detector = REGISTRY.create("detector", args.detector, {})
    detector.fit(train_sessions, [False] * len(train_sessions))
    test_map = sessions_from_parsed(parser.parse_all(records[cut:]))
    flagged = 0
    for session_id, session in test_map.items():
        if len(session) < 2:
            continue
        result = detector.detect(session)
        if result.anomalous:
            flagged += 1
            print(f"ANOMALY {session_id} score={result.score:.3f}")
            for reason in result.reasons[:3]:
                print(f"    {reason}")
    print(f"\n{flagged}/{len(test_map)} sessions flagged by {args.detector}")
    return 0


def _command_pipeline(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    history = _read_records(args.history, sessionize=True)
    live = _read_records(args.live, sessionize=True)
    with Pipeline.from_spec(spec) as pipeline:
        pipeline.fit(history)
        alerts = pipeline.process(live)
        for alert in alerts:
            print(
                f"[{alert.criticality:>8s}] pool={alert.pool} "
                f"{alert.report.summary()}"
            )
        if spec.shards:
            loads = ", ".join(str(load)
                              for load in pipeline.parser.shard_loads)
            print(
                f"\nparsed {sum(pipeline.parser.shard_loads)} records "
                f"across {spec.shards} shards ({spec.executor} executor, "
                f"loads {loads}), {pipeline.parser.template_count} templates, "
                f"{len(alerts)} anomalies"
            )
        else:
            stats = pipeline.stats()
            print(
                f"\nparsed {stats.records_parsed} records, "
                f"{stats.templates_discovered} templates, "
                f"{stats.anomalies_detected} anomalies"
            )
        if pipeline.tracing_enabled and getattr(args, "trace_dump", None):
            with open(args.trace_dump, "w", encoding="utf-8") as handle:
                json.dump(pipeline.trace_dump(), handle, indent=2)
            print(f"wrote trace dump to {args.trace_dump}")
        if (pipeline.tracing_enabled and alerts
                and getattr(args, "trace_dump", None)):
            ids = ", ".join(
                str(alert.report.report_id) for alert in alerts[:5])
            print(f"explain an alert: repro explain <id> "
                  f"--trace-file {args.trace_dump} "
                  f"(ids: {ids}{', ...' if len(alerts) > 5 else ''})")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    """Run the pipeline with telemetry on; print the exposition.

    Default output is the JSON snapshot (``Pipeline.telemetry()``).
    With ``--scrape`` the command instead starts the HTTP endpoint
    (``--metrics-port``, default ephemeral), fetches ``/metrics``
    through a real HTTP round-trip, and prints the Prometheus text —
    an end-to-end probe of the scrape path in one process.

    On a spec with ``[tenants.*]`` tables the whole gateway runs (every
    tenant fits on the history and processes the live file through its
    own pipeline), the shared exposition carries a ``tenant`` label on
    every family, and ``--tenant NAME`` filters it to one tenant.
    """
    spec = _spec_from_args(args)
    if spec.tenants:
        return _stats_gateway(args, spec)
    if args.tenant:
        raise SystemExit(
            "repro: --tenant needs a multi-tenant spec "
            "([tenants.*] tables); this spec declares none"
        )
    spec = spec.replace(telemetry=dict(spec.telemetry, enabled=True))
    history = _read_records(args.history, sessionize=True)
    live = _read_records(args.live, sessionize=True)
    with Pipeline.from_spec(spec) as pipeline:
        pipeline.fit(history)
        alerts = pipeline.process(live)
        if pipeline.autoscaler is not None:
            pipeline.autoscaler.tick()
        if args.scrape:
            server = pipeline.start_metrics_server()
            print(_scrape(f"{server.url}/metrics", args.scrape_timeout),
                  end="")
        else:
            print(json.dumps(pipeline.telemetry(), indent=2))
        print(f"# {len(alerts)} alerts over {args.live}", file=sys.stderr)
    return 0


def _stats_gateway(args: argparse.Namespace, spec) -> int:
    """The multi-tenant ``stats`` path: one gateway, filtered output."""
    from repro.gateway import Gateway
    from repro.telemetry.metrics import filter_prometheus, filter_snapshot

    gateway = Gateway(spec)
    if args.tenant and args.tenant not in gateway.tenants:
        raise SystemExit(
            f"repro: unknown tenant {args.tenant!r}; "
            f"declared: {gateway.tenants}"
        )
    history = _read_records(args.history, sessionize=True)
    live = _read_records(args.live, sessionize=True)
    with gateway:
        gateway.fit(history)
        alerts = gateway.process({name: live for name in gateway.tenants})
        if args.scrape:
            server = gateway.start_metrics_server(args.metrics_port or 0)
            text = _scrape(f"{server.url}/metrics", args.scrape_timeout)
            if args.tenant:
                text = filter_prometheus(text, tenant=args.tenant)
            print(text, end="")
        else:
            snapshot = gateway.telemetry()
            if args.tenant:
                snapshot = filter_snapshot(snapshot, tenant=args.tenant)
            print(json.dumps(snapshot, indent=2))
        per_tenant = ", ".join(
            f"{name}={sum(1 for a in alerts if a.tenant == name)}"
            for name in gateway.tenants
        )
        print(f"# {len(alerts)} alerts over {args.live} ({per_tenant})",
              file=sys.stderr)
    return 0


def _scrape(url: str, timeout: float) -> str:
    """One HTTP GET with a bounded connect/read timeout.

    ``urllib`` errors (connection refused, timeouts, DNS) all subclass
    :class:`OSError`; a scrape failure becomes a one-line diagnosis
    instead of a traceback.
    """
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read().decode("utf-8")
    except OSError as error:
        raise SystemExit(
            f"repro: scrape of {url} failed: {error}") from None


def _traced_pipeline(args: argparse.Namespace) -> Pipeline:
    """Fit-and-process a pipeline with tracing forced on.

    The rerun backbone of ``repro trace`` and ``repro explain``:
    identical spec resolution to ``repro pipeline``, with
    ``[telemetry] enabled/tracing`` forced true so every alert gets a
    provenance record (alerts themselves are byte-identical to an
    untraced run).
    """
    spec = _spec_from_args(args)
    spec = spec.replace(
        telemetry=dict(spec.telemetry, enabled=True, tracing=True))
    history = _read_records(args.history, sessionize=True)
    live = _read_records(args.live, sessionize=True)
    pipeline = Pipeline.from_spec(spec)
    pipeline.fit(history)
    pipeline.process(live)
    return pipeline


def _command_trace(args: argparse.Namespace) -> int:
    """Run with tracing on and print the sampled span table."""
    with _traced_pipeline(args) as pipeline:
        dump = pipeline.trace_dump()
        if args.dump:
            with open(args.dump, "w", encoding="utf-8") as handle:
                json.dump(dump, handle, indent=2)
            print(f"wrote trace dump to {args.dump}", file=sys.stderr)
        spans = dump["spans"]
        if args.stage:
            spans = [span for span in spans if span["name"] == args.stage]
        if args.last:
            spans = spans[-args.last:]
        if args.json:
            print(json.dumps(spans, indent=2))
        else:
            table = Table(
                f"{len(spans)} spans over {args.live} "
                f"(sample rate {dump['sample_rate']}, "
                f"{dump['evicted']} evicted)",
                ["trace", "span", "duration_ms", "cpu_ms", "detail"],
            )
            for span in spans:
                detail = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(span["attributes"].items()))
                table.add_row(
                    span["trace"], span["name"],
                    f"{span['duration'] * 1000:.3f}",
                    f"{span['cpu'] * 1000:.3f}",
                    detail,
                )
            table.print()
        print(f"# {len(dump['alerts'])} alerts carry provenance "
              f"(repro explain <id>)", file=sys.stderr)
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    """Run with profiling forced on; print the hotspot ranking.

    The offline counterpart of scraping ``/profile`` from a live
    pipeline: fit on the history, drain the live file (``--repeat``
    times — more passes mean more samples), stop the sampler, and
    print the top stacks.  ``--collapsed FILE`` additionally dumps the
    full profile in flamegraph.pl-ready collapsed-stack text.
    """
    spec = _spec_from_args(args)
    if spec.tenants:
        raise SystemExit(
            "repro: profile runs a single-tenant spec; for a gateway, "
            "scrape /profile from `repro serve --metrics-port`"
        )
    spec = spec.replace(
        telemetry=dict(spec.telemetry, enabled=True, profile=True))
    history = _read_records(args.history, sessionize=True)
    live = _read_records(args.live, sessionize=True)
    with Pipeline.from_spec(spec) as pipeline:
        pipeline.fit(history)
        alerts: list = []
        for _ in range(args.repeat):
            alerts = pipeline.process(live)
        profiler = pipeline.profiler
        profiler.stop()
        if args.collapsed:
            with open(args.collapsed, "w", encoding="utf-8") as handle:
                handle.write(profiler.collapsed())
            print(f"wrote collapsed stacks to {args.collapsed}",
                  file=sys.stderr)
        profile = pipeline.profile(limit=args.limit)
        if args.json:
            print(json.dumps(profile, indent=2))
        else:
            stats = profile["stats"]
            table = Table(
                f"top {len(profile['hotspots'])} of {stats['stacks']} "
                f"stacks ({stats['samples']} samples at "
                f"{stats['hz']:g} Hz)",
                ["samples", "share", "stack"],
            )
            for spot in profile["hotspots"]:
                table.add_row(spot["samples"], f"{spot['share']:.1%}",
                              spot["stack"])
            table.print()
            stages = ", ".join(f"{stage}={count}" for stage, count
                               in stats["stage_samples"].items())
            print(f"# stages: {stages or '(no samples)'}",
                  file=sys.stderr)
        print(f"# {len(alerts)} alerts per pass over {args.live} "
              f"(x{args.repeat}); sampler overhead "
              f"{profile['stats']['overhead_seconds']:.3f}s",
              file=sys.stderr)
    return 0


def _command_perf(args: argparse.Namespace) -> int:
    """Diff the perf-trajectory ledger (``scripts/perf_diff.py``)."""
    from repro.perf.trajectory import TrajectoryError, run_diff, self_test

    try:
        if args.self_test:
            return self_test()
        return run_diff(args.trajectory)
    except TrajectoryError as error:
        raise SystemExit(f"repro: {error}") from None


def _command_explain(args: argparse.Namespace) -> int:
    """Resolve one alert id to its provenance record."""
    from repro.telemetry.tracing import AlertProvenance

    if args.trace_file:
        with open(args.trace_file, encoding="utf-8") as handle:
            dump = json.load(handle)
        ledger = {entry["alert_id"]: entry
                  for entry in dump.get("alerts", [])}
        if args.alert_id not in ledger:
            known = ", ".join(str(alert_id) for alert_id in sorted(ledger))
            raise SystemExit(
                f"repro: no provenance for alert {args.alert_id} in "
                f"{args.trace_file}; known ids: {known or '(none)'}"
            )
        print(AlertProvenance.from_dict(ledger[args.alert_id]).render())
        return 0
    if not (args.history and args.live):
        raise SystemExit(
            "repro: explain needs either --trace-file DUMP.json (from "
            "`repro pipeline --trace --trace-dump` or `repro trace "
            "--dump`) or --history/--live to rerun with tracing on"
        )
    with _traced_pipeline(args) as pipeline:
        try:
            provenance = pipeline.explain(args.alert_id)
        except KeyError as error:
            raise SystemExit(f"repro: {error.args[0]}") from None
        print(provenance.render())
    return 0


def _command_tail(args: argparse.Namespace) -> int:
    # Legacy surface: ``tail --batch-size`` always meant records per
    # ingestion micro-batch.  Keep that meaning unless the explicit
    # --ingest-batch-size spelling is used.
    if args.batch_size is not None and args.ingest_batch_size is None:
        args.ingest_batch_size = args.batch_size
        args.batch_size = None
    spec = _spec_from_args(args, streaming=True)
    sources = [
        REGISTRY.create("source", "file", {},
                        path=path, follow=not args.once,
                        poll_interval=spec.poll_interval)
        for path in args.source
    ] + [
        # --once must terminate even when nothing is listening: cap the
        # dial attempts instead of retrying forever.
        REGISTRY.create("source", "socket", {},
                        host=host, port=port, reconnect=not args.once,
                        max_connect_attempts=3 if args.once else None,
                        framing=args.socket_framing or "lines")
        for host, port in args.socket
    ]
    if not sources:
        # No source flags: fall back to the spec's [[sources]] tables,
        # injecting the same run-mode defaults the flag path applies —
        # --once must terminate file tails and cap socket dials, and
        # file tails inherit the spec's poll cadence.
        sources = []
        for entry in spec.sources:
            options = {key: value for key, value in entry.items()
                       if key != "type"}
            if entry["type"] == "file":
                options.setdefault("follow", not args.once)
                options.setdefault("poll_interval", spec.poll_interval)
            elif entry["type"] == "socket" and args.once:
                options.setdefault("reconnect", False)
                options.setdefault("max_connect_attempts", 3)
            sources.append(REGISTRY.create("source", entry["type"], options))
    if not sources:
        raise SystemExit("tail needs at least one --source or --socket "
                         "(or [[sources]] in --spec)")
    history = _read_records(args.history, sessionize=True)
    pipeline = Pipeline.from_spec(spec)
    pipeline.fit(history)
    if pipeline.metrics_server is not None:
        print(f"serving metrics on {pipeline.metrics_server.url}/metrics",
              flush=True)
    # serve() wires the spec's checkpoint, telemetry collectors, and
    # autoscale controller into the service.
    service = pipeline.serve(sources, on_alert=_print_alert)

    async def tail_main() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, service.stop)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loops: Ctrl-C falls through as KeyboardInterrupt
        try:
            await service.run()
        finally:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError):
                    pass

    try:
        asyncio.run(tail_main())
    except KeyboardInterrupt:
        pass
    print(f"\n{service.stats().summary()}")
    pipeline.close()
    return 0


def _print_tenant_alert(tagged) -> None:
    alert = tagged.alert
    print(
        f"[{alert.criticality:>8s}] tenant={tagged.tenant} "
        f"pool={alert.pool} {alert.report.summary()}",
        flush=True,
    )


def _build_declared_sources(tenant_spec, once: bool) -> list:
    """A tenant's ``[[sources]]`` with the run-mode defaults injected.

    The same conventions ``tail`` applies to its spec fallback:
    ``--once`` must terminate file tails and cap socket dials, and file
    tails inherit the spec's poll cadence.
    """
    sources = []
    for entry in tenant_spec.sources:
        options = {key: value for key, value in entry.items()
                   if key != "type"}
        if entry["type"] == "file":
            options.setdefault("follow", not once)
            options.setdefault("poll_interval", tenant_spec.poll_interval)
        elif entry["type"] == "socket" and once:
            options.setdefault("reconnect", False)
            options.setdefault("max_connect_attempts", 3)
        sources.append(REGISTRY.create("source", entry["type"], options))
    return sources


def _command_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant gateway of a ``[tenants.*]`` spec."""
    from repro.gateway import Gateway

    try:
        spec = PipelineSpec.from_file(args.spec).with_env()
    except (ConfigError, OSError) as error:
        raise SystemExit(f"repro: {error}") from None
    if not spec.tenants:
        raise SystemExit(
            "repro: serve needs a spec with [tenants.<name>] tables; "
            "use `repro tail` for a single-tenant spec"
        )
    if args.checkpoint:
        spec = spec.replace(checkpoint=args.checkpoint)
    gateway = Gateway(spec)
    histories: dict[str, list] = {}
    sources: dict[str, list] = {}
    for name in gateway.tenants:
        tenant_spec = gateway.pipeline(name).spec
        history_path = tenant_spec.history or args.history
        if history_path is None:
            raise SystemExit(
                f"repro: tenant {name!r} has no training corpus; set "
                f"[tenants.{name}] history = \"...\" (or a top-level "
                f"history) in the spec, or pass --history"
            )
        histories[name] = _read_records(history_path, sessionize=True)
        tenant_sources = _build_declared_sources(tenant_spec, args.once)
        if not tenant_sources:
            raise SystemExit(
                f"repro: tenant {name!r} declares no [[sources]]; every "
                "served tenant needs at least one live source"
            )
        sources[name] = tenant_sources
    gateway.fit(histories)
    service = gateway.serve(
        sources=sources,
        on_alert=_print_tenant_alert,
        metrics_port=args.metrics_port,
    )
    if gateway.metrics_server is not None:
        print(f"serving metrics on {gateway.metrics_server.url}/metrics",
              flush=True)
    print(f"serving tenants: {', '.join(gateway.tenants)}", flush=True)

    async def serve_main() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, service.stop)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loops: Ctrl-C falls through as KeyboardInterrupt
        try:
            await service.run()
        finally:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError):
                    pass

    try:
        asyncio.run(serve_main())
    except KeyboardInterrupt:
        pass
    print(f"\n{service.summary()}")
    gateway.close()
    return 0


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MoniLog reproduction: log anomaly detection toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a synthetic corpus")
    generate.add_argument("--dataset", choices=sorted(_GENERATORS),
                          default="cloud")
    generate.add_argument("--sessions", type=int, default=300)
    generate.add_argument("--anomaly-rate", type=float, default=0.05)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)
    generate.add_argument("--labels", help="optional session-label TSV path")
    generate.set_defaults(handler=_command_generate)

    parse = commands.add_parser("parse", help="mine templates from a log file")
    parse.add_argument("--input", required=True)
    parse.add_argument("--parser", default="drain",
                       choices=_SINGLE_PARSERS)
    parse.add_argument("--masking", action="store_true")
    parse.add_argument("--extract", action="store_true",
                       help="run JSON/XML payload extraction first")
    parse.add_argument(
        "--batch-size", type=_batch_size, default=512,
        help="parse via the amortized batch path (0 = per-record)",
    )
    parse.add_argument(
        "--shards", type=_shard_count, default=0,
        help="parse through this many distributed Drain shards "
             "(0 = single instance; requires --parser drain)",
    )
    parse.add_argument(
        "--executor", choices=REGISTRY.names("executor"),
        default=None,
        help="how shard work runs with --shards (output is identical; "
             "default honors MONILOG_EXECUTOR)",
    )
    parse.set_defaults(handler=_command_parse)

    detect = commands.add_parser("detect", help="find anomalous sessions")
    detect.add_argument("--input", required=True)
    detect.add_argument("--detector", choices=REGISTRY.names("detector"),
                        default="deeplog",
                        help="anomaly detector (catalog in "
                             "docs/detectors.md)")
    detect.add_argument("--parser", choices=_SINGLE_PARSERS,
                        default="drain")
    detect.add_argument("--train-fraction", type=float, default=0.6)
    detect.add_argument("--masking", action="store_true")
    detect.add_argument("--extract", action="store_true")
    detect.set_defaults(handler=_command_detect)

    pipeline = commands.add_parser(
        "pipeline", help="full MoniLog run (spec-driven)"
    )
    pipeline.add_argument("--history", required=True,
                          help="training log file")
    pipeline.add_argument("--live", required=True, help="live log file")
    _add_spec_flags(pipeline)
    pipeline.add_argument(
        "--trace-dump", metavar="PATH",
        help="with --trace: write the span + provenance JSON here for "
             "offline `repro explain --trace-file PATH`",
    )
    pipeline.set_defaults(handler=_command_pipeline)

    stats = commands.add_parser(
        "stats",
        help="run with telemetry on and print the metric exposition",
    )
    stats.add_argument("--history", required=True,
                       help="training log file")
    stats.add_argument("--live", required=True, help="live log file")
    stats.add_argument(
        "--scrape", action="store_true",
        help="start the HTTP endpoint, fetch /metrics through a real "
             "HTTP round-trip, and print the Prometheus text instead "
             "of the JSON snapshot",
    )
    stats.add_argument(
        "--tenant", metavar="NAME",
        help="on a multi-tenant spec, filter the exposition down to "
             "this tenant's samples (families carry a tenant label)",
    )
    stats.add_argument(
        "--scrape-timeout", type=_positive_float, default=5.0,
        metavar="SECONDS",
        help="connect/read timeout for the --scrape HTTP round-trip "
             "(default 5.0; a failed scrape is a one-line error, not "
             "a traceback)",
    )
    _add_spec_flags(stats)
    stats.set_defaults(handler=_command_stats)

    trace = commands.add_parser(
        "trace",
        help="run with end-to-end tracing and print the span table",
    )
    trace.add_argument("--history", required=True,
                       help="training log file")
    trace.add_argument("--live", required=True, help="live log file")
    trace.add_argument(
        "--stage", metavar="NAME",
        help="show only spans of this stage (ingest, parse, "
             "sessionize, detect, classify, batch, record, flush)",
    )
    trace.add_argument(
        "--last", type=_positive_int, metavar="N",
        help="show only the newest N matching spans",
    )
    trace.add_argument(
        "--json", action="store_true",
        help="print the matching spans as JSON instead of a table",
    )
    trace.add_argument(
        "--dump", metavar="PATH",
        help="also write the full span + provenance JSON here for "
             "offline `repro explain --trace-file PATH`",
    )
    _add_spec_flags(trace)
    trace.set_defaults(handler=_command_trace)

    explain = commands.add_parser(
        "explain",
        help="resolve an alert id to sources, offsets, templates, "
             "scores, and the pool decision",
    )
    explain.add_argument(
        "alert_id", type=int, metavar="ALERT_ID",
        help="the alert's report id (printed as 'report #N' in alert "
             "summaries)",
    )
    explain.add_argument(
        "--trace-file", metavar="PATH",
        help="trace dump JSON written by `repro pipeline --trace "
             "--trace-dump` or `repro trace --dump`",
    )
    explain.add_argument("--history", help="training log file (to rerun "
                                           "with tracing forced on)")
    explain.add_argument("--live", help="live log file (with --history)")
    _add_spec_flags(explain)
    explain.set_defaults(handler=_command_explain)

    profile = commands.add_parser(
        "profile",
        help="run with the sampling profiler on; print the hottest "
             "stacks per pipeline stage",
    )
    profile.add_argument("--history", required=True,
                         help="training log file (offline history)")
    profile.add_argument("--live", required=True, help="live log file")
    profile.add_argument(
        "--limit", type=_positive_int, default=20, metavar="N",
        help="hotspot stacks to print (default 20)",
    )
    profile.add_argument(
        "--repeat", type=_positive_int, default=1, metavar="N",
        help="drain the live file N times — more passes, more samples "
             "(alerts are identical every pass; default 1)",
    )
    profile.add_argument(
        "--collapsed", metavar="PATH",
        help="also write the full profile as collapsed-stack text "
             "(`flamegraph.pl PATH > flame.svg`)",
    )
    profile.add_argument(
        "--json", action="store_true",
        help="print the profile as JSON (the /profile payload) "
             "instead of a table",
    )
    _add_spec_flags(profile)
    profile.set_defaults(handler=_command_profile)

    perf = commands.add_parser(
        "perf",
        help="gate the latest bench numbers against the "
             "perf-trajectory ledger",
    )
    perf.add_argument(
        "--trajectory", metavar="PATH",
        default=os.path.join("benchmarks", "results", "TRAJECTORY.jsonl"),
        help="the JSONL ledger to diff (default: "
             "benchmarks/results/TRAJECTORY.jsonl)",
    )
    perf.add_argument(
        "--self-test", action="store_true",
        help="synthesize a regression in a scratch ledger and verify "
             "the gate fires",
    )
    perf.set_defaults(handler=_command_perf)

    tail = commands.add_parser(
        "tail",
        help="live-ingest files/sockets through the async front-end",
    )
    tail.add_argument("--history", required=True,
                      help="training log file (offline history)")
    tail.add_argument(
        "--source", action="append", default=[], metavar="PATH",
        help="log file to tail (repeatable; tail -F semantics)",
    )
    tail.add_argument(
        "--socket", action="append", default=[], type=_socket_spec,
        metavar="HOST:PORT",
        help="newline-delimited TCP stream to ingest (repeatable)",
    )
    tail.add_argument(
        "--once", action="store_true",
        help="drain sources to their current end and exit (no follow)",
    )
    _add_spec_flags(tail, ingestion=True)
    tail.set_defaults(handler=_command_tail)

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant gateway of a [tenants.*] spec",
    )
    serve.add_argument(
        "--spec", metavar="PATH", required=True,
        help="gateway spec file (.toml or .json) with [tenants.<name>] "
             "tables; each tenant's [[sources]] ingest concurrently",
    )
    serve.add_argument(
        "--history", metavar="PATH",
        help="fallback training log file for tenants whose table sets "
             "no history = \"...\" path",
    )
    serve.add_argument(
        "--checkpoint", metavar="PATH",
        help="shared offset checkpoint file (per-tenant namespaced "
             "views keep keys disjoint; spec field: checkpoint)",
    )
    serve.add_argument(
        "--metrics-port", type=int, metavar="PORT",
        help="serve the shared /metrics endpoint on this port; every "
             "family carries a tenant label (0 = ephemeral port)",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="drain every tenant's sources to their current end and "
             "exit (no follow)",
    )
    serve.set_defaults(handler=_command_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    try:
        parser = build_argument_parser()
        # A typo'd MONILOG_EXECUTOR must fail fast, naming the
        # variable — not deep inside a command as a traceback.
        default_executor_name()
    except ValueError as error:
        raise SystemExit(f"repro: {error}") from None
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ConfigError as error:
        # Late construction-time validation (e.g. a metrics port
        # already in use) reads as a diagnosis, not a traceback.
        raise SystemExit(f"repro: {error}") from None


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
