"""Command-line interface: ``python -m repro <command>``.

Five commands covering the adoption path of a downstream user:

* ``generate`` — write a synthetic ground-truthed corpus to a log file
  (dashed Fig. 2 layout) for trying the tools on disk;
* ``parse``    — structure a log file with any of the eight miners and
  print the discovered template inventory;
* ``detect``   — train a detector on the head of a log file and report
  anomalous sessions in the tail;
* ``pipeline`` — run the full MoniLog system over a history file and a
  live file, printing classified alerts;
* ``tail``     — train on a history file, then *live-ingest* N files
  and/or sockets concurrently through the async front-end
  (:mod:`repro.ingest`): watermark merge, micro-batching, credit-based
  back-pressure, and per-source checkpoints for exact resume.

Every command reads plain text logs; headers are auto-detected via
:func:`repro.logs.formats.detect_format`.  ``parse`` and ``pipeline``
take ``--batch-size`` to run the amortized batched fast path (template
cache + intra-batch dedup) and ``--shards``/``--executor`` to run the
sharded runtimes with concurrent shard execution (serial / thread pool
/ process pool).  Output is identical across all of these modes —
batching, sharding, and the executor change wall-clock only.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from collections.abc import Sequence

from repro.core.config import IngestConfig, MoniLogConfig
from repro.core.distributed import ShardedMoniLog
from repro.core.executors import EXECUTORS, default_executor_name
from repro.core.pipeline import MoniLog
from repro.core.streaming import StreamingMoniLog, StreamingShardedMoniLog
from repro.ingest import (
    CheckpointStore,
    FileTailSource,
    IngestService,
    SocketSource,
)
from repro.datasets import generate_bgl, generate_cloud_platform, generate_hdfs
from repro.detection import DETECTORS, sessions_from_parsed
from repro.detection.keyword import KeywordMatchDetector
from repro.eval import Table
from repro.logs.formats import read_log_lines, render_line
from repro.logs.sessions import SessionKeyExtractor
from repro.parsing import (
    BATCH_PARSERS,
    DistributedDrain,
    ONLINE_PARSERS,
    LogramParser,
    default_masker,
    no_masker,
    parse_in_batches,
)

_GENERATORS = {
    "hdfs": lambda args: generate_hdfs(
        sessions=args.sessions, anomaly_rate=args.anomaly_rate, seed=args.seed
    ),
    "bgl": lambda args: generate_bgl(
        records=args.sessions * 15, seed=args.seed
    ),
    "cloud": lambda args: generate_cloud_platform(
        sessions=args.sessions, anomaly_rate=args.anomaly_rate, seed=args.seed
    ),
}

_ALL_DETECTORS = dict(DETECTORS) | {"keyword": KeywordMatchDetector}


def _read_records(path: str, sessionize: bool = False):
    with open(path, encoding="utf-8") as handle:
        records = list(read_log_lines(handle))
    if sessionize:
        records = list(SessionKeyExtractor().assign(records))
    return records


def _batch_size(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"batch size must be >= 0 (0 disables batching), got {value}"
        )
    return value


def _shard_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"shard count must be >= 0 (0 disables sharding), got {value}"
        )
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected > 0, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected >= 0, got {value}")
    return value


def _socket_spec(text: str) -> tuple[str, int]:
    host, separator, port = text.rpartition(":")
    if not separator or not host:
        raise argparse.ArgumentTypeError(
            f"socket spec must be host:port, got {text!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"socket port must be an integer, got {port!r}"
        ) from None


def _build_parser_instance(name: str, masking: bool, extract: bool):
    factories = dict(ONLINE_PARSERS) | dict(BATCH_PARSERS)
    if name not in factories:
        raise SystemExit(
            f"unknown parser {name!r}; choose from {sorted(factories)}"
        )
    masker = default_masker() if masking else no_masker()
    return factories[name](masker=masker, extract_structured=extract)


def _command_generate(args: argparse.Namespace) -> int:
    dataset = _GENERATORS[args.dataset](args)
    with open(args.output, "w", encoding="utf-8") as handle:
        for record in dataset.records:
            handle.write(render_line(record) + "\n")
    print(
        f"wrote {len(dataset.records)} records "
        f"({len(dataset.anomalous_sessions())} anomalous sessions) "
        f"to {args.output}"
    )
    if args.labels:
        with open(args.labels, "w", encoding="utf-8") as handle:
            for session_id, truth in dataset.sessions.items():
                label = truth.kind or ("anomaly" if truth.anomalous else "normal")
                handle.write(f"{session_id}\t{int(truth.anomalous)}\t{label}\n")
        print(f"wrote session labels to {args.labels}")
    return 0


def _command_parse(args: argparse.Namespace) -> int:
    records = _read_records(args.input)
    if args.shards:
        if args.parser != "drain":
            raise SystemExit(
                "--shards runs the distributed Drain; "
                f"it cannot shard {args.parser!r}"
            )
        masker = default_masker() if args.masking else no_masker()
        parser = DistributedDrain(
            shards=args.shards,
            masker=masker,
            extract_structured=args.extract,
            executor=args.executor,
        )
        template_of = parser.template_string
    else:
        parser = _build_parser_instance(args.parser, args.masking, args.extract)
        template_of = lambda template_id: parser.store[template_id].template
        if args.parser in BATCH_PARSERS:
            parser.fit(records)
        if isinstance(parser, LogramParser):
            parser.warmup(records)
    if args.batch_size:
        parsed = parse_in_batches(parser, records, args.batch_size)
    else:
        parsed = parser.parse_all(records)
    counts: dict[int, int] = {}
    for event in parsed:
        counts[event.template_id] = counts.get(event.template_id, 0) + 1
    table = Table(
        f"{args.parser} on {args.input}: {parser.template_count} templates",
        ["id", "count", "template"],
    )
    for template_id, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        table.add_row(template_id, count, template_of(template_id))
    table.print()
    if args.shards:
        # --batch-size 0 parses record by record, which never fans out
        # to the executor; attribute the run to the path that ran.
        mode = f"{args.executor} executor" if args.batch_size else "per-record"
        loads = ", ".join(str(load) for load in parser.shard_loads)
        print(f"\nshard loads ({mode}): {loads}")
        parser.executor.close()
    return 0


def _command_detect(args: argparse.Namespace) -> int:
    records = _read_records(args.input, sessionize=True)
    cut = int(len(records) * args.train_fraction)
    parser = _build_parser_instance("drain", args.masking, args.extract)
    train_sessions = [
        s for s in sessions_from_parsed(parser.parse_all(records[:cut])).values()
        if len(s) >= 2
    ]
    detector = _ALL_DETECTORS[args.detector]()
    detector.fit(train_sessions, [False] * len(train_sessions))
    test_map = sessions_from_parsed(parser.parse_all(records[cut:]))
    flagged = 0
    for session_id, session in test_map.items():
        if len(session) < 2:
            continue
        result = detector.detect(session)
        if result.anomalous:
            flagged += 1
            print(f"ANOMALY {session_id} score={result.score:.3f}")
            for reason in result.reasons[:3]:
                print(f"    {reason}")
    print(f"\n{flagged}/{len(test_map)} sessions flagged by {args.detector}")
    return 0


def _command_pipeline(args: argparse.Namespace) -> int:
    history = _read_records(args.history, sessionize=True)
    live = _read_records(args.live, sessionize=True)
    config = MoniLogConfig(use_masking=args.masking,
                           extract_structured=args.extract,
                           executor=args.executor)
    if args.shards:
        with ShardedMoniLog(
            parser_shards=args.shards,
            detector_shards=args.detector_shards,
            config=config,
            # --batch-size 0 means per-record; the sharded runtime's
            # equivalent is micro-batches of one record.
            batch_size=args.batch_size or 1,
        ) as sharded:
            sharded.train(history)
            alerts = sharded.run_all(live)
            for alert in alerts:
                print(
                    f"[{alert.criticality:>8s}] pool={alert.pool} "
                    f"{alert.report.summary()}"
                )
            loads = ", ".join(str(load)
                              for load in sharded.parser.shard_loads)
            print(
                f"\nparsed {sum(sharded.parser.shard_loads)} records "
                f"across {args.shards} shards ({args.executor} executor, "
                f"loads {loads}), {sharded.parser.template_count} templates, "
                f"{len(alerts)} anomalies"
            )
        return 0
    system = MoniLog(config=config)
    system.train(history)
    if args.batch_size:
        alerts = system.process_batch(live, batch_size=args.batch_size)
    else:
        alerts = system.run(live)
    for alert in alerts:
        print(
            f"[{alert.criticality:>8s}] pool={alert.pool} "
            f"{alert.report.summary()}"
        )
    stats = system.stats
    print(
        f"\nparsed {stats.records_parsed} records, "
        f"{stats.templates_discovered} templates, "
        f"{stats.anomalies_detected} anomalies"
    )
    return 0


def _command_tail(args: argparse.Namespace) -> int:
    if not args.source and not args.socket:
        raise SystemExit("tail needs at least one --source or --socket")
    history = _read_records(args.history, sessionize=True)
    config = MoniLogConfig(use_masking=args.masking,
                           extract_structured=args.extract,
                           executor=args.executor)
    ingest_config = IngestConfig(
        batch_size=args.batch_size,
        max_batch_age=args.max_batch_age,
        lateness=args.lateness,
        credits=args.credits,
        poll_interval=args.poll_interval,
    )
    if args.shards:
        system = ShardedMoniLog(
            parser_shards=args.shards,
            detector_shards=args.detector_shards,
            config=config,
            batch_size=args.batch_size,
        )
        system.train(history)
        streaming = StreamingShardedMoniLog(
            system, session_timeout=args.session_timeout)
    else:
        system = MoniLog(config=config)
        system.train(history)
        streaming = StreamingMoniLog(
            system, session_timeout=args.session_timeout)
    sources = [
        FileTailSource(path, follow=not args.once,
                       poll_interval=args.poll_interval)
        for path in args.source
    ] + [
        # --once must terminate even when nothing is listening: cap the
        # dial attempts instead of retrying forever.
        SocketSource(host, port, reconnect=not args.once,
                     max_connect_attempts=3 if args.once else None)
        for host, port in args.socket
    ]
    checkpoint = CheckpointStore(args.checkpoint) if args.checkpoint else None

    def print_alert(alert) -> None:
        print(
            f"[{alert.criticality:>8s}] pool={alert.pool} "
            f"{alert.report.summary()}",
            flush=True,
        )

    service = IngestService(
        sources, streaming,
        config=ingest_config,
        checkpoint=checkpoint,
        on_alert=print_alert,
    )

    async def tail_main() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, service.stop)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loops: Ctrl-C falls through as KeyboardInterrupt
        try:
            await service.run()
        finally:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError):
                    pass

    try:
        asyncio.run(tail_main())
    except KeyboardInterrupt:
        pass
    print(f"\n{service.stats().summary()}")
    if args.shards:
        system.close()
    return 0


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MoniLog reproduction: log anomaly detection toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a synthetic corpus")
    generate.add_argument("--dataset", choices=sorted(_GENERATORS),
                          default="cloud")
    generate.add_argument("--sessions", type=int, default=300)
    generate.add_argument("--anomaly-rate", type=float, default=0.05)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)
    generate.add_argument("--labels", help="optional session-label TSV path")
    generate.set_defaults(handler=_command_generate)

    parse = commands.add_parser("parse", help="mine templates from a log file")
    parse.add_argument("--input", required=True)
    parse.add_argument("--parser", default="drain")
    parse.add_argument("--masking", action="store_true")
    parse.add_argument("--extract", action="store_true",
                       help="run JSON/XML payload extraction first")
    parse.add_argument(
        "--batch-size", type=_batch_size, default=512,
        help="parse via the amortized batch path (0 = per-record)",
    )
    parse.add_argument(
        "--shards", type=_shard_count, default=0,
        help="parse through this many distributed Drain shards "
             "(0 = single instance; requires --parser drain)",
    )
    parse.add_argument(
        "--executor", choices=sorted(EXECUTORS),
        default=default_executor_name(),
        help="how shard work runs with --shards: serially, on a "
             "thread pool, or on a process pool (output is identical; "
             "default honors MONILOG_EXECUTOR)",
    )
    parse.set_defaults(handler=_command_parse)

    detect = commands.add_parser("detect", help="find anomalous sessions")
    detect.add_argument("--input", required=True)
    detect.add_argument("--detector", choices=sorted(_ALL_DETECTORS),
                        default="deeplog")
    detect.add_argument("--train-fraction", type=float, default=0.6)
    detect.add_argument("--masking", action="store_true")
    detect.add_argument("--extract", action="store_true")
    detect.set_defaults(handler=_command_detect)

    pipeline = commands.add_parser("pipeline", help="full MoniLog run")
    pipeline.add_argument("--history", required=True,
                          help="training log file")
    pipeline.add_argument("--live", required=True, help="live log file")
    pipeline.add_argument("--masking", action="store_true", default=True)
    pipeline.add_argument("--extract", action="store_true")
    pipeline.add_argument(
        "--batch-size", type=_batch_size, default=512,
        help="micro-batch size for the amortized parse path "
             "(0 = per-record processing; alerts are identical either way)",
    )
    pipeline.add_argument(
        "--shards", type=_shard_count, default=0,
        help="run the sharded MoniLog with this many parser shards "
             "(0 = single-instance pipeline)",
    )
    pipeline.add_argument(
        "--detector-shards", type=_positive_int, default=1,
        help="detector replicas in the sharded runtime (with --shards)",
    )
    pipeline.add_argument(
        "--executor", choices=sorted(EXECUTORS),
        default=default_executor_name(),
        help="how shard work runs with --shards: serially, on a "
             "thread pool, or on a process pool (alerts are identical; "
             "default honors MONILOG_EXECUTOR)",
    )
    pipeline.set_defaults(handler=_command_pipeline)

    tail = commands.add_parser(
        "tail",
        help="live-ingest files/sockets through the async front-end",
    )
    tail.add_argument("--history", required=True,
                      help="training log file (offline history)")
    tail.add_argument(
        "--source", action="append", default=[], metavar="PATH",
        help="log file to tail (repeatable; tail -F semantics)",
    )
    tail.add_argument(
        "--socket", action="append", default=[], type=_socket_spec,
        metavar="HOST:PORT",
        help="newline-delimited TCP stream to ingest (repeatable)",
    )
    tail.add_argument(
        "--batch-size", type=_positive_int, default=256,
        help="records per micro-batch handed to the pipeline",
    )
    tail.add_argument(
        "--max-batch-age", type=_positive_float, default=0.25,
        help="seconds a non-empty batch may wait before flushing",
    )
    tail.add_argument(
        "--lateness", type=_nonnegative_float, default=0.5,
        help="out-of-order tolerance of the live merge (event seconds)",
    )
    tail.add_argument(
        "--credits", type=_positive_int, default=4096,
        help="max records in flight between readers and the pipeline",
    )
    tail.add_argument(
        "--poll-interval", type=_positive_float, default=0.05,
        help="idle-poll cadence for file tails (seconds)",
    )
    tail.add_argument(
        "--checkpoint", metavar="PATH",
        help="offset checkpoint file; resume skips processed records",
    )
    tail.add_argument(
        "--once", action="store_true",
        help="drain sources to their current end and exit (no follow)",
    )
    tail.add_argument(
        "--session-timeout", type=_positive_float, default=30.0,
        help="idle seconds of stream time before a session closes",
    )
    tail.add_argument("--masking", action="store_true", default=True)
    tail.add_argument("--extract", action="store_true")
    tail.add_argument(
        "--shards", type=_shard_count, default=0,
        help="score through the sharded runtime with this many parser "
             "shards (0 = single-instance pipeline)",
    )
    tail.add_argument(
        "--detector-shards", type=_positive_int, default=1,
        help="detector replicas in the sharded runtime (with --shards)",
    )
    tail.add_argument(
        "--executor", choices=sorted(EXECUTORS),
        default=default_executor_name(),
        help="how shard work runs with --shards (default honors "
             "MONILOG_EXECUTOR)",
    )
    tail.set_defaults(handler=_command_tail)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    try:
        parser = build_argument_parser()
    except ValueError as error:
        # A bad MONILOG_EXECUTOR surfaces while argparse defaults are
        # built; report it like a usage error, not a traceback.
        raise SystemExit(f"repro: {error}") from None
    arguments = parser.parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
