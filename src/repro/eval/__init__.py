"""Experiment harness and table rendering for the benchmarks."""

from repro.eval.harness import (
    DetectionExperiment,
    evaluate_detector,
    fit_and_score,
    parse_dataset,
)
from repro.eval.tables import Table, render_table

__all__ = [
    "DetectionExperiment",
    "Table",
    "evaluate_detector",
    "fit_and_score",
    "parse_dataset",
    "render_table",
]
