"""Shared experiment plumbing for the benchmarks.

Every detection benchmark repeats the same skeleton: generate a
dataset, split it, parse it, window it, fit detectors, score the test
sessions.  :func:`fit_and_score` is that skeleton;
:class:`DetectionExperiment` carries the pieces benchmarks want to
inspect (parsed events, session maps, ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.common import LabeledDataset, train_test_split
from repro.detection.base import Detector, Session
from repro.detection.windows import sessions_from_parsed
from repro.logs.record import LogRecord, ParsedLog
from repro.metrics.detection import BinaryReport, confusion_counts
from repro.parsing.base import Parser
from repro.parsing.drain import DrainParser
from repro.parsing.masking import default_masker


def parse_dataset(
    records: list[LogRecord], parser: Parser | None = None
) -> list[ParsedLog]:
    """Parse records with a fresh default Drain unless one is supplied."""
    if parser is None:
        parser = DrainParser(masker=default_masker())
    return parser.parse_all(records)


@dataclass
class DetectionExperiment:
    """A prepared train/test detection setting."""

    train_sessions: list[Session]
    train_labels: list[bool]
    test_sessions: list[Session]
    test_labels: list[bool]
    test_session_ids: list[str]

    @classmethod
    def from_dataset(
        cls,
        dataset: LabeledDataset,
        *,
        parser: Parser | None = None,
        train_fraction: float = 0.6,
        anomaly_free_training: bool = True,
        min_session_events: int = 2,
        seed: int = 0,
    ) -> "DetectionExperiment":
        """Split, parse and window a labelled dataset.

        One parser instance handles train then test, matching a
        deployment where the miner keeps learning across the split.
        """
        train, test = train_test_split(
            dataset,
            train_fraction=train_fraction,
            anomaly_free_training=anomaly_free_training,
            seed=seed,
        )
        if parser is None:
            parser = DrainParser(masker=default_masker())
        train_map = sessions_from_parsed(parser.parse_all(train.records))
        test_map = sessions_from_parsed(parser.parse_all(test.records))

        def keep(events: Session) -> bool:
            return len(events) >= min_session_events

        train_sessions = [s for s in train_map.values() if keep(s)]
        train_labels = [
            train.sessions[session_id].anomalous
            for session_id, events in train_map.items()
            if keep(events)
        ]
        test_sessions = []
        test_labels = []
        test_ids = []
        for session_id, events in test_map.items():
            if not keep(events):
                continue
            test_sessions.append(events)
            test_labels.append(test.sessions[session_id].anomalous)
            test_ids.append(session_id)
        return cls(
            train_sessions=train_sessions,
            train_labels=train_labels,
            test_sessions=test_sessions,
            test_labels=test_labels,
            test_session_ids=test_ids,
        )


def evaluate_detector(
    detector: Detector, experiment: DetectionExperiment
) -> BinaryReport:
    """Fit on the experiment's training split and score the test split."""
    detector.fit(experiment.train_sessions, experiment.train_labels)
    predictions = detector.predict_many(experiment.test_sessions)
    return confusion_counts(predictions, experiment.test_labels)


def fit_and_score(
    detector: Detector,
    dataset: LabeledDataset,
    *,
    anomaly_free_training: bool = True,
    train_fraction: float = 0.6,
    seed: int = 0,
) -> BinaryReport:
    """The full skeleton in one call (fresh default parser)."""
    experiment = DetectionExperiment.from_dataset(
        dataset,
        train_fraction=train_fraction,
        anomaly_free_training=anomaly_free_training,
        seed=seed,
    )
    return evaluate_detector(detector, experiment)
