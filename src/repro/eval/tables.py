"""Fixed-width table rendering for benchmark output.

Benchmarks print the same row/series structure the paper's tables
would; this module keeps the formatting in one place so every bench
looks the same and EXPERIMENTS.md can paste the output verbatim.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A titled table accumulated row by row."""

    title: str
    columns: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        return render_table(self.title, self.columns, self.rows)

    def print(self) -> None:
        print(self.render())


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render a fixed-width ASCII table with a title banner."""
    formatted = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    body = [line(list(columns)), separator]
    body += [line(row) for row in formatted]
    banner = f"== {title} =="
    return "\n".join([banner] + body)
