"""Supervised parsing metrics: grouping accuracy and Eq. 1 token accuracy.

Two views of parsing quality, mirroring the paper's §IV argument:

* **Grouping accuracy** — the literature's reference metric (Zhu et
  al., ICSE-SEIP'19): a message is correctly parsed iff its predicted
  cluster contains exactly the messages of its ground-truth cluster.
  Sufficient for *sequential* anomaly detection, where only the log
  class matters.
* **Token accuracy (Eq. 1)** — the paper's proposed metric: the mean,
  over messages, of the fraction of tokens whose static/variable
  decomposition matches ground truth.  This is what *quantitative*
  anomaly detection needs, since variables must be correctly located
  to be monitored.

Eq. 1 implementation note: ``t_j`` is the parser's assignment of token
``j`` (the static word it kept, or the wildcard if it declared the
position variable) and ``T_j`` the ground-truth assignment; a token
counts as correct when the two agree.  Messages whose ground truth is
unknown (e.g. instability-injected lines) are skipped and reported.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.logs.record import ParsedLog, WILDCARD, tokenize
from repro.logs.sources import TemplateLibrary

#: Optional message normalizer applied before ground-truth lookup.
#: Used when the corpus carries payloads the library's templates do not
#: describe (e.g. the JSON suffixes of experiment X7): pass
#: ``lambda m: extract_structured_payload(m).text``.
MessageNormalizer = Callable[[str], str]


@dataclass(frozen=True)
class ParsingReport:
    """Joint supervised parsing metrics for one parser run."""

    grouping_accuracy: float
    token_accuracy: float
    predicted_templates: int
    true_templates: int
    evaluated_messages: int
    skipped_messages: int


def grouping_accuracy(
    parsed: Sequence[ParsedLog],
    library: TemplateLibrary,
    normalize_message: MessageNormalizer | None = None,
) -> float:
    """Fraction of messages whose predicted cluster == true cluster.

    A predicted cluster is correct for a message iff the set of
    messages sharing its predicted template id equals the set sharing
    its ground-truth template id.  Messages without ground truth are
    excluded from both sides.
    """
    truth_of: list[int | None] = []
    for event in parsed:
        message = event.record.message
        if normalize_message is not None:
            message = normalize_message(message)
        truth = library.truth_for(message)
        truth_of.append(truth.template_id if truth is not None else None)

    by_predicted: dict[int, set[int]] = defaultdict(set)
    by_truth: dict[int, set[int]] = defaultdict(set)
    for index, (event, truth) in enumerate(zip(parsed, truth_of)):
        if truth is None:
            continue
        by_predicted[event.template_id].add(index)
        by_truth[truth].add(index)

    correct = 0
    evaluated = 0
    for index, (event, truth) in enumerate(zip(parsed, truth_of)):
        if truth is None:
            continue
        evaluated += 1
        if by_predicted[event.template_id] == by_truth[truth]:
            correct += 1
    return correct / evaluated if evaluated else 0.0


def _token_labels(template: str, length: int) -> list[str] | None:
    """Template tokens as per-position labels; None on length mismatch."""
    tokens = tokenize(template)
    if len(tokens) != length:
        return None
    return tokens


def token_accuracy(
    parsed: Sequence[ParsedLog],
    library: TemplateLibrary,
    normalize_message: MessageNormalizer | None = None,
) -> float:
    """The paper's Eq. 1: mean per-message token classification accuracy.

    For each evaluated message i with ``l_i`` tokens, the inner sum
    scores 1 for token j when the parser's assignment equals the
    expected one; the outer mean runs over messages.  A parser whose
    template length disagrees with the message (it merged or split
    tokens) scores 0 for that message — every token is misassigned.
    """
    per_message: list[float] = []
    for event in parsed:
        message = event.record.message
        if normalize_message is not None:
            message = normalize_message(message)
        truth = library.truth_for(message)
        if truth is None:
            continue
        message_tokens = tokenize(message)
        if not message_tokens:
            continue
        expected = _token_labels(truth.template, len(message_tokens))
        if expected is None:
            # Ground-truth templates always match their messages; this
            # would be a library bug, not a parser error.
            continue
        predicted = _token_labels(event.template, len(message_tokens))
        if predicted is None:
            per_message.append(0.0)
            continue
        correct = sum(
            1
            for predicted_token, expected_token in zip(predicted, expected)
            if predicted_token == expected_token
        )
        per_message.append(correct / len(message_tokens))
    return sum(per_message) / len(per_message) if per_message else 0.0


def parsing_report(
    parsed: Sequence[ParsedLog],
    library: TemplateLibrary,
    normalize_message: MessageNormalizer | None = None,
) -> ParsingReport:
    """Compute both supervised metrics plus bookkeeping counts."""

    def normalized(event: ParsedLog) -> str:
        if normalize_message is None:
            return event.record.message
        return normalize_message(event.record.message)

    skipped = sum(
        1 for event in parsed if library.truth_for(normalized(event)) is None
    )
    predicted_templates = len({event.template_id for event in parsed})
    return ParsingReport(
        grouping_accuracy=grouping_accuracy(parsed, library, normalize_message),
        token_accuracy=token_accuracy(parsed, library, normalize_message),
        predicted_templates=predicted_templates,
        true_templates=len(library),
        evaluated_messages=len(parsed) - skipped,
        skipped_messages=skipped,
    )
