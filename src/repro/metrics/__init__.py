"""Evaluation metrics.

* :mod:`repro.metrics.detection` — precision / recall / F1 exactly as
  the paper defines them in §III.
* :mod:`repro.metrics.parsing` — supervised parsing quality: grouping
  accuracy (the literature's reference metric) and the paper's own
  **token accuracy** contribution (Eq. 1).
* :mod:`repro.metrics.unsupervised` — label-free parsing quality
  scores used for auto-parametrization (paper §IV, experiment X5).
"""

from repro.metrics.detection import (
    BinaryReport,
    confusion_counts,
    precision_recall_f1,
)
from repro.metrics.parsing import (
    grouping_accuracy,
    token_accuracy,
    parsing_report,
    ParsingReport,
)
from repro.metrics.unsupervised import (
    cluster_cohesion,
    mdl_score,
    template_separation,
    unsupervised_quality,
)

__all__ = [
    "BinaryReport",
    "ParsingReport",
    "cluster_cohesion",
    "confusion_counts",
    "grouping_accuracy",
    "mdl_score",
    "parsing_report",
    "precision_recall_f1",
    "template_separation",
    "token_accuracy",
    "unsupervised_quality",
]
