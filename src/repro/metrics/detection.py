"""Detection metrics: precision, recall, F1 (paper §III).

The paper's definitions, verbatim: TP = abnormal sequences correctly
detected, FP = normal sequences wrongly identified as anomalies, FN =
abnormal sequences not detected.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class BinaryReport:
    """Precision / recall / F1 with the underlying confusion counts."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        precision = self.precision
        recall = self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positives + self.false_positives
            + self.false_negatives + self.true_negatives
        )
        return (self.true_positives + self.true_negatives) / total if total else 0.0

    def as_row(self) -> dict[str, float]:
        """The (P, R, F1) row the paper's comparison tables report."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def confusion_counts(
    predictions: Sequence[bool], truths: Sequence[bool]
) -> BinaryReport:
    """Build a :class:`BinaryReport` from aligned boolean sequences."""
    if len(predictions) != len(truths):
        raise ValueError(
            f"predictions ({len(predictions)}) and truths ({len(truths)}) disagree"
        )
    tp = fp = fn = tn = 0
    for predicted, truth in zip(predictions, truths):
        if predicted and truth:
            tp += 1
        elif predicted and not truth:
            fp += 1
        elif not predicted and truth:
            fn += 1
        else:
            tn += 1
    return BinaryReport(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )


def precision_recall_f1(
    predictions: Sequence[bool], truths: Sequence[bool]
) -> tuple[float, float, float]:
    """The (precision, recall, F1) triple of §III."""
    report = confusion_counts(predictions, truths)
    return report.precision, report.recall, report.f1
