"""Unsupervised parsing-quality metrics (paper §IV, experiment X5).

"Unsupervised metrics opens promising perspectives for
auto-parametrizing log parser."  Two label-free scores are provided;
both reward the balance a good parse strikes between over-merging
(few templates, everything variable) and over-splitting (one template
per message, everything static):

* :func:`mdl_score` — a description-length score: encoding the corpus
  as (template table + per-message variables) should be much cheaper
  than storing raw messages.  Over-splitting bloats the template
  table; over-merging bloats the variable stream; the true parse
  minimizes the sum.
* :func:`cluster_cohesion` — mean intra-cluster token agreement: for
  each predicted cluster, how consistently do member messages agree on
  the positions the template claims are static?

:func:`unsupervised_quality` combines them (geometric mean), and is
the objective :class:`repro.core.calibration.AutoCalibrator` optimizes.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.logs.record import ParsedLog, WILDCARD, tokenize


def mdl_score(parsed: Sequence[ParsedLog]) -> float:
    """Description-length score in (0, 1]; higher is better.

    Cost model (token-denominated): the template table costs its total
    static+wildcard token count once; every message then costs one
    token per variable.  The raw corpus costs its full token count.
    The score is ``1 - encoded_cost / raw_cost`` clamped to [0, 1] —
    0 when parsing bought nothing, approaching the corpus' true
    redundancy when the parse is right.
    """
    if not parsed:
        return 0.0
    templates: dict[int, str] = {}
    variable_tokens = 0
    raw_tokens = 0
    wildcard_counts: dict[int, int] = {}
    for event in parsed:
        templates[event.template_id] = event.template
        count = wildcard_counts.get(event.template_id)
        if count is None:
            count = tokenize(event.template).count(WILDCARD)
            wildcard_counts[event.template_id] = count
        # Each message pays one token per wildcard slot of its template
        # (counted from the template, so the score is meaningful even
        # for events whose variable values were not materialized).
        variable_tokens += count
        raw_tokens += len(tokenize(event.record.message))
    if raw_tokens == 0:
        return 0.0
    table_tokens = sum(len(tokenize(template)) for template in templates.values())
    encoded = table_tokens + variable_tokens
    return max(0.0, 1.0 - encoded / raw_tokens)


def cluster_cohesion(
    parsed: Sequence[ParsedLog],
    *,
    max_pairs_per_cluster: int = 50,
    seed: int = 0,
) -> float:
    """Mean intra-cluster agreement on static positions, in [0, 1].

    For sampled message pairs within each predicted cluster, the
    agreement is the fraction of template-static positions where both
    messages carry the same token.  Over-merged clusters mix different
    statements and disagree on "static" positions; correctly merged
    clusters agree fully.  Singleton clusters are perfectly cohesive
    but diluted by a cluster-count-weighted average, so degenerate
    one-message-per-cluster parses do not get a free 1.0: the average
    weights each cluster by its message count.
    """
    if not parsed:
        return 0.0
    rng = random.Random(seed)
    clusters: dict[int, list[ParsedLog]] = {}
    for event in parsed:
        clusters.setdefault(event.template_id, []).append(event)

    weighted_sum = 0.0
    weight_total = 0
    for members in clusters.values():
        weight = len(members)
        if len(members) == 1:
            weighted_sum += 1.0 * weight
            weight_total += weight
            continue
        template_tokens = tokenize(members[0].template)
        static_positions = [
            position
            for position, token in enumerate(template_tokens)
            if token != WILDCARD
        ]
        pairs = min(max_pairs_per_cluster, len(members) * (len(members) - 1) // 2)
        agreements: list[float] = []
        for _ in range(pairs):
            left, right = rng.sample(members, 2)
            left_tokens = tokenize(left.record.message)
            right_tokens = tokenize(right.record.message)
            if not static_positions:
                # A fully-wildcard template asserts nothing; treat as
                # zero cohesion (it explains nothing about members).
                agreements.append(0.0)
                continue
            agreeing = sum(
                1
                for position in static_positions
                if (
                    position < len(left_tokens)
                    and position < len(right_tokens)
                    and left_tokens[position] == right_tokens[position]
                )
            )
            agreements.append(agreeing / len(static_positions))
        cohesion = sum(agreements) / len(agreements) if agreements else 1.0
        weighted_sum += cohesion * weight
        weight_total += weight
    return weighted_sum / weight_total if weight_total else 0.0


def template_separation(parsed: Sequence[ParsedLog]) -> float:
    """Mean pairwise dissimilarity between discovered templates, [0, 1].

    A Logan-style *separation* view: distinct templates should not look
    alike.  Over-splitting a statement produces many near-identical
    templates (low separation); a correct parse's templates describe
    different statements (high separation).  Dissimilarity is 1 minus
    the token-set Jaccard similarity of the template strings
    (wildcards excluded — shared wildcards carry no meaning).

    A parse with fewer than two templates has nothing to separate and
    scores 1.0 by convention.
    """
    token_sets: list[frozenset[str]] = []
    seen: set[int] = set()
    for event in parsed:
        if event.template_id in seen:
            continue
        seen.add(event.template_id)
        token_sets.append(
            frozenset(
                token for token in tokenize(event.template)
                if token != WILDCARD
            )
        )
    if len(token_sets) < 2:
        return 1.0
    total = 0.0
    pairs = 0
    for index, left in enumerate(token_sets):
        for right in token_sets[index + 1:]:
            union = left | right
            if union:
                jaccard = len(left & right) / len(union)
            else:
                jaccard = 1.0  # two all-wildcard templates are identical
            total += 1.0 - jaccard
            pairs += 1
    return total / pairs if pairs else 1.0


def unsupervised_quality(
    parsed: Sequence[ParsedLog],
    *,
    seed: int = 0,
) -> float:
    """Combined label-free quality: geometric mean of MDL and cohesion.

    The geometric mean punishes parses that game one component: a
    degenerate all-in-one cluster may score decent MDL but near-zero
    cohesion, and one-cluster-per-message scores high cohesion but
    near-zero MDL.
    """
    mdl = mdl_score(parsed)
    cohesion = cluster_cohesion(parsed, seed=seed)
    return (mdl * cohesion) ** 0.5
