"""Declarative autoscaling configuration (the spec's ``[autoscale]`` table).

Registered in the component registry under kind ``"autoscale"`` (name
``"aimd"``, after the control family the controller implements), so
:class:`~repro.api.spec.PipelineSpec` validates the table against this
constructor exactly like any other component's options.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import register_component
from repro.core.validation import Validator


@register_component("autoscale", "aimd")
@dataclass
class AutoscaleConfig:
    """Knobs of the adaptive controller (see
    :class:`~repro.autoscale.controller.AutoscaleController`).

    Only *bounds and targets* live here; the controller picks actual
    knob values at runtime from measured signals.  Every adjustable
    knob is clamped to its ``[min, max]`` range, so a misbehaving
    signal can never push the runtime outside the envelope an operator
    declared safe.

    Attributes:
        enabled: master switch.  Declaring an ``[autoscale]`` table is
            the opt-in; ``enabled = false`` keeps the tuning without
            the control loop.
        interval: seconds between controller ticks (measurement
            cadence; each tick reads signal deltas since the last).
        min_credits / max_credits: envelope of the ingestion credit
            budget (:class:`~repro.ingest.backpressure.CreditGate`).
        min_ingest_batch / max_ingest_batch: envelope of the ingestion
            micro-batch size (:class:`~repro.ingest.batcher.MicroBatcher`).
        min_batch_age / max_batch_age: envelope of the micro-batcher's
            age bound, seconds.
        min_batch_size / max_batch_size: envelope of the pipeline's
            detector micro-batch size (``Pipeline.batch_size``).
        target_batch_seconds: per-batch processing latency the detect
            path should stay under; sustained overshoot halves the
            pipeline micro-batch.
        idle_fraction: credit-utilization floor — when in-use credits
            sit below this fraction of the budget for two consecutive
            ticks, the budget decays additively toward ``min_credits``.
        imbalance_threshold: max/mean parser-shard load ratio above
            which a shard-imbalance advisory is raised (and, with
            ``reshard`` on, a resize is considered).
        reshard: graduate the shard-imbalance advisory into an actual
            live resize (``Pipeline.reshard``).  Off by default: a
            reshard migrates template state, so it is the one knob an
            operator must opt into.
        min_shards / max_shards: envelope of the parser shard count
            the controller may resize within.
        reshard_cooldown: seconds between resizes — template migration
            is cheap but not free, and the load model needs time to
            reflect the new placement before it is judged again.
    """

    enabled: bool = True
    interval: float = 1.0
    min_credits: int = 16
    max_credits: int = 65536
    min_ingest_batch: int = 1
    max_ingest_batch: int = 8192
    min_batch_age: float = 0.05
    max_batch_age: float = 1.0
    min_batch_size: int = 32
    max_batch_size: int = 8192
    target_batch_seconds: float = 0.25
    idle_fraction: float = 0.25
    imbalance_threshold: float = 2.0
    reshard: bool = False
    min_shards: int = 1
    max_shards: int = 16
    reshard_cooldown: float = 10.0

    def __post_init__(self) -> None:
        check = Validator(type(self).__name__)
        check.require(self.interval > 0, "interval",
                      f"must be > 0, got {self.interval}")
        check.require(self.min_credits >= 1, "min_credits",
                      f"must be >= 1, got {self.min_credits}")
        check.require(
            self.max_credits >= self.min_credits, "max_credits",
            f"must be >= min_credits ({self.min_credits}), "
            f"got {self.max_credits}")
        check.require(self.min_ingest_batch >= 1, "min_ingest_batch",
                      f"must be >= 1, got {self.min_ingest_batch}")
        check.require(
            self.max_ingest_batch >= self.min_ingest_batch,
            "max_ingest_batch",
            f"must be >= min_ingest_batch ({self.min_ingest_batch}), "
            f"got {self.max_ingest_batch}")
        check.require(self.min_batch_age > 0, "min_batch_age",
                      f"must be > 0, got {self.min_batch_age}")
        check.require(
            self.max_batch_age >= self.min_batch_age, "max_batch_age",
            f"must be >= min_batch_age ({self.min_batch_age}), "
            f"got {self.max_batch_age}")
        check.require(self.min_batch_size >= 1, "min_batch_size",
                      f"must be >= 1, got {self.min_batch_size}")
        check.require(
            self.max_batch_size >= self.min_batch_size, "max_batch_size",
            f"must be >= min_batch_size ({self.min_batch_size}), "
            f"got {self.max_batch_size}")
        check.require(self.target_batch_seconds > 0, "target_batch_seconds",
                      f"must be > 0, got {self.target_batch_seconds}")
        check.require(
            0 < self.idle_fraction < 1, "idle_fraction",
            f"must be in (0, 1), got {self.idle_fraction}")
        check.require(
            self.imbalance_threshold >= 1, "imbalance_threshold",
            f"must be >= 1, got {self.imbalance_threshold}")
        check.require(self.min_shards >= 1, "min_shards",
                      f"must be >= 1, got {self.min_shards}")
        check.require(
            self.max_shards >= self.min_shards, "max_shards",
            f"must be >= min_shards ({self.min_shards}), "
            f"got {self.max_shards}")
        check.require(self.reshard_cooldown >= 0, "reshard_cooldown",
                      f"must be >= 0, got {self.reshard_cooldown}")
        check.done()
