"""Adaptive autoscaling: the measurement-to-control loop.

:class:`AutoscaleController` consumes the signals
:mod:`repro.telemetry` collects — per-source arrival rates, hand-off
queue depth, credit-gate pressure, per-batch latency, shard loads —
and adjusts the knobs that are provably safe to move at runtime:
the ingestion credit budget, micro-batch size and age, and the
pipeline's detector micro-batch size.  Shard-count changes are *not*
safe at runtime, so imbalance surfaces as an advisory instead.

Enable it declaratively::

    spec = PipelineSpec(streaming=True,
                        telemetry={"metrics_port": 9100},
                        autoscale={"interval": 2.0})
    service = Pipeline.from_spec(spec).fit(history).serve()
    await service.run()

See ``docs/telemetry.md`` for a tuning guide and
``benchmarks/bench_x11_autoscale.py`` for the convergence proof.
"""

from repro.autoscale.config import AutoscaleConfig
from repro.autoscale.controller import AutoscaleController

__all__ = ["AutoscaleConfig", "AutoscaleController"]
