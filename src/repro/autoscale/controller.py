"""The adaptive controller: telemetry signals in, knob movements out.

MoniLog deployments historically froze their scale knobs at
construction — ingestion micro-batch size, batch age, credit budget,
detector micro-batch size — which means every deployment is mis-sized
for some phase of its traffic.  :class:`AutoscaleController` closes
the measurement→control loop over the signals the telemetry layer
already collects:

* **credit budget** (:class:`~repro.ingest.backpressure.CreditGate`):
  AIMD-style — producers observed *blocking* on the gate double the
  budget (the mis-sized-small case must converge in O(log) ticks);
  sustained low utilization decays it additively.  Bounded by
  ``[min_credits, max_credits]``.
* **ingestion micro-batch size / age**
  (:class:`~repro.ingest.batcher.MicroBatcher`): the batch is sized to
  what actually arrives within one age window (measured per-source
  arrival rates, summed) and to the hand-off backlog — ramped
  multiplicatively toward the target, decayed additively, so a burst
  grows it fast and a lull shrinks it gently.  A trickle stream
  stretches the age bound (fewer, fuller batches); a flood shrinks it
  back toward the latency floor.
* **pipeline micro-batch size** (``Pipeline.batch_size``): classic
  AIMD on measured per-batch processing latency — multiplicative
  decrease when a batch overshoots ``target_batch_seconds`` (the
  congestion event: one oversized batch stalls every source through
  back-pressure), additive increase while there is headroom.
* **shard count** (``Pipeline.reshard``): with ``reshard = true``, a
  max/mean load ratio beyond ``imbalance_threshold`` triggers a live
  resize when the parser's per-key load model *predicts* the new
  placement actually helps (rendezvous routing makes some skews
  unfixable — one elephant key is one elephant key at any shard
  count); resizes are rate-limited by ``reshard_cooldown`` and clamped
  to ``[min_shards, max_shards]``.  Template state migrates with the
  relocated keys and global ids never change, so alerts stay
  byte-identical across a resize.  Without the opt-in the signal
  stays what it always was: an advisory in telemetry.

Every knob movement is clamped to the config's ``[min, max]``
envelope, recorded in :meth:`status`, and counted in telemetry.  The
controller never touches record data or detector state — alerts are
byte-identical with the controller on or off (the X11 bench holds it
to that), because every knob it moves is already proven
output-neutral.

The tick is **explicit-clock** (`tick(now)`) and single-threaded by
contract: the ingestion service drives :meth:`maybe_tick` from its
event loop; offline callers tick between batches.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

from repro.autoscale.config import AutoscaleConfig

#: Knob movements kept for ``status()`` (a diagnostic ring, not a log).
_MAX_ADJUSTMENTS = 64


class AutoscaleController:
    """Adjust runtime knobs from telemetry signals on a cadence.

    Args:
        config: bounds, targets, and cadence; defaults apply.
        pipeline: the :class:`~repro.api.pipeline.Pipeline` whose
            micro-batch size (and shard balance) the controller
            manages; optional — a service-only controller manages just
            the ingestion knobs.
        telemetry: a
            :class:`~repro.telemetry.instrument.PipelineTelemetry` to
            count adjustments and carry advisories; optional.
        clock: the cadence clock (``time.monotonic``); tests inject a
            fake and drive :meth:`tick` directly.
    """

    def __init__(self, config: AutoscaleConfig | None = None, *,
                 pipeline=None, telemetry=None,
                 clock=time.monotonic) -> None:
        self.config = config or AutoscaleConfig()
        self.pipeline = pipeline
        self.telemetry = telemetry
        self.clock = clock
        self.service = None
        self.ticks = 0
        self.adjustments: deque[str] = deque(maxlen=_MAX_ADJUSTMENTS)
        self.advisories: deque[str] = deque(maxlen=_MAX_ADJUSTMENTS)
        # Ticks run on one thread (the service's event loop), but
        # status() is read from metrics-scrape threads: the lock keeps
        # ring iteration safe against concurrent appends.
        self._lock = threading.Lock()
        self._next_tick: float | None = None
        # Signal baselines (deltas are per-tick).
        self._last_waits = 0
        self._last_batches = 0
        self._last_busy = 0.0
        self._idle_ticks = 0
        self._last_reshard: float | None = None

    # -- wiring ------------------------------------------------------------------

    def bind(self, service) -> "AutoscaleController":
        """Attach the ingestion service whose knobs this controller owns.

        Called by :class:`~repro.ingest.service.IngestService` when the
        controller is handed to it.  A pipeline-lifetime controller
        outlives each single-run service, so binding a *different*
        service re-baselines the per-tick signal deltas and starts
        fresh (``Pipeline.serve()`` per run); what stays forbidden is
        two *concurrent* services sharing one controller — the second
        bind steals the knobs from under the first, which is why a
        rebind resets rather than blends state.
        """
        if self.service is not service:
            self.service = service
            self._next_tick = None
            self._last_waits = 0
            self._last_batches = 0
            self._last_busy = 0.0
            self._idle_ticks = 0
        return self

    # -- cadence -----------------------------------------------------------------

    def maybe_tick(self, now: float | None = None) -> bool:
        """Tick if the cadence interval has elapsed; returns whether."""
        now = self.clock() if now is None else now
        if self._next_tick is None:
            self._next_tick = now + self.config.interval
            return False
        if now < self._next_tick:
            return False
        self.tick(now)
        self._next_tick = now + self.config.interval
        return True

    # -- the control loop --------------------------------------------------------

    def tick(self, now: float | None = None) -> list[str]:
        """Run one control cycle; returns the adjustments it made."""
        now = self.clock() if now is None else now
        self.ticks += 1
        made: list[str] = []
        if self.service is not None:
            made += self._scale_credits()
            made += self._scale_ingest_batch(now)
            made += self._scale_pipeline_batch()
        made += self._check_shard_balance(now)
        return made

    def _adjust(self, knob: str, old, new, reason: str) -> str:
        message = f"{knob}: {old} -> {new} ({reason})"
        with self._lock:
            self.adjustments.append(message)
        if self.telemetry is not None:
            self.telemetry.autoscale_adjustments.labels(knob=knob).inc()
        return message

    def _scale_credits(self) -> list[str]:
        gate = self.service.gate
        config = self.config
        waits_delta = gate.waits - self._last_waits
        self._last_waits = gate.waits
        old = gate.capacity
        if waits_delta > 0:
            # Producers blocked since the last tick: the budget is the
            # bottleneck.  Double (bounded) — from a mis-sized budget
            # of 1 this converges in log2(target) ticks.
            new = min(config.max_credits, old * 2)
            if new != old:
                gate.resize(new)
                self._idle_ticks = 0
                return [self._adjust("credits", old, new,
                                     f"{waits_delta} producers blocked")]
            return []
        if gate.in_use < config.idle_fraction * old:
            self._idle_ticks += 1
        else:
            self._idle_ticks = 0
        if self._idle_ticks >= 2 and old > config.min_credits:
            # Two quiet ticks: decay additively — slow release keeps
            # headroom for the next burst (AIMD's gentle half).
            new = max(config.min_credits, old - max(1, old // 8))
            gate.resize(new)
            self._idle_ticks = 0
            return [self._adjust("credits", old, new,
                                 "sustained low utilization")]
        return []

    def _scale_ingest_batch(self, now: float) -> list[str]:
        batcher = self.service.batcher
        handoff = self.service.handoff
        config = self.config
        made: list[str] = []
        rate = sum(meter.rate(now) for meter in self.service.meters.values())

        # Size the batch to one age window of measured arrivals, or to
        # the hand-off backlog if that is deeper (drain pressure).
        desired = max(math.ceil(rate * batcher.max_age), handoff.depth)
        desired = max(config.min_ingest_batch,
                      min(config.max_ingest_batch, desired))
        old = batcher.max_size
        if desired > old:
            # Multiplicative ramp toward the target: a bursty arrival
            # spike doubles the batch per tick instead of jumping —
            # each step's effect is measured before the next.
            new = min(desired, max(old * 2, config.min_ingest_batch))
            batcher.configure(max_size=new)
            made.append(self._adjust(
                "ingest_batch_size", old, new,
                f"arrival rate {rate:.0f}/s, depth {handoff.depth}"))
        elif desired < old // 2:
            # Additive decay: lulls shrink the batch gently so the age
            # bound, not the size bound, carries quiet periods.
            new = max(desired, old - max(1, old // 4))
            batcher.configure(max_size=new)
            made.append(self._adjust(
                "ingest_batch_size", old, new,
                f"arrival rate {rate:.0f}/s"))

        # Age: a trickle (under one record per window) stretches the
        # bound toward fewer, fuller batches; a flood shrinks it back
        # toward the latency floor (batches fill by size anyway).
        old_age = batcher.max_age
        if rate > 0 and rate * old_age < 1.0:
            new_age = min(config.max_batch_age, old_age * 1.5)
            if new_age != old_age:
                batcher.configure(max_age=new_age)
                made.append(self._adjust(
                    "max_batch_age", round(old_age, 4), round(new_age, 4),
                    f"trickle source ({rate:.2f}/s)"))
        elif rate * config.min_batch_age >= batcher.max_size > 0 \
                and old_age > config.min_batch_age:
            new_age = max(config.min_batch_age, old_age / 1.5)
            batcher.configure(max_age=new_age)
            made.append(self._adjust(
                "max_batch_age", round(old_age, 4), round(new_age, 4),
                f"flood ({rate:.0f}/s) fills batches by size"))
        return made

    def _scale_pipeline_batch(self) -> list[str]:
        handoff = self.service.handoff
        config = self.config
        batches_delta = handoff.batches - self._last_batches
        busy_delta = handoff.busy_seconds - self._last_busy
        self._last_batches = handoff.batches
        self._last_busy = handoff.busy_seconds
        pipeline = self.pipeline
        if pipeline is None or batches_delta <= 0:
            return []
        current = pipeline.batch_size
        if current == 0:
            # 0 = the per-record reference mode; an operator chose it
            # deliberately (debugging), so the controller leaves it be.
            return []
        batch_seconds = busy_delta / batches_delta
        if batch_seconds > config.target_batch_seconds:
            # Multiplicative decrease: one oversized batch stalls every
            # source through back-pressure — the congestion event.  A
            # decrease only ever decreases: a spec batch already below
            # the configured floor stays where the operator put it.
            new = max(config.min_batch_size, current // 2)
            if new < current:
                pipeline.set_batch_size(new)
                return [self._adjust(
                    "batch_size", current, new,
                    f"batch took {batch_seconds:.3f}s "
                    f"(target {config.target_batch_seconds}s)")]
        elif (batch_seconds < config.target_batch_seconds / 4
              and current < config.max_batch_size):
            # Additive increase while there is latency headroom.
            new = min(config.max_batch_size,
                      current + max(16, current // 8))
            pipeline.set_batch_size(new)
            return [self._adjust(
                "batch_size", current, new,
                f"batch took {batch_seconds:.3f}s, headroom")]
        return []

    def _check_shard_balance(self, now: float) -> list[str]:
        pipeline = self.pipeline
        if pipeline is None or not pipeline.sharded:
            return []
        loads = pipeline.parser.shard_loads
        mean = sum(loads) / len(loads)
        if not mean:
            return []
        imbalance = max(loads) / mean
        if self.config.reshard:
            made = self._maybe_reshard(now, imbalance, len(loads))
            if made:
                return made
        if imbalance > self.config.imbalance_threshold:
            hot = loads.index(max(loads))
            message = (
                f"shard imbalance {imbalance:.2f}x (threshold "
                f"{self.config.imbalance_threshold}x): shard {hot} holds "
                f"{max(loads)} of {sum(loads)} records — consider more "
                "shards or rebalancing source routing"
            )
            with self._lock:
                if not self.advisories or self.advisories[-1] != message:
                    self.advisories.append(message)
            if self.telemetry is not None:
                self.telemetry.advise(message)
        return []

    def _maybe_reshard(self, now: float, imbalance: float,
                       current: int) -> list[str]:
        """Resize the parser shard count when the load model says it helps.

        Growth: the smallest count within the envelope whose *predicted*
        imbalance (the per-key load history replayed through rendezvous
        placement) clears the threshold — or, failing that, the best
        candidate if it improves on today by at least 10% (a single
        elephant key is unfixable by resharding and must not trigger a
        resize storm).  Shrink: shards beyond the distinct-key count
        can never receive a record, so they are folded away — but only
        when the model predicts the fold improves balance, so grow and
        shrink can never cycle.  Resizes respect ``reshard_cooldown``.
        """
        config = self.config
        parser = self.pipeline.parser
        if (self._last_reshard is not None
                and now - self._last_reshard < config.reshard_cooldown):
            return []
        target = None
        reason = ""
        if (imbalance > config.imbalance_threshold
                and current < config.max_shards):
            best: tuple[int, float] | None = None
            for candidate in range(current + 1, config.max_shards + 1):
                predicted = parser.predicted_imbalance(candidate)
                if predicted <= config.imbalance_threshold:
                    target = candidate
                    reason = (f"imbalance {imbalance:.2f}x, predicted "
                              f"{predicted:.2f}x at {candidate} shards")
                    break
                if best is None or predicted < best[1]:
                    best = (candidate, predicted)
            if target is None and best is not None \
                    and best[1] <= imbalance * 0.9:
                target = best[0]
                reason = (f"imbalance {imbalance:.2f}x, best achievable "
                          f"{best[1]:.2f}x at {best[0]} shards")
        elif (0 < parser.distinct_keys < current
                and current > config.min_shards):
            candidate = max(config.min_shards, parser.distinct_keys)
            predicted = parser.predicted_imbalance(candidate)
            # Fold empty shards away only when that strictly improves
            # balance — otherwise a grow that spread K keys over more
            # than K shards would be immediately undone and the two
            # branches would resize forever in a cycle.
            if predicted < imbalance:
                target = candidate
                reason = (f"{parser.distinct_keys} distinct routing keys "
                          f"cannot fill {current} shards (predicted "
                          f"{predicted:.2f}x)")
        if target is None or target == current:
            return []
        self.pipeline.reshard(target)
        self._last_reshard = now
        return [self._adjust("shards", current, target, reason)]

    # -- exposition --------------------------------------------------------------

    def status(self) -> dict:
        """Current knob positions, tick count, and recent movements."""
        knobs: dict[str, float] = {}
        if self.service is not None:
            knobs["credits"] = self.service.gate.capacity
            knobs["ingest_batch_size"] = self.service.batcher.max_size
            knobs["max_batch_age"] = self.service.batcher.max_age
        if self.pipeline is not None:
            knobs["batch_size"] = self.pipeline.batch_size
        with self._lock:
            return {
                "ticks": self.ticks,
                "knobs": knobs,
                "adjustments": list(self.adjustments),
                "advisories": list(self.advisories),
            }
