"""Event count vectors: the counter-based detectors' input.

PCA, Invariant Mining and LogClustering all consume the *event count
matrix*: one row per session, one column per template, cell = how many
times the template occurred.  The vectorizer learns its column
vocabulary at fit time; templates first seen at detection time go to a
shared overflow column, so vector length never changes after fit (the
closed-world limitation the paper discusses for DeepLog applies to
these models too, and the overflow column is how we surface rather
than hide it).
"""

from __future__ import annotations

import numpy as np

from repro.detection.base import Session, template_sequence


class CountVectorizer:
    """Template-count featurizer with a fixed post-fit vocabulary."""

    def __init__(self) -> None:
        self._column_of: dict[int, int] | None = None

    @property
    def dimension(self) -> int:
        """Columns in the output (known templates + 1 overflow)."""
        self._require_fitted()
        assert self._column_of is not None
        return len(self._column_of) + 1

    def _require_fitted(self) -> None:
        if self._column_of is None:
            raise RuntimeError("CountVectorizer is not fitted; call fit() first")

    def fit(self, sessions: list[Session]) -> "CountVectorizer":
        """Learn the template vocabulary from training sessions."""
        seen: dict[int, int] = {}
        for session in sessions:
            for template_id in template_sequence(session):
                if template_id not in seen:
                    seen[template_id] = len(seen)
        self._column_of = seen
        return self

    def transform(self, session: Session) -> np.ndarray:
        """Count vector of one session (unseen templates → overflow)."""
        self._require_fitted()
        assert self._column_of is not None
        vector = np.zeros(self.dimension)
        overflow = self.dimension - 1
        for template_id in template_sequence(session):
            vector[self._column_of.get(template_id, overflow)] += 1.0
        return vector

    def transform_many(self, sessions: list[Session]) -> np.ndarray:
        """Count matrix: one row per session."""
        self._require_fitted()
        if not sessions:
            return np.zeros((0, self.dimension))
        return np.stack([self.transform(session) for session in sessions])

    def fit_transform(self, sessions: list[Session]) -> np.ndarray:
        return self.fit(sessions).transform_many(sessions)
