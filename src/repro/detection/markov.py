"""Markov-chain sequential baseline.

A first-order transition model over template ids: learn
P(next template | current template) from normal sessions, flag a
session when it contains transitions rarer than ``threshold``.

This sits between the §I keyword grep and the LSTM models: it sees
*sequence* (unlike count vectors) but only one step of context (unlike
an LSTM), trains in one pass with no gradient work, and is the honest
"simplest thing that could work" yardstick the deep models must beat.
Exported beside :data:`repro.detection.DETECTORS` rather than inside
it — it is this reproduction's baseline, not part of the paper's §III
study set.
"""

from __future__ import annotations

from collections import Counter

from repro.api.registry import register_component
from repro.detection.base import (
    DetectionResult,
    Detector,
    Session,
    template_sequence,
)

#: Sentinel states marking session boundaries, so "starts with X" and
#: "ends with Y" are themselves learned transitions.
_START = -1
_END = -2


@register_component("detector", "markov")
class MarkovDetector(Detector):
    """First-order template-transition detector.

    Args:
        threshold: minimum training probability for a transition to
            count as normal.  Transitions never seen in training have
            probability 0 and always violate.
        smoothing: Laplace smoothing added per known next-state; keeps
            rare-but-seen transitions above zero.
    """

    name = "markov"
    supervised = False

    def __init__(self, threshold: float = 0.02, smoothing: float = 0.0):
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        if smoothing < 0.0:
            raise ValueError(f"smoothing must be >= 0, got {smoothing}")
        self.threshold = threshold
        self.smoothing = smoothing
        self._transitions: dict[int, Counter[int]] | None = None
        self._totals: Counter[int] = Counter()
        self._states: set[int] = set()

    @staticmethod
    def _path(session: Session) -> list[int]:
        return [_START] + template_sequence(session) + [_END]

    def fit(
        self, sessions: list[Session], labels: list[bool] | None = None
    ) -> "MarkovDetector":
        transitions: dict[int, Counter[int]] = {}
        totals: Counter[int] = Counter()
        states: set[int] = set()
        for session in sessions:
            path = self._path(session)
            states.update(path)
            for current, following in zip(path, path[1:]):
                transitions.setdefault(current, Counter())[following] += 1
                totals[current] += 1
        if not totals:
            raise ValueError("MarkovDetector needs non-empty training sessions")
        self._transitions = transitions
        self._totals = totals
        self._states = states
        return self

    def probability(self, current: int, following: int) -> float:
        """Smoothed training probability of one transition."""
        if self._transitions is None:
            raise RuntimeError("MarkovDetector is not fitted; call fit() first")
        row = self._transitions.get(current)
        if row is None:
            return 0.0
        count = row[following] + self.smoothing
        total = self._totals[current] + self.smoothing * max(1, len(self._states))
        return count / total if total else 0.0

    def detect(self, session: Session) -> DetectionResult:
        if self._transitions is None:
            raise RuntimeError("MarkovDetector is not fitted; call fit() first")
        path = self._path(session)
        violations = 0
        worst = 1.0
        reasons: list[str] = []
        for position, (current, following) in enumerate(zip(path, path[1:])):
            probability = self.probability(current, following)
            worst = min(worst, probability)
            if probability < self.threshold:
                violations += 1
                if len(reasons) < 5:
                    def describe(state: int) -> str:
                        if state == _START:
                            return "<start>"
                        if state == _END:
                            return "<end>"
                        return f"template#{state}"

                    reasons.append(
                        f"transition {describe(current)} -> "
                        f"{describe(following)} has probability "
                        f"{probability:.4f} (< {self.threshold})"
                    )
        score = violations / max(1, len(path) - 1)
        return DetectionResult(
            anomalous=violations > 0, score=score, reasons=tuple(reasons)
        )
