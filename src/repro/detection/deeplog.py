"""DeepLog (Du et al., CCS'17).

Two LSTM models, as the paper (§III) describes:

* **Sequential model** — an LSTM over windows of template *indices*
  trained to predict the next template; a session is sequentially
  anomalous when some actual next template is not among the model's
  top-``g`` predictions.  The fixed index vocabulary is DeepLog's
  closed-world assumption the paper criticizes: templates unseen at
  training time cannot be predicted and are counted as violations.
* **Quantitative (parameter value) model** — per template, an LSTM
  regressor over the series of numeric variable vectors; a value whose
  prediction error falls outside the training-error confidence
  interval is a quantitative anomaly (Table I's L3).  Templates with
  too few observations fall back to a Gaussian range check, which is
  what the original does implicitly by refusing to model them.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_component
from repro.detection.base import (
    DetectionResult,
    Detector,
    Session,
    numeric_variables,
    template_sequence,
)
from repro.nn.layers import Dense, Embedding
from repro.nn.losses import softmax, softmax_cross_entropy, mse_loss
from repro.nn.lstm import Lstm
from repro.nn.network import Module, Trainer
from repro.nn.optim import Adam


class _SequenceModel(Module):
    """Embedding → LSTM → Dense next-template classifier."""

    def __init__(self, vocabulary: int, embedding_dim: int, hidden: int,
                 *, seed: int):
        self.embedding = Embedding(vocabulary, embedding_dim, seed=seed)
        self.lstm = Lstm(embedding_dim, hidden, seed=seed + 1)
        self.head = Dense(hidden, vocabulary, seed=seed + 2)

    def logits(self, windows: np.ndarray) -> np.ndarray:
        embedded = self.embedding.forward(windows)
        final_hidden = self.lstm.last_hidden(embedded)
        return self.head.forward(final_hidden)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad_hidden = self.head.backward(grad_logits)
        grad_embedded = self.lstm.backward_last(grad_hidden)
        self.embedding.backward(grad_embedded)


class _ValueModel(Module):
    """Per-template value regressor: LSTM over numeric variable vectors."""

    def __init__(self, dimension: int, window: int, hidden: int, *, seed: int):
        self.dimension = dimension
        self.window = window
        self.lstm = Lstm(dimension, hidden, seed=seed)
        self.head = Dense(hidden, dimension, seed=seed + 1)
        self.mean = np.zeros(dimension)
        self.std = np.ones(dimension)
        self.error_mean = 0.0
        self.error_std = 1.0

    def _normalize(self, values: np.ndarray) -> np.ndarray:
        return (values - self.mean) / self.std

    def predict(self, window_values: np.ndarray) -> np.ndarray:
        hidden = self.lstm.last_hidden(window_values[None, :, :])
        return self.head.forward(hidden)[0]

    def fit_series(self, series: np.ndarray, *, epochs: int, seed: int) -> None:
        """Train on one template's chronological value matrix."""
        self.mean = series.mean(axis=0)
        std = series.std(axis=0)
        self.std = np.where(std > 0, std, 1.0)
        normalized = self._normalize(series)
        windows = []
        targets = []
        for end in range(self.window, len(normalized)):
            windows.append(normalized[end - self.window:end])
            targets.append(normalized[end])
        if not windows:
            return
        x = np.stack(windows)
        y = np.stack(targets)

        def loss_fn(x_batch: np.ndarray, y_batch: np.ndarray):
            hidden = self.lstm.last_hidden(x_batch)
            predictions = self.head.forward(hidden)
            loss, grad = mse_loss(predictions, y_batch)
            grad_hidden = self.head.backward(grad)
            self.lstm.backward_last(grad_hidden)
            return loss, None

        trainer = Trainer(
            self, Adam(learning_rate=0.01), batch_size=32, epochs=epochs,
            seed=seed,
        )
        trainer.fit(x, y, loss_fn)
        # Training-error statistics drive the detection interval.
        errors = []
        for window_values, target in zip(x, y):
            prediction = self.predict(window_values)
            errors.append(float(((prediction - target) ** 2).mean()))
        if errors:
            self.error_mean = float(np.mean(errors))
            self.error_std = float(np.std(errors)) or 1.0

    def is_anomalous(
        self, history: np.ndarray, value: np.ndarray, sigmas: float
    ) -> bool:
        normalized_history = self._normalize(history)
        normalized_value = self._normalize(value)
        prediction = self.predict(normalized_history[-self.window:])
        error = float(((prediction - normalized_value) ** 2).mean())
        return error > self.error_mean + sigmas * self.error_std

    def gaussian_anomalous(self, value: np.ndarray, sigmas: float) -> bool:
        """Range check used when the in-session history is too short.

        A deployed DeepLog keeps a global per-template history across
        sessions; per-session evaluation starts cold, so early values
        are screened against the training distribution instead.
        """
        deviation = np.abs(self._normalize(value))
        return bool((deviation > sigmas).any())


class _GaussianValueModel:
    """Fallback for rarely-seen templates: per-dimension range check."""

    def __init__(self, series: np.ndarray, sigmas: float):
        self.mean = series.mean(axis=0)
        std = series.std(axis=0)
        self.std = np.where(std > 0, std, np.abs(self.mean) * 0.1 + 1.0)
        self.sigmas = sigmas

    def is_anomalous(self, value: np.ndarray) -> bool:
        deviation = np.abs(value - self.mean) / self.std
        return bool((deviation > self.sigmas).any())


@register_component("detector", "deeplog")
class DeepLogDetector(Detector):
    """The two-headed DeepLog detector.

    Args:
        window: sequential history length ``h`` (original default 10).
        top_g: a next template is normal if within the top-``g``
            predictions (original default 9).
        hidden: LSTM hidden size.
        embedding_dim: template embedding size.
        value_window: history length of the parameter-value model.
        value_sigmas: confidence width of the value-error interval.
        min_value_observations: below this, a template's value model
            falls back to the Gaussian range check.
        quantitative: enable the parameter-value head (ablation knob
            for the Table I bench).
        epochs / seed: training controls.
    """

    name = "deeplog"
    supervised = False

    def __init__(
        self,
        window: int = 10,
        top_g: int = 3,
        hidden: int = 32,
        embedding_dim: int = 16,
        value_window: int = 3,
        value_sigmas: float = 6.0,
        min_value_observations: int = 40,
        quantitative: bool = True,
        epochs: int = 10,
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if top_g < 1:
            raise ValueError(f"top_g must be >= 1, got {top_g}")
        self.window = window
        self.top_g = top_g
        self.hidden = hidden
        self.embedding_dim = embedding_dim
        self.value_window = value_window
        self.value_sigmas = value_sigmas
        self.min_value_observations = min_value_observations
        self.quantitative = quantitative
        self.epochs = epochs
        self.seed = seed
        self._index_of: dict[int, int] | None = None
        self._model: _SequenceModel | None = None
        self._value_models: dict[int, _ValueModel | _GaussianValueModel] = {}
        self._pad_index = 0

    # -- featurization -------------------------------------------------------

    def _indices(self, session: Session) -> list[int]:
        assert self._index_of is not None
        unknown = len(self._index_of) + 1  # pad=0, templates=1.., unk=last
        return [
            self._index_of.get(template_id, unknown)
            for template_id in template_sequence(session)
        ]

    def _windows(self, indices: list[int]) -> tuple[np.ndarray, np.ndarray]:
        """All (history, next) pairs, histories left-padded with 0."""
        histories = []
        nexts = []
        for position in range(1, len(indices)):
            start = max(0, position - self.window)
            history = indices[start:position]
            history = [self._pad_index] * (self.window - len(history)) + history
            histories.append(history)
            nexts.append(indices[position])
        if not histories:
            return np.zeros((0, self.window), dtype=int), np.zeros(0, dtype=int)
        return np.asarray(histories, dtype=int), np.asarray(nexts, dtype=int)

    # -- training -------------------------------------------------------------

    def fit(
        self, sessions: list[Session], labels: list[bool] | None = None
    ) -> "DeepLogDetector":
        vocabulary: dict[int, int] = {}
        for session in sessions:
            for template_id in template_sequence(session):
                if template_id not in vocabulary:
                    vocabulary[template_id] = len(vocabulary) + 1
        if not vocabulary:
            raise ValueError("DeepLogDetector needs non-empty training sessions")
        self._index_of = vocabulary
        model_vocabulary = len(vocabulary) + 2  # pad + templates + unk
        self._model = _SequenceModel(
            model_vocabulary, self.embedding_dim, self.hidden, seed=self.seed
        )

        all_histories = []
        all_nexts = []
        for session in sessions:
            histories, nexts = self._windows(self._indices(session))
            if len(histories):
                all_histories.append(histories)
                all_nexts.append(nexts)
        x = np.concatenate(all_histories) if all_histories else np.zeros((0, self.window), dtype=int)
        y = np.concatenate(all_nexts) if all_nexts else np.zeros(0, dtype=int)

        model = self._model

        def loss_fn(x_batch: np.ndarray, y_batch: np.ndarray):
            logits = model.logits(x_batch)
            loss, grad, probabilities = softmax_cross_entropy(logits, y_batch)
            model.backward(grad)
            correct = int((probabilities.argmax(axis=1) == y_batch).sum())
            return loss, correct

        trainer = Trainer(
            model, Adam(learning_rate=0.005), batch_size=64,
            epochs=self.epochs, seed=self.seed,
        )
        trainer.fit(x, y, loss_fn)

        if self.quantitative:
            self._fit_value_models(sessions)
        return self

    def _fit_value_models(self, sessions: list[Session]) -> None:
        series_per_template: dict[int, list[list[float]]] = {}
        for session in sessions:
            for event in session:
                values = numeric_variables(event)
                if values:
                    series_per_template.setdefault(event.template_id, []).append(
                        values
                    )
        for template_id, rows in series_per_template.items():
            dimension = min(len(row) for row in rows)
            matrix = np.asarray([row[:dimension] for row in rows])
            if len(rows) >= self.min_value_observations:
                model = _ValueModel(
                    dimension, self.value_window, hidden=8,
                    seed=self.seed + template_id,
                )
                model.fit_series(matrix, epochs=5, seed=self.seed)
                self._value_models[template_id] = model
            else:
                self._value_models[template_id] = _GaussianValueModel(
                    matrix, self.value_sigmas
                )

    # -- detection --------------------------------------------------------------

    def detect(self, session: Session) -> DetectionResult:
        self._require_fitted("_model")
        assert self._model is not None and self._index_of is not None
        indices = self._indices(session)
        histories, nexts = self._windows(indices)
        reasons: list[str] = []
        violations = 0
        checks = 0

        if len(histories):
            logits = self._model.logits(histories)
            probabilities = softmax(logits)
            unknown = len(self._index_of) + 1
            ranked = np.argsort(-probabilities, axis=1)[:, : self.top_g]
            for position, actual in enumerate(nexts):
                checks += 1
                if actual == unknown or actual not in ranked[position]:
                    violations += 1
                    if len(reasons) < 5:
                        event = session[position + 1]
                        reasons.append(
                            f"unexpected event at position {position + 1}: "
                            f"{event.template!r} not in top-{self.top_g}"
                        )

        quantitative_hits = 0
        if self.quantitative:
            quantitative_hits = self._detect_values(session, reasons)

        total_violations = violations + quantitative_hits
        score = total_violations / max(1, checks + len(session))
        return DetectionResult(
            anomalous=total_violations > 0,
            score=score,
            reasons=tuple(reasons),
        )

    def _detect_values(self, session: Session, reasons: list[str]) -> int:
        hits = 0
        history_per_template: dict[int, list[list[float]]] = {}
        for event in session:
            values = numeric_variables(event)
            if not values:
                continue
            model = self._value_models.get(event.template_id)
            if model is None:
                continue
            if isinstance(model, _GaussianValueModel):
                dimension = model.mean.shape[0]
                if model.is_anomalous(np.asarray(values[:dimension])):
                    hits += 1
                    if len(reasons) < 5:
                        reasons.append(
                            f"abnormal values {values} for {event.template!r}"
                        )
                continue
            dimension = model.dimension
            history = history_per_template.setdefault(event.template_id, [])
            value = np.asarray(values[:dimension])
            if len(history) >= model.window:
                flagged = model.is_anomalous(
                    np.asarray(history), value, self.value_sigmas
                )
            else:
                flagged = model.gaussian_anomalous(value, self.value_sigmas)
            if flagged:
                hits += 1
                if len(reasons) < 5:
                    reasons.append(
                        f"abnormal values {values} for {event.template!r}"
                    )
            history.append(values[:dimension])
        return hits
