"""Invariant Mining (Lou et al., USENIX ATC'10).

Program flows impose linear relations on event counts: every "open"
has a matching "close", every block allocation is followed by exactly
three replica receipts, and so on.  The miner searches for sparse
integer invariants ``a * count[i] - b * count[j] = 0`` (pairs, the
dominant form in the original) that hold on (nearly) all training
sessions; a session violating any mined invariant is anomalous.

The search follows the original's shape at laptop scale: hypothesize
small integer coefficient pairs from observed count ratios, then keep
hypotheses whose support exceeds ``support``.  Invariants involving an
event that rarely co-occurs with its partner are filtered by a minimum
co-occurrence count to avoid spurious ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.api.registry import register_component
from repro.detection.base import DetectionResult, Detector, Session
from repro.detection.count_vector import CountVectorizer


@dataclass(frozen=True)
class Invariant:
    """``a * count[i] == b * count[j]`` with small integers a, b."""

    column_i: int
    column_j: int
    a: int
    b: int

    def holds(self, vector: np.ndarray) -> bool:
        return self.a * vector[self.column_i] == self.b * vector[self.column_j]

    def describe(self) -> str:
        return (
            f"{self.a} * count(template#{self.column_i}) == "
            f"{self.b} * count(template#{self.column_j})"
        )


@register_component("detector", "invariants")
class InvariantMiningDetector(Detector):
    """The linear-invariant detector.

    Args:
        support: minimum fraction of training sessions an invariant
            must satisfy (the original uses 98 %).
        max_coefficient: largest integer coefficient hypothesized.
        min_cooccurrence: minimum number of training sessions where
            both events appear before a ratio hypothesis is formed.
    """

    name = "invariants"
    supervised = False

    def __init__(
        self,
        support: float = 0.98,
        max_coefficient: int = 5,
        min_cooccurrence: int = 5,
    ) -> None:
        if not 0.0 < support <= 1.0:
            raise ValueError(f"support must be in (0, 1], got {support}")
        if max_coefficient < 1:
            raise ValueError(f"max_coefficient must be >= 1, got {max_coefficient}")
        self.support = support
        self.max_coefficient = max_coefficient
        self.min_cooccurrence = min_cooccurrence
        self.vectorizer = CountVectorizer()
        self.invariants: list[Invariant] | None = None

    def fit(
        self, sessions: list[Session], labels: list[bool] | None = None
    ) -> "InvariantMiningDetector":
        matrix = self.vectorizer.fit_transform(sessions)
        rows, columns = matrix.shape
        if rows == 0:
            raise ValueError("InvariantMiningDetector needs training sessions")
        invariants: list[Invariant] = []
        for i in range(columns):
            for j in range(i + 1, columns):
                invariant = self._mine_pair(matrix, i, j)
                if invariant is not None:
                    invariants.append(invariant)
        self.invariants = invariants
        return self

    def _mine_pair(
        self, matrix: np.ndarray, i: np.intp | int, j: np.intp | int
    ) -> Invariant | None:
        counts_i = matrix[:, i]
        counts_j = matrix[:, j]
        both = (counts_i > 0) & (counts_j > 0)
        if both.sum() < self.min_cooccurrence:
            return None
        # Hypothesize from the most common exact ratio among co-occurring
        # sessions, with small-integer coefficients.
        ratios: dict[tuple[int, int], int] = {}
        for x, y in zip(counts_i[both], counts_j[both]):
            fraction = Fraction(int(y)).limit_denominator() / Fraction(int(x))
            a, b = fraction.numerator, fraction.denominator
            # Invariant form: a * x == b * y  means ratio y/x == a/b.
            if a <= self.max_coefficient and b <= self.max_coefficient:
                ratios[(a, b)] = ratios.get((a, b), 0) + 1
        if not ratios:
            return None
        (a, b), _ = max(ratios.items(), key=lambda item: item[1])
        candidate = Invariant(column_i=int(i), column_j=int(j), a=a, b=b)
        satisfied = np.fromiter(
            (candidate.holds(row) for row in matrix), dtype=bool, count=len(matrix)
        )
        if satisfied.mean() >= self.support:
            return candidate
        return None

    def detect(self, session: Session) -> DetectionResult:
        if self.invariants is None:
            raise RuntimeError(
                "InvariantMiningDetector is not fitted; call fit() first"
            )
        vector = self.vectorizer.transform(session)
        violations = [
            invariant
            for invariant in self.invariants
            if not invariant.holds(vector)
        ]
        # Unseen templates landing in the overflow column also indicate
        # a flow never observed during training.
        overflow = vector[-1]
        score = float(len(violations) + overflow)
        reasons = tuple(
            f"invariant violated: {invariant.describe()}"
            for invariant in violations[:5]
        )
        if overflow:
            reasons += (f"{int(overflow)} events with unseen templates",)
        return DetectionResult(
            anomalous=bool(violations) or overflow > 0,
            score=score,
            reasons=reasons,
        )
