"""LogRobust (Zhang et al., ESEC/FSE'19).

A *supervised* classifier over whole sessions: each event becomes a
semantic vector (TF-IDF-weighted token embeddings — robust to template
edits), the session's vector sequence feeds an attention-equipped
BiLSTM, and a dense head produces the anomaly probability.

Because it is supervised, LogRobust needs labelled anomalous sessions
in its training data — the original trains on sets with up to 50 %
anomalies.  Experiment X1 probes exactly this: trained anomaly-free,
the classifier has only one class to learn and degrades, while the
unsupervised models are unaffected.  When fit() receives no anomalous
labels it falls back to predicting "normal" for everything and says so
in the detection reasons, rather than failing.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_component
from repro.detection.base import DetectionResult, Detector, Session
from repro.detection.semantics import SemanticVectorizer
from repro.nn.attention import AdditiveAttention
from repro.nn.layers import Dense
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.lstm import BiLstm
from repro.nn.network import Module, Trainer
from repro.nn.optim import Adam


class _AttentionBiLstm(Module):
    """Semantic sequence → BiLSTM → attention → logit."""

    def __init__(self, semantic_dim: int, hidden: int, attention_size: int,
                 *, seed: int):
        self.bilstm = BiLstm(semantic_dim, hidden, seed=seed)
        self.attention = AdditiveAttention(2 * hidden, attention_size,
                                           seed=seed + 2)
        self.head = Dense(2 * hidden, 1, seed=seed + 3)

    def logits(self, sequences: np.ndarray) -> np.ndarray:
        states = self.bilstm.forward(sequences)
        context = self.attention.forward(states)
        return self.head.forward(context)[:, 0]

    def backward(self, grad_logits: np.ndarray) -> None:
        grad_context = self.head.backward(grad_logits[:, None])
        grad_states = self.attention.backward(grad_context)
        self.bilstm.backward(grad_states)


@register_component("detector", "logrobust")
class LogRobustDetector(Detector):
    """The attention-BiLSTM session classifier.

    Args:
        max_length: sessions are truncated/padded to this many events.
        hidden: BiLSTM hidden size per direction.
        attention_size: attention projection size.
        semantic_dim: semantic vector dimension.
        threshold: probability above which a session is anomalous.
        epochs / seed: training controls.
    """

    name = "logrobust"
    supervised = True

    def __init__(
        self,
        max_length: int = 30,
        hidden: int = 32,
        attention_size: int = 24,
        semantic_dim: int = 48,
        threshold: float = 0.5,
        epochs: int = 25,
        seed: int = 0,
    ) -> None:
        if max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length}")
        self.max_length = max_length
        self.hidden = hidden
        self.attention_size = attention_size
        self.semantic_dim = semantic_dim
        self.threshold = threshold
        self.epochs = epochs
        self.seed = seed
        self.vectorizer = SemanticVectorizer(dimension=semantic_dim)
        self._model: _AttentionBiLstm | None = None
        self._degenerate = False

    def _featurize(self, session: Session) -> np.ndarray:
        """Pad/truncate a session into a (max_length, dim) matrix."""
        matrix = np.zeros((self.max_length, self.semantic_dim))
        for slot, event in enumerate(session[: self.max_length]):
            matrix[slot] = self.vectorizer.vectorize(event.template)
        return matrix

    def fit(
        self, sessions: list[Session], labels: list[bool] | None = None
    ) -> "LogRobustDetector":
        if labels is None:
            labels = [False] * len(sessions)
        if len(labels) != len(sessions):
            raise ValueError(
                f"labels ({len(labels)}) and sessions ({len(sessions)}) disagree"
            )
        if not sessions:
            raise ValueError("LogRobustDetector needs training sessions")
        templates = sorted(
            {event.template for session in sessions for event in session}
        )
        self.vectorizer.fit(templates)
        self._model = _AttentionBiLstm(
            self.semantic_dim, self.hidden, self.attention_size, seed=self.seed
        )
        self._degenerate = not any(labels)
        if self._degenerate:
            # One-class training data: a discriminative model cannot
            # learn a boundary.  X1 measures this failure mode; detect()
            # reports it honestly.
            return self

        x = np.stack([self._featurize(session) for session in sessions])
        y = np.asarray(labels, dtype=np.float64)
        model = self._model

        def loss_fn(x_batch: np.ndarray, y_batch: np.ndarray):
            logits = model.logits(x_batch)
            loss, grad, probabilities = binary_cross_entropy_with_logits(
                logits, y_batch
            )
            model.backward(grad)
            correct = int(((probabilities > 0.5) == (y_batch > 0.5)).sum())
            return loss, correct

        trainer = Trainer(
            model, Adam(learning_rate=0.01), batch_size=32,
            epochs=self.epochs, seed=self.seed,
        )
        trainer.fit(x, y, loss_fn)
        return self

    def detect(self, session: Session) -> DetectionResult:
        self._require_fitted("_model")
        assert self._model is not None
        if self._degenerate:
            return DetectionResult(
                anomalous=False,
                score=0.0,
                reasons=(
                    "trained without labelled anomalies: supervised "
                    "classifier degenerates to always-normal",
                ),
            )
        logit = float(self._model.logits(self._featurize(session)[None])[0])
        probability = 1.0 / (1.0 + np.exp(-np.clip(logit, -500, 500)))
        anomalous = probability > self.threshold
        reasons = ()
        if anomalous:
            reasons = (f"classifier probability {probability:.3f}",)
        return DetectionResult(
            anomalous=anomalous, score=probability, reasons=reasons
        )
