"""Keyword-matching baseline (the practice the paper's §I critiques).

"The use of keyword matching and regular expression helps to detect
simple and well-known anomalous events.  Still, it is unable to
identify a large portion of the anomalies, as many of them are
sequences of 'non-anomalous' logs leading to an undesired outcome."

This detector is that practice, implemented honestly: flag a session
when any event's message matches a configured keyword/regex or its
severity reaches a threshold.  It needs no training, catches the easy
cases instantly, and — as the ablation bench measures — misses exactly
the anomaly families the paper says it must: quantitative anomalies
and sequential anomalies composed of individually-normal events.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.api.registry import register_component
from repro.detection.base import DetectionResult, Detector, Session
from repro.logs.record import Severity

#: The keywords every operations team greps for first.
DEFAULT_KEYWORDS: tuple[str, ...] = (
    "error", "exception", "fatal", "fail", "failed", "failure",
    "panic", "crash", "timeout", "denied", "refused",
)


@register_component("detector", "keyword")
class KeywordMatchDetector(Detector):
    """Flag sessions containing alarm keywords or high-severity events.

    Args:
        keywords: case-insensitive substrings to look for.
        patterns: additional regexes (strings), each searched per
            message.
        severity_threshold: events at or above this HEADER level flag
            the session regardless of message content.
    """

    name = "keyword"
    supervised = False

    def __init__(
        self,
        keywords: Iterable[str] = DEFAULT_KEYWORDS,
        patterns: Iterable[str] = (),
        severity_threshold: Severity = Severity.ERROR,
    ) -> None:
        self.keywords = tuple(keyword.lower() for keyword in keywords)
        self.patterns = tuple(re.compile(pattern) for pattern in patterns)
        self.severity_threshold = severity_threshold

    def fit(
        self, sessions: list[Session], labels: list[bool] | None = None
    ) -> "KeywordMatchDetector":
        """No-op: keyword matching has nothing to learn."""
        return self

    def detect(self, session: Session) -> DetectionResult:
        reasons: list[str] = []
        hits = 0
        for event in session:
            message = event.record.message
            lowered = message.lower()
            matched_keyword = next(
                (keyword for keyword in self.keywords if keyword in lowered),
                None,
            )
            matched_pattern = next(
                (
                    pattern.pattern
                    for pattern in self.patterns
                    if pattern.search(message)
                ),
                None,
            )
            severe = event.record.severity >= self.severity_threshold
            if matched_keyword or matched_pattern or severe:
                hits += 1
                if len(reasons) < 5:
                    if matched_keyword:
                        reasons.append(
                            f"keyword {matched_keyword!r} in {message!r}"
                        )
                    elif matched_pattern:
                        reasons.append(
                            f"pattern {matched_pattern!r} in {message!r}"
                        )
                    else:
                        reasons.append(
                            f"severity {event.record.severity.name} event"
                        )
        score = hits / len(session) if session else 0.0
        return DetectionResult(
            anomalous=hits > 0, score=score, reasons=tuple(reasons)
        )
