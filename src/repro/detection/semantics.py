"""Semantic vectorization of log templates.

LogRobust's answer to log instability (paper §III): instead of feeding
the LSTM template *indices* — which break whenever a statement changes
— each template is embedded into a fixed-length semantic vector built
from its tokens, so a slightly-edited statement lands near its old
self and the model generalizes across the edit.

The original uses pretrained FastText word vectors; none are available
offline, so this module substitutes *seeded random indexing*: each
token deterministically hashes to a fixed random unit vector.  The
substitution preserves the property the detectors rely on — templates
sharing most tokens have high cosine similarity, templates sharing few
have low — because the vectors of distinct tokens are near-orthogonal
in high dimension.  What it loses is cross-word synonymy ("send" vs
"transmit" are unrelated here); the instability injector's synonym
twists therefore land slightly farther than FastText would place them,
making our X2 robustness measurement *conservative* for LogRobust.

Token weights follow LogRobust: TF-IDF over the training templates.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.logs.record import WILDCARD, tokenize


def _token_vector(token: str, dimension: int) -> np.ndarray:
    """Deterministic unit vector for a token (seeded random indexing)."""
    digest = hashlib.sha256(token.lower().encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    vector = rng.standard_normal(dimension)
    norm = np.linalg.norm(vector)
    return vector / norm if norm > 0 else vector


class SemanticVectorizer:
    """Template → fixed-length semantic vector.

    Args:
        dimension: embedding dimension (default 48 — small enough for
            numpy LSTMs, large enough for near-orthogonality).
        use_tfidf: weight tokens by TF-IDF learned over the fit corpus
            (LogRobust's weighting).  When ``False``, tokens weight
            equally — the ablation knob.
    """

    def __init__(self, dimension: int = 48, use_tfidf: bool = True):
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        self.dimension = dimension
        self.use_tfidf = use_tfidf
        #: Full (uncached) embedding computations — the denominator of
        #: every cache-effectiveness claim (bench X15 asserts this grows
        #: with *distinct* templates, not records).
        self.embed_calls = 0
        self._document_count = 0
        self._document_frequency: dict[str, int] = {}
        self._cache: dict[str, np.ndarray] = {}

    @staticmethod
    def _tokens(template: str) -> list[str]:
        return [token for token in tokenize(template) if token != WILDCARD]

    def fit(self, templates: list[str]) -> "SemanticVectorizer":
        """Learn document frequencies from the training template set."""
        for template in templates:
            self._document_count += 1
            for token in set(self._tokens(template)):
                self._document_frequency[token] = (
                    self._document_frequency.get(token, 0) + 1
                )
        self._cache.clear()
        return self

    def observe(self, template: str) -> None:
        """Incrementally fold one template into the IDF statistics.

        Streams keep discovering templates after training; observing
        them keeps IDF meaningful without refitting from scratch.  The
        internal memo is dropped because every cached vector was
        weighted with the pre-observation IDF (callers that need
        tolerance-gated invalidation instead of eager recomputation
        wrap this class in a
        :class:`~repro.detection.semantic_tier.TemplateEmbeddingCache`).
        """
        self._document_count += 1
        for token in set(self._tokens(template)):
            self._document_frequency[token] = (
                self._document_frequency.get(token, 0) + 1
            )
        self._cache.clear()

    def _idf(self, token: str) -> float:
        if not self.use_tfidf or self._document_count == 0:
            return 1.0
        frequency = self._document_frequency.get(token, 0)
        return math.log((1 + self._document_count) / (1 + frequency)) + 1.0

    def embed(self, template: str) -> np.ndarray:
        """Compute the semantic vector of a template, uncached.

        Well-defined for every input: an empty template, or one whose
        tokens are all masked wildcards, embeds to the zero vector
        (nothing is semantically similar to nothing), and embedding
        before :meth:`fit` weights every token equally (IDF is 1 with
        no documents observed).
        """
        self.embed_calls += 1
        tokens = self._tokens(template)
        if not tokens:
            return np.zeros(self.dimension)
        counts: dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        vector = np.zeros(self.dimension)
        for token, count in counts.items():
            weight = (count / len(tokens)) * self._idf(token)
            vector += weight * _token_vector(token, self.dimension)
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector = vector / norm
        return vector

    def vectorize(self, template: str) -> np.ndarray:
        """The (cached) semantic vector of a template, L2-normalized."""
        cached = self._cache.get(template)
        if cached is not None:
            return cached
        vector = self.embed(template)
        self._cache[template] = vector
        return vector

    def vectorize_many(self, templates: list[str]) -> np.ndarray:
        if not templates:
            return np.zeros((0, self.dimension))
        return np.stack([self.vectorize(template) for template in templates])

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity between two template vectors."""
        return float(self.vectorize(left) @ self.vectorize(right))

    def nearest(
        self, template: str, candidates: list[str]
    ) -> tuple[str | None, float]:
        """The most similar candidate template and its similarity.

        This is LogAnomaly's template-matching step for unseen
        templates ("the majority of the new templates are just a minor
        variant of an existing one", paper §III).

        An empty candidate library, or a query that embeds to the zero
        vector (empty / all-masked template), has no meaningful nearest
        neighbour and returns ``(None, 0.0)`` rather than an arbitrary
        candidate at similarity zero.
        """
        if not candidates:
            return None, 0.0
        query = self.vectorize(template)
        if not np.any(query):
            return None, 0.0
        matrix = self.vectorize_many(candidates)
        scores = matrix @ query
        best = int(np.argmax(scores))
        return candidates[best], float(scores[best])
