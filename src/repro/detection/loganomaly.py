"""LogAnomaly (Meng et al., IJCAI'19).

LogAnomaly addresses both anomaly kinds with two LSTM heads over a
window of recent events:

* a **sequential** head over *template2vec* semantic vectors predicting
  the next template, and
* a **quantitative** head over sliding count vectors, capturing how
  many times each template should appear.

Its answer to template instability (paper §III): "the majority of the
new templates are just a minor variant of an existing one" — an unseen
template at detection time is *matched to its most similar known
template* via semantic similarity instead of being treated as an
unpredictable unknown the way DeepLog must.

template2vec here is the :class:`~repro.detection.semantics.
SemanticVectorizer` (see its docstring for the offline embedding
substitution).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_component
from repro.detection.base import (
    DetectionResult,
    Detector,
    Session,
    template_sequence,
)
from repro.detection.semantics import SemanticVectorizer
from repro.nn.layers import Dense
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.lstm import Lstm
from repro.nn.network import Module, Trainer
from repro.nn.optim import Adam


class _DualHeadModel(Module):
    """Semantic-sequence LSTM + count-vector LSTM, fused by averaging."""

    def __init__(self, semantic_dim: int, vocabulary: int, hidden: int,
                 *, seed: int):
        self.sequence_lstm = Lstm(semantic_dim, hidden, seed=seed)
        self.sequence_head = Dense(hidden, vocabulary, seed=seed + 1)
        self.count_lstm = Lstm(vocabulary, hidden, seed=seed + 2)
        self.count_head = Dense(hidden, vocabulary, seed=seed + 3)

    def logits(
        self, semantic_windows: np.ndarray, count_windows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        sequence_logits = self.sequence_head.forward(
            self.sequence_lstm.last_hidden(semantic_windows)
        )
        count_logits = self.count_head.forward(
            self.count_lstm.last_hidden(count_windows)
        )
        return sequence_logits, count_logits

    def backward(
        self, grad_sequence: np.ndarray, grad_count: np.ndarray
    ) -> None:
        self.sequence_lstm.backward_last(self.sequence_head.backward(grad_sequence))
        self.count_lstm.backward_last(self.count_head.backward(grad_count))


@register_component("detector", "loganomaly")
class LogAnomalyDetector(Detector):
    """The template2vec dual-head detector.

    Args:
        window: history length for both heads.
        top_g: normality rank threshold, as in DeepLog.
        hidden: LSTM hidden size (shared by both heads).
        semantic_dim: template2vec dimension.
        match_threshold: minimum similarity for an unseen template to
            be matched to a known one; below it the event is treated as
            a violation.
        epochs / seed: training controls.
    """

    name = "loganomaly"
    supervised = False

    def __init__(
        self,
        window: int = 10,
        top_g: int = 3,
        hidden: int = 32,
        semantic_dim: int = 48,
        match_threshold: float = 0.5,
        epochs: int = 10,
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.top_g = top_g
        self.hidden = hidden
        self.semantic_dim = semantic_dim
        self.match_threshold = match_threshold
        self.epochs = epochs
        self.seed = seed
        self.vectorizer = SemanticVectorizer(dimension=semantic_dim)
        self._index_of: dict[int, int] | None = None
        self._template_of_index: list[str] = []
        self._template_text: dict[int, str] = {}
        self._model: _DualHeadModel | None = None
        self._match_cache: dict[int, int | None] = {}

    # -- featurization -------------------------------------------------------

    def _semantic_matrix(self) -> np.ndarray:
        return self.vectorizer.vectorize_many(self._template_of_index)

    def _map_index(self, template_id: int, template_text: str) -> int | None:
        """Training index of a template, semantic-matching unseen ones."""
        assert self._index_of is not None
        direct = self._index_of.get(template_id)
        if direct is not None:
            return direct
        cached = self._match_cache.get(template_id, "miss")
        if cached != "miss":
            return cached  # type: ignore[return-value]
        matched, similarity = self.vectorizer.nearest(
            template_text, self._template_of_index
        )
        result: int | None = None
        if matched is not None and similarity >= self.match_threshold:
            result = self._template_of_index.index(matched)
        self._match_cache[template_id] = result
        return result

    def _session_indices(self, session: Session) -> list[int | None]:
        return [
            self._map_index(event.template_id, event.template)
            for event in session
        ]

    def _windows(
        self, indices: list[int | None]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[int]]:
        """Build (semantic, count, target) training windows.

        Positions whose target failed to map are skipped for training
        but reported by the caller at detection (they are violations).
        Unmapped history entries contribute zero vectors.
        """
        vocabulary = len(self._template_of_index)
        semantic = self._semantic_matrix()
        semantic_windows = []
        count_windows = []
        targets = []
        positions = []
        for position in range(1, len(indices)):
            target = indices[position]
            if target is None:
                continue
            start = max(0, position - self.window)
            history = indices[start:position]
            padded: list[int | None] = [None] * (self.window - len(history))
            padded += history
            semantic_window = np.zeros((self.window, self.semantic_dim))
            count_window = np.zeros((self.window, vocabulary))
            running = np.zeros(vocabulary)
            for slot, index in enumerate(padded):
                if index is not None:
                    semantic_window[slot] = semantic[index]
                    running[index] += 1.0
                count_window[slot] = running
            semantic_windows.append(semantic_window)
            count_windows.append(count_window)
            targets.append(target)
            positions.append(position)
        if not targets:
            empty_semantic = np.zeros((0, self.window, self.semantic_dim))
            empty_count = np.zeros((0, self.window, vocabulary))
            return empty_semantic, empty_count, np.zeros(0, dtype=int), []
        return (
            np.stack(semantic_windows),
            np.stack(count_windows),
            np.asarray(targets, dtype=int),
            positions,
        )

    # -- training -------------------------------------------------------------

    def fit(
        self, sessions: list[Session], labels: list[bool] | None = None
    ) -> "LogAnomalyDetector":
        index_of: dict[int, int] = {}
        templates: list[str] = []
        for session in sessions:
            for event in session:
                if event.template_id not in index_of:
                    index_of[event.template_id] = len(templates)
                    templates.append(event.template)
        if not templates:
            raise ValueError("LogAnomalyDetector needs non-empty training sessions")
        self._index_of = index_of
        self._template_of_index = templates
        self.vectorizer.fit(templates)
        self._match_cache.clear()
        self._model = _DualHeadModel(
            self.semantic_dim, len(templates), self.hidden, seed=self.seed
        )

        semantic_parts = []
        count_parts = []
        target_parts = []
        for session in sessions:
            semantic, counts, targets, _ = self._windows(
                self._session_indices(session)
            )
            if len(targets):
                semantic_parts.append(semantic)
                count_parts.append(counts)
                target_parts.append(targets)
        semantic_x = np.concatenate(semantic_parts)
        count_x = np.concatenate(count_parts)
        y = np.concatenate(target_parts)

        model = self._model

        def loss_fn(batch_indices: np.ndarray, y_batch: np.ndarray):
            sequence_logits, count_logits = model.logits(
                semantic_x[batch_indices], count_x[batch_indices]
            )
            loss_s, grad_s, prob_s = softmax_cross_entropy(sequence_logits, y_batch)
            loss_c, grad_c, prob_c = softmax_cross_entropy(count_logits, y_batch)
            model.backward(grad_s, grad_c)
            fused = (prob_s + prob_c) / 2.0
            correct = int((fused.argmax(axis=1) == y_batch).sum())
            return loss_s + loss_c, correct

        # Train on index arrays so both heads see aligned batches.
        sample_indices = np.arange(len(y))
        trainer = Trainer(
            model, Adam(learning_rate=0.005), batch_size=64,
            epochs=self.epochs, seed=self.seed,
        )
        trainer.fit(sample_indices, y, loss_fn)
        return self

    # -- detection --------------------------------------------------------------

    def detect(self, session: Session) -> DetectionResult:
        self._require_fitted("_model")
        assert self._model is not None
        indices = self._session_indices(session)
        unmatched = [
            position
            for position, index in enumerate(indices)
            if index is None
        ]
        semantic, counts, targets, positions = self._windows(indices)
        reasons: list[str] = [
            f"no semantically similar known template for "
            f"{session[position].template!r}"
            for position in unmatched[:3]
        ]
        violations = len(unmatched)
        checks = len(unmatched)

        if len(targets):
            sequence_logits, count_logits = self._model.logits(semantic, counts)
            fused = (softmax(sequence_logits) + softmax(count_logits)) / 2.0
            ranked = np.argsort(-fused, axis=1)[:, : self.top_g]
            for row, (target, position) in enumerate(zip(targets, positions)):
                checks += 1
                if target not in ranked[row]:
                    violations += 1
                    if len(reasons) < 5:
                        reasons.append(
                            f"unexpected event at position {position}: "
                            f"{session[position].template!r} not in "
                            f"top-{self.top_g}"
                        )
        score = violations / max(1, checks)
        return DetectionResult(
            anomalous=violations > 0,
            score=score,
            reasons=tuple(reasons),
        )
