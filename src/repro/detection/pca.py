"""PCA anomaly detection over event count vectors (Xu et al., SOSP'09).

The classic "mining console logs" detector: project session count
vectors onto the residual subspace (the components *not* explaining the
normal variance) and flag sessions whose squared prediction error (the
Q-statistic) exceeds a threshold.

Training is unsupervised: the principal subspace is estimated from
normal-dominated data, and the Q threshold follows the Jackson-Mudholkar
approximation at the requested confidence, with an empirical-quantile
fallback when the residual eigenvalue moments degenerate (tiny
synthetic corpora can zero them out).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_component
from repro.detection.base import DetectionResult, Detector, Session
from repro.detection.count_vector import CountVectorizer


@register_component("detector", "pca")
class PcaDetector(Detector):
    """The residual-subspace detector.

    Args:
        variance_retained: fraction of variance the principal subspace
            keeps (Xu et al. use 0.95).
        alpha: Q-statistic confidence level (0.001 in the original).
        tfidf: apply the TF-IDF weighting of the original paper to the
            count matrix before PCA.
    """

    name = "pca"
    supervised = False

    def __init__(
        self,
        variance_retained: float = 0.95,
        alpha: float = 0.001,
        tfidf: bool = True,
    ) -> None:
        if not 0.0 < variance_retained <= 1.0:
            raise ValueError(
                f"variance_retained must be in (0, 1], got {variance_retained}"
            )
        self.variance_retained = variance_retained
        self.alpha = alpha
        self.tfidf = tfidf
        self.vectorizer = CountVectorizer()
        self._mean: np.ndarray | None = None
        self._idf: np.ndarray | None = None
        self._residual_basis: np.ndarray | None = None
        self._threshold: float | None = None

    def _weight(self, matrix: np.ndarray) -> np.ndarray:
        if not self.tfidf or self._idf is None:
            return matrix
        return matrix * self._idf

    def fit(self, sessions: list[Session], labels: list[bool] | None = None) -> "PcaDetector":
        matrix = self.vectorizer.fit_transform(sessions)
        if matrix.shape[0] < 2:
            raise ValueError("PcaDetector needs at least 2 training sessions")
        if self.tfidf:
            document_frequency = (matrix > 0).sum(axis=0)
            self._idf = np.log(
                (1 + matrix.shape[0]) / (1 + document_frequency)
            ) + 1.0
            matrix = matrix * self._idf
        self._mean = matrix.mean(axis=0)
        centered = matrix - self._mean
        _, singular_values, right_vectors = np.linalg.svd(
            centered, full_matrices=False
        )
        eigenvalues = singular_values ** 2 / max(1, matrix.shape[0] - 1)
        total = eigenvalues.sum()
        if total <= 0:
            # Degenerate training set (all sessions identical): keep a
            # zero-dimensional principal space; everything unusual is
            # residual.
            kept = 0
        else:
            cumulative = np.cumsum(eigenvalues) / total
            kept = int(np.searchsorted(cumulative, self.variance_retained) + 1)
            kept = min(kept, len(eigenvalues))
        self._residual_basis = right_vectors[kept:]
        residual_eigenvalues = eigenvalues[kept:]

        self._threshold = self._q_threshold(residual_eigenvalues, centered)
        return self

    def _q_threshold(
        self, residual_eigenvalues: np.ndarray, centered: np.ndarray
    ) -> float:
        """Jackson-Mudholkar Q_alpha with an empirical fallback."""
        phi1 = float(residual_eigenvalues.sum())
        phi2 = float((residual_eigenvalues ** 2).sum())
        phi3 = float((residual_eigenvalues ** 3).sum())
        if phi1 > 0 and phi2 > 0:
            h0 = 1.0 - (2.0 * phi1 * phi3) / (3.0 * phi2 ** 2)
            if h0 != 0:
                # Normal quantile via the Acklam-style approximation is
                # overkill; alpha is fixed and small, use the classic
                # value for 0.001 and interpolate for others.
                z = _normal_quantile(1.0 - self.alpha)
                term = (
                    z * np.sqrt(2.0 * phi2 * h0 ** 2) / phi1
                    + 1.0
                    + phi2 * h0 * (h0 - 1.0) / phi1 ** 2
                )
                if term > 0:
                    return float(phi1 * term ** (1.0 / h0))
        # Fallback: an empirical quantile of training SPE values.
        assert self._residual_basis is not None
        spe = self._spe(centered)
        if spe.size == 0:
            return 0.0
        return float(np.quantile(spe, 1.0 - self.alpha)) + 1e-9

    def _spe(self, centered: np.ndarray) -> np.ndarray:
        assert self._residual_basis is not None
        if self._residual_basis.shape[0] == 0:
            return np.zeros(centered.shape[0])
        residual = centered @ self._residual_basis.T
        return (residual ** 2).sum(axis=1)

    def detect(self, session: Session) -> DetectionResult:
        self._require_fitted("_threshold")
        assert self._mean is not None and self._threshold is not None
        vector = self._weight(self.vectorizer.transform(session))
        spe = float(self._spe((vector - self._mean)[None, :])[0])
        anomalous = spe > self._threshold
        reasons = ()
        if anomalous:
            reasons = (
                f"squared prediction error {spe:.3f} exceeds "
                f"Q-threshold {self._threshold:.3f}",
            )
        return DetectionResult(anomalous=anomalous, score=spe, reasons=reasons)


def _normal_quantile(p: float) -> float:
    """Standard normal quantile (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients from Peter Acklam's algorithm.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = np.sqrt(-2.0 * np.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = np.sqrt(-2.0 * np.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
