"""The Detector API and detection results.

A detector consumes *sessions*: ordered lists of
:class:`~repro.logs.record.ParsedLog` events (the structured stream of
Fig. 1, windowed by :mod:`repro.detection.windows`).  Training takes a
list of sessions plus optional boolean labels — the unsupervised
detectors (everything except LogRobust) ignore labels and learn the
normal execution flow only, which is the deployment regime the paper's
experiment X1 argues for.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.logs.record import ParsedLog

Session = Sequence[ParsedLog]


@dataclass(frozen=True)
class DetectionResult:
    """Verdict for one session.

    ``score`` is a detector-specific anomaly score (higher = more
    anomalous); ``anomalous`` is the thresholded verdict; ``reasons``
    carries human-readable evidence (used by anomaly reports and the
    classifier featurization).
    """

    anomalous: bool
    score: float = 0.0
    reasons: tuple[str, ...] = ()


class Detector:
    """Base class for all anomaly detectors.

    Subclasses implement :meth:`fit` and :meth:`detect`.  ``supervised``
    declares whether labelled anomalies are required at training time.
    """

    name: str = "detector"
    supervised: bool = False

    def fit(
        self,
        sessions: list[Session],
        labels: list[bool] | None = None,
    ) -> "Detector":
        raise NotImplementedError

    def detect(self, session: Session) -> DetectionResult:
        raise NotImplementedError

    def predict(self, session: Session) -> bool:
        """Boolean convenience wrapper over :meth:`detect`."""
        return self.detect(session).anomalous

    def predict_many(self, sessions: list[Session]) -> list[bool]:
        return [self.predict(session) for session in sessions]

    def _require_fitted(self, attribute: str) -> None:
        if getattr(self, attribute, None) is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )


def template_sequence(session: Session) -> list[int]:
    """The template-id sequence of a session (the LSTM input view)."""
    return [event.template_id for event in session]


def numeric_variables(event: ParsedLog) -> list[float]:
    """The numeric variable values of one event (quantitative view)."""
    values: list[float] = []
    for variable in event.variables:
        try:
            values.append(float(variable))
        except ValueError:
            continue
    return values
