"""Anomaly detection over structured log streams (MoniLog stage 2).

Implements the paper's §III study set on a common
:class:`~repro.detection.base.Detector` API:

* counter-based — :class:`~repro.detection.pca.PcaDetector`,
  :class:`~repro.detection.invariants.InvariantMiningDetector`,
  :class:`~repro.detection.log_clustering.LogClusteringDetector`;
* deep-learning — :class:`~repro.detection.deeplog.DeepLogDetector`,
  :class:`~repro.detection.loganomaly.LogAnomalyDetector`,
  :class:`~repro.detection.logrobust.LogRobustDetector`.

Shared infrastructure: session/sliding windowing
(:mod:`repro.detection.windows`), event count matrices
(:mod:`repro.detection.count_vector`) and semantic vectorization
(:mod:`repro.detection.semantics`).

Beyond the study set, the semantic tier
(:mod:`repro.detection.semantic_tier`) adds
:class:`~repro.detection.semantic_tier.LofDetector` (embedding
k-NN/LOF over a generation-validated
:class:`~repro.detection.semantic_tier.TemplateEmbeddingCache`) and
:class:`~repro.detection.semantic_tier.RollingWindowDetector`
(flood/repetition-burst coverage).
"""

from repro.detection.base import Detector, DetectionResult
from repro.detection.windows import (
    sessions_from_parsed,
    sliding_windows,
    time_windows,
)
from repro.detection.count_vector import CountVectorizer
from repro.detection.semantics import SemanticVectorizer
from repro.detection.pca import PcaDetector
from repro.detection.invariants import InvariantMiningDetector
from repro.detection.log_clustering import LogClusteringDetector
from repro.detection.deeplog import DeepLogDetector
from repro.detection.loganomaly import LogAnomalyDetector
from repro.detection.logrobust import LogRobustDetector
from repro.detection.keyword import KeywordMatchDetector
from repro.detection.markov import MarkovDetector
from repro.detection.semantic_tier import (
    LofDetector,
    RollingWindowDetector,
    TemplateEmbeddingCache,
)

#: The paper's §III study set by short name (the keyword baseline is
#: exported separately — it is the §I practice the study set replaces).
DETECTORS = {
    "pca": PcaDetector,
    "invariants": InvariantMiningDetector,
    "logclustering": LogClusteringDetector,
    "deeplog": DeepLogDetector,
    "loganomaly": LogAnomalyDetector,
    "logrobust": LogRobustDetector,
}

__all__ = [
    "CountVectorizer",
    "KeywordMatchDetector",
    "MarkovDetector",
    "DETECTORS",
    "DeepLogDetector",
    "DetectionResult",
    "Detector",
    "InvariantMiningDetector",
    "LofDetector",
    "LogAnomalyDetector",
    "LogClusteringDetector",
    "LogRobustDetector",
    "PcaDetector",
    "RollingWindowDetector",
    "SemanticVectorizer",
    "TemplateEmbeddingCache",
    "sessions_from_parsed",
    "sliding_windows",
    "time_windows",
]
