"""Detector persistence: save and restore trained detectors.

Training is the expensive step of a deployment; restarts must not
repeat it.  Each saver writes a directory holding

* ``config.json`` — constructor arguments plus the learned discrete
  state (template vocabularies, IDF statistics, value-model metadata);
* ``state.npz`` for detectors whose learned state is plain numpy
  arrays, and one ``.npz`` per neural module (via
  :mod:`repro.nn.serialize`), so weight shapes are validated on load.

Every registered detector is covered — the generic entry points
:func:`save_detector` / :func:`load_detector` dispatch on the
component registry name recorded in ``config.json``, so a detector
trained under one spec restores without the caller knowing its kind
(and the parametrized round-trip test holds every future registration
to the same contract).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.detection.deeplog import (
    DeepLogDetector,
    _GaussianValueModel,
    _SequenceModel,
    _ValueModel,
)
from repro.detection.invariants import Invariant, InvariantMiningDetector
from repro.detection.keyword import KeywordMatchDetector
from repro.detection.loganomaly import LogAnomalyDetector, _DualHeadModel
from repro.detection.log_clustering import LogClusteringDetector
from repro.detection.logrobust import LogRobustDetector, _AttentionBiLstm
from repro.detection.markov import MarkovDetector
from repro.detection.pca import PcaDetector
from repro.detection.semantic_tier import LofDetector, RollingWindowDetector
from repro.detection.count_vector import CountVectorizer
from repro.detection.semantics import SemanticVectorizer
from repro.logs.record import Severity
from repro.nn.serialize import load_module, save_module

_FORMAT_VERSION = 1


def _write_config(directory: Path, payload: dict) -> None:
    payload = {"version": _FORMAT_VERSION, **payload}
    (directory / "config.json").write_text(json.dumps(payload, indent=2))


def _read_config(directory: Path, expected_kind: str) -> dict:
    payload = json.loads((directory / "config.json").read_text())
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported detector archive version: {payload.get('version')!r}"
        )
    if payload.get("kind") != expected_kind:
        raise ValueError(
            f"archive holds a {payload.get('kind')!r} detector, "
            f"expected {expected_kind!r}"
        )
    return payload


# -- DeepLog -----------------------------------------------------------------


def save_deeplog(detector: DeepLogDetector,
                 directory: str | os.PathLike[str]) -> None:
    """Persist a fitted DeepLog detector to ``directory``."""
    if detector._model is None or detector._index_of is None:
        raise ValueError("cannot save an unfitted DeepLogDetector")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    value_models: dict[str, dict] = {}
    for template_id, model in detector._value_models.items():
        key = str(template_id)
        if isinstance(model, _GaussianValueModel):
            value_models[key] = {
                "type": "gaussian",
                "mean": model.mean.tolist(),
                "std": model.std.tolist(),
                "sigmas": model.sigmas,
            }
        else:
            value_models[key] = {
                "type": "lstm",
                "dimension": model.dimension,
                "window": model.window,
                "mean": model.mean.tolist(),
                "std": model.std.tolist(),
                "error_mean": model.error_mean,
                "error_std": model.error_std,
            }
            save_module(model, path / f"value_{key}.npz")

    _write_config(path, {
        "kind": "deeplog",
        "hyperparameters": {
            "window": detector.window,
            "top_g": detector.top_g,
            "hidden": detector.hidden,
            "embedding_dim": detector.embedding_dim,
            "value_window": detector.value_window,
            "value_sigmas": detector.value_sigmas,
            "min_value_observations": detector.min_value_observations,
            "quantitative": detector.quantitative,
            "epochs": detector.epochs,
            "seed": detector.seed,
        },
        "vocabulary": {
            str(template_id): index
            for template_id, index in detector._index_of.items()
        },
        "value_models": value_models,
    })
    save_module(detector._model, path / "sequence.npz")


def load_deeplog(directory: str | os.PathLike[str]) -> DeepLogDetector:
    """Restore a DeepLog detector saved by :func:`save_deeplog`."""
    path = Path(directory)
    payload = _read_config(path, "deeplog")
    detector = DeepLogDetector(**payload["hyperparameters"])
    detector._index_of = {
        int(template_id): index
        for template_id, index in payload["vocabulary"].items()
    }
    model_vocabulary = len(detector._index_of) + 2
    detector._model = _SequenceModel(
        model_vocabulary, detector.embedding_dim, detector.hidden,
        seed=detector.seed,
    )
    load_module(detector._model, path / "sequence.npz")

    for key, entry in payload["value_models"].items():
        template_id = int(key)
        if entry["type"] == "gaussian":
            model = _GaussianValueModel.__new__(_GaussianValueModel)
            model.mean = np.asarray(entry["mean"])
            model.std = np.asarray(entry["std"])
            model.sigmas = entry["sigmas"]
        else:
            model = _ValueModel(
                entry["dimension"], entry["window"], hidden=8,
                seed=detector.seed + template_id,
            )
            model.mean = np.asarray(entry["mean"])
            model.std = np.asarray(entry["std"])
            model.error_mean = entry["error_mean"]
            model.error_std = entry["error_std"]
            load_module(model, path / f"value_{key}.npz")
        detector._value_models[template_id] = model
    return detector


# -- LogRobust ----------------------------------------------------------------


def save_logrobust(detector: LogRobustDetector,
                   directory: str | os.PathLike[str]) -> None:
    """Persist a fitted LogRobust detector to ``directory``."""
    if detector._model is None:
        raise ValueError("cannot save an unfitted LogRobustDetector")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    _write_config(path, {
        "kind": "logrobust",
        "hyperparameters": {
            "max_length": detector.max_length,
            "hidden": detector.hidden,
            "attention_size": detector.attention_size,
            "semantic_dim": detector.semantic_dim,
            "threshold": detector.threshold,
            "epochs": detector.epochs,
            "seed": detector.seed,
        },
        "degenerate": detector._degenerate,
        "idf": {
            "document_count": detector.vectorizer._document_count,
            "document_frequency": detector.vectorizer._document_frequency,
        },
    })
    save_module(detector._model, path / "classifier.npz")


def load_logrobust(directory: str | os.PathLike[str]) -> LogRobustDetector:
    """Restore a LogRobust detector saved by :func:`save_logrobust`."""
    path = Path(directory)
    payload = _read_config(path, "logrobust")
    detector = LogRobustDetector(**payload["hyperparameters"])
    detector._degenerate = payload["degenerate"]
    detector.vectorizer._document_count = payload["idf"]["document_count"]
    detector.vectorizer._document_frequency = dict(
        payload["idf"]["document_frequency"]
    )
    detector._model = _AttentionBiLstm(
        detector.semantic_dim, detector.hidden, detector.attention_size,
        seed=detector.seed,
    )
    load_module(detector._model, path / "classifier.npz")
    return detector


# -- shared sub-state helpers -------------------------------------------------


def _dump_count_vectorizer(vectorizer: CountVectorizer) -> dict:
    if vectorizer._column_of is None:
        raise ValueError("cannot save an unfitted CountVectorizer")
    return {
        str(template_id): column
        for template_id, column in vectorizer._column_of.items()
    }


def _load_count_vectorizer(payload: dict) -> CountVectorizer:
    vectorizer = CountVectorizer()
    vectorizer._column_of = {
        int(template_id): column for template_id, column in payload.items()
    }
    return vectorizer


def _dump_semantic_vectorizer(vectorizer: SemanticVectorizer) -> dict:
    return {
        "document_count": vectorizer._document_count,
        "document_frequency": vectorizer._document_frequency,
    }


def _restore_semantic_vectorizer(
    vectorizer: SemanticVectorizer, payload: dict
) -> None:
    vectorizer._document_count = payload["document_count"]
    vectorizer._document_frequency = dict(payload["document_frequency"])


# -- PCA ----------------------------------------------------------------------


def save_pca(detector: PcaDetector,
             directory: str | os.PathLike[str]) -> None:
    """Persist a fitted PCA detector to ``directory``."""
    if detector._threshold is None:
        raise ValueError("cannot save an unfitted PcaDetector")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    _write_config(path, {
        "kind": "pca",
        "hyperparameters": {
            "variance_retained": detector.variance_retained,
            "alpha": detector.alpha,
            "tfidf": detector.tfidf,
        },
        "vocabulary": _dump_count_vectorizer(detector.vectorizer),
        "threshold": detector._threshold,
    })
    arrays = {
        "mean": detector._mean,
        "residual_basis": detector._residual_basis,
    }
    if detector._idf is not None:
        arrays["idf"] = detector._idf
    np.savez(path / "state.npz", **arrays)


def load_pca(directory: str | os.PathLike[str]) -> PcaDetector:
    """Restore a PCA detector saved by :func:`save_pca`."""
    path = Path(directory)
    payload = _read_config(path, "pca")
    detector = PcaDetector(**payload["hyperparameters"])
    detector.vectorizer = _load_count_vectorizer(payload["vocabulary"])
    detector._threshold = payload["threshold"]
    with np.load(path / "state.npz") as arrays:
        detector._mean = arrays["mean"]
        detector._residual_basis = arrays["residual_basis"]
        detector._idf = arrays["idf"] if "idf" in arrays else None
    return detector


# -- Invariant mining ---------------------------------------------------------


def save_invariants(detector: InvariantMiningDetector,
                    directory: str | os.PathLike[str]) -> None:
    """Persist a fitted invariant-mining detector to ``directory``."""
    if detector.invariants is None:
        raise ValueError("cannot save an unfitted InvariantMiningDetector")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    _write_config(path, {
        "kind": "invariants",
        "hyperparameters": {
            "support": detector.support,
            "max_coefficient": detector.max_coefficient,
            "min_cooccurrence": detector.min_cooccurrence,
        },
        "vocabulary": _dump_count_vectorizer(detector.vectorizer),
        "invariants": [
            [invariant.column_i, invariant.column_j,
             invariant.a, invariant.b]
            for invariant in detector.invariants
        ],
    })


def load_invariants(
    directory: str | os.PathLike[str],
) -> InvariantMiningDetector:
    """Restore a detector saved by :func:`save_invariants`."""
    path = Path(directory)
    payload = _read_config(path, "invariants")
    detector = InvariantMiningDetector(**payload["hyperparameters"])
    detector.vectorizer = _load_count_vectorizer(payload["vocabulary"])
    detector.invariants = [
        Invariant(column_i, column_j, a, b)
        for column_i, column_j, a, b in payload["invariants"]
    ]
    return detector


# -- Log clustering -----------------------------------------------------------


def save_logclustering(detector: LogClusteringDetector,
                       directory: str | os.PathLike[str]) -> None:
    """Persist a fitted log-clustering detector to ``directory``."""
    if detector._representatives is None:
        raise ValueError("cannot save an unfitted LogClusteringDetector")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    _write_config(path, {
        "kind": "logclustering",
        "hyperparameters": {
            "cluster_threshold": detector.cluster_threshold,
            "detect_threshold": detector.detect_threshold,
        },
        "vocabulary": _dump_count_vectorizer(detector.vectorizer),
        "members": detector._members,
    })
    np.savez(path / "state.npz",
             idf=detector._idf,
             representatives=detector._representatives)


def load_logclustering(
    directory: str | os.PathLike[str],
) -> LogClusteringDetector:
    """Restore a detector saved by :func:`save_logclustering`."""
    path = Path(directory)
    payload = _read_config(path, "logclustering")
    detector = LogClusteringDetector(**payload["hyperparameters"])
    detector.vectorizer = _load_count_vectorizer(payload["vocabulary"])
    detector._members = list(payload["members"])
    with np.load(path / "state.npz") as arrays:
        detector._idf = arrays["idf"]
        detector._representatives = arrays["representatives"]
    return detector


# -- Keyword baseline ---------------------------------------------------------


def save_keyword(detector: KeywordMatchDetector,
                 directory: str | os.PathLike[str]) -> None:
    """Persist a keyword detector (configuration only — fit is a no-op)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    _write_config(path, {
        "kind": "keyword",
        "hyperparameters": {
            "keywords": list(detector.keywords),
            "patterns": [pattern.pattern for pattern in detector.patterns],
            "severity_threshold": detector.severity_threshold.name,
        },
    })


def load_keyword(directory: str | os.PathLike[str]) -> KeywordMatchDetector:
    """Restore a detector saved by :func:`save_keyword`."""
    payload = _read_config(Path(directory), "keyword")
    hyper = payload["hyperparameters"]
    return KeywordMatchDetector(
        keywords=hyper["keywords"],
        patterns=hyper["patterns"],
        severity_threshold=Severity[hyper["severity_threshold"]],
    )


# -- Markov -------------------------------------------------------------------


def save_markov(detector: MarkovDetector,
                directory: str | os.PathLike[str]) -> None:
    """Persist a fitted Markov detector to ``directory``."""
    if detector._transitions is None:
        raise ValueError("cannot save an unfitted MarkovDetector")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    _write_config(path, {
        "kind": "markov",
        "hyperparameters": {
            "threshold": detector.threshold,
            "smoothing": detector.smoothing,
        },
        "transitions": {
            str(state): {str(target): count
                         for target, count in counts.items()}
            for state, counts in detector._transitions.items()
        },
        "totals": {str(state): count
                   for state, count in detector._totals.items()},
        "states": sorted(detector._states),
    })


def load_markov(directory: str | os.PathLike[str]) -> MarkovDetector:
    """Restore a detector saved by :func:`save_markov`."""
    from collections import Counter

    payload = _read_config(Path(directory), "markov")
    detector = MarkovDetector(**payload["hyperparameters"])
    detector._transitions = {
        int(state): Counter({int(target): count
                             for target, count in counts.items()})
        for state, counts in payload["transitions"].items()
    }
    detector._totals = Counter({int(state): count
                                for state, count in payload["totals"].items()})
    detector._states = set(payload["states"])
    return detector


# -- LogAnomaly ---------------------------------------------------------------


def save_loganomaly(detector: LogAnomalyDetector,
                    directory: str | os.PathLike[str]) -> None:
    """Persist a fitted LogAnomaly detector to ``directory``."""
    if detector._model is None or detector._index_of is None:
        raise ValueError("cannot save an unfitted LogAnomalyDetector")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    _write_config(path, {
        "kind": "loganomaly",
        "hyperparameters": {
            "window": detector.window,
            "top_g": detector.top_g,
            "hidden": detector.hidden,
            "semantic_dim": detector.semantic_dim,
            "match_threshold": detector.match_threshold,
            "epochs": detector.epochs,
            "seed": detector.seed,
        },
        "vocabulary": {
            str(template_id): index
            for template_id, index in detector._index_of.items()
        },
        "templates": detector._template_of_index,
        "idf": _dump_semantic_vectorizer(detector.vectorizer),
    })
    save_module(detector._model, path / "dual_head.npz")


def load_loganomaly(
    directory: str | os.PathLike[str],
) -> LogAnomalyDetector:
    """Restore a detector saved by :func:`save_loganomaly`."""
    path = Path(directory)
    payload = _read_config(path, "loganomaly")
    detector = LogAnomalyDetector(**payload["hyperparameters"])
    detector._index_of = {
        int(template_id): index
        for template_id, index in payload["vocabulary"].items()
    }
    detector._template_of_index = list(payload["templates"])
    _restore_semantic_vectorizer(detector.vectorizer, payload["idf"])
    detector._model = _DualHeadModel(
        detector.semantic_dim, len(detector._template_of_index),
        detector.hidden, seed=detector.seed,
    )
    load_module(detector._model, path / "dual_head.npz")
    return detector


# -- Semantic tier: LOF -------------------------------------------------------


def save_lof(detector: LofDetector,
             directory: str | os.PathLike[str]) -> None:
    """Persist a fitted LOF detector to ``directory``.

    Saves the template library and the embedding cache's *logical*
    state — IDF statistics, generation, accumulated drift and the set
    of observed templates — but not memoized vectors or counters:
    vectors are a deterministic function of the IDF state and rebuild
    on first use, so the restored detector's verdicts are identical
    while its cache starts cold.
    """
    if detector._library_texts is None:
        raise ValueError("cannot save an unfitted LofDetector")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    cache = detector.embedding_cache
    _write_config(path, {
        "kind": "lof",
        "hyperparameters": {
            "k": detector.k,
            "lof_threshold": detector.lof_threshold,
            "distance_threshold": detector.distance_threshold,
            "dimension": detector.dimension,
            "idf_tolerance": detector.idf_tolerance,
            "cache_capacity": detector.cache_capacity,
            "seed": detector.seed,
        },
        "library_texts": detector._library_texts,
        "library_ids": detector._library_ids,
        "observed": sorted(detector._observed),
        "cache": {
            "generation": cache.generation,
            "drift": cache._drift,
        },
        "idf": _dump_semantic_vectorizer(cache.vectorizer),
    })


def load_lof(directory: str | os.PathLike[str]) -> LofDetector:
    """Restore a detector saved by :func:`save_lof`."""
    payload = _read_config(Path(directory), "lof")
    detector = LofDetector(**payload["hyperparameters"])
    cache = detector.embedding_cache
    _restore_semantic_vectorizer(cache.vectorizer, payload["idf"])
    cache.generation = payload["cache"]["generation"]
    cache._drift = payload["cache"]["drift"]
    detector._library_texts = list(payload["library_texts"])
    detector._library_ids = list(payload["library_ids"])
    detector._known = set(detector._library_texts)
    detector._observed = set(payload["observed"])
    detector._rebuild_library()
    return detector


# -- Semantic tier: rolling window --------------------------------------------


def save_rollingwindow(detector: RollingWindowDetector,
                       directory: str | os.PathLike[str]) -> None:
    """Persist a fitted rolling-window detector to ``directory``."""
    if detector._max_window_events is None:
        raise ValueError("cannot save an unfitted RollingWindowDetector")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    _write_config(path, {
        "kind": "rollingwindow",
        "hyperparameters": {
            "window_seconds": detector.window_seconds,
            "rate_factor": detector.rate_factor,
            "burst_factor": detector.burst_factor,
            "min_events": detector.min_events,
        },
        "max_window_events": detector._max_window_events,
        "max_run": detector._max_run,
    })


def load_rollingwindow(
    directory: str | os.PathLike[str],
) -> RollingWindowDetector:
    """Restore a detector saved by :func:`save_rollingwindow`."""
    payload = _read_config(Path(directory), "rollingwindow")
    detector = RollingWindowDetector(**payload["hyperparameters"])
    detector._max_window_events = payload["max_window_events"]
    detector._max_run = payload["max_run"]
    return detector


# -- generic dispatch ----------------------------------------------------------

#: registry name → (detector class, saver, loader).  One entry per
#: registered detector; the parametrized persistence test fails when a
#: new registration lands without one.
_PERSISTENCE = {
    "deeplog": (DeepLogDetector, save_deeplog, load_deeplog),
    "invariants": (InvariantMiningDetector, save_invariants,
                   load_invariants),
    "keyword": (KeywordMatchDetector, save_keyword, load_keyword),
    "lof": (LofDetector, save_lof, load_lof),
    "loganomaly": (LogAnomalyDetector, save_loganomaly, load_loganomaly),
    "logclustering": (LogClusteringDetector, save_logclustering,
                      load_logclustering),
    "logrobust": (LogRobustDetector, save_logrobust, load_logrobust),
    "markov": (MarkovDetector, save_markov, load_markov),
    "pca": (PcaDetector, save_pca, load_pca),
    "rollingwindow": (RollingWindowDetector, save_rollingwindow,
                      load_rollingwindow),
}


def save_detector(detector, directory: str | os.PathLike[str]) -> None:
    """Persist any registered detector, dispatching on its type."""
    for _, (cls, saver, _loader) in _PERSISTENCE.items():
        if type(detector) is cls:
            saver(detector, directory)
            return
    raise ValueError(
        f"no persistence support for {type(detector).__name__}"
    )


def load_detector(directory: str | os.PathLike[str]):
    """Restore a detector saved by :func:`save_detector`.

    The archive's recorded kind picks the loader — callers need not
    know what was trained.
    """
    payload = json.loads((Path(directory) / "config.json").read_text())
    kind = payload.get("kind")
    if kind not in _PERSISTENCE:
        raise ValueError(f"unknown detector archive kind: {kind!r}")
    return _PERSISTENCE[kind][2](directory)
