"""Detector persistence: save and restore trained deep models.

Training the LSTM detectors is the expensive step of a deployment;
restarts must not repeat it.  Each saver writes a directory holding

* ``config.json`` — constructor arguments plus the learned discrete
  state (template vocabularies, IDF statistics, value-model metadata);
* one ``.npz`` per neural module (via :mod:`repro.nn.serialize`), so
  weight shapes are validated on load.

Covered detectors: :class:`~repro.detection.deeplog.DeepLogDetector`
and :class:`~repro.detection.logrobust.LogRobustDetector` (the two
whose training dominates pipeline start-up).  Counter-based detectors
retrain in milliseconds and need no persistence.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.detection.deeplog import (
    DeepLogDetector,
    _GaussianValueModel,
    _SequenceModel,
    _ValueModel,
)
from repro.detection.logrobust import LogRobustDetector, _AttentionBiLstm
from repro.nn.serialize import load_module, save_module

_FORMAT_VERSION = 1


def _write_config(directory: Path, payload: dict) -> None:
    payload = {"version": _FORMAT_VERSION, **payload}
    (directory / "config.json").write_text(json.dumps(payload, indent=2))


def _read_config(directory: Path, expected_kind: str) -> dict:
    payload = json.loads((directory / "config.json").read_text())
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported detector archive version: {payload.get('version')!r}"
        )
    if payload.get("kind") != expected_kind:
        raise ValueError(
            f"archive holds a {payload.get('kind')!r} detector, "
            f"expected {expected_kind!r}"
        )
    return payload


# -- DeepLog -----------------------------------------------------------------


def save_deeplog(detector: DeepLogDetector,
                 directory: str | os.PathLike[str]) -> None:
    """Persist a fitted DeepLog detector to ``directory``."""
    if detector._model is None or detector._index_of is None:
        raise ValueError("cannot save an unfitted DeepLogDetector")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    value_models: dict[str, dict] = {}
    for template_id, model in detector._value_models.items():
        key = str(template_id)
        if isinstance(model, _GaussianValueModel):
            value_models[key] = {
                "type": "gaussian",
                "mean": model.mean.tolist(),
                "std": model.std.tolist(),
                "sigmas": model.sigmas,
            }
        else:
            value_models[key] = {
                "type": "lstm",
                "dimension": model.dimension,
                "window": model.window,
                "mean": model.mean.tolist(),
                "std": model.std.tolist(),
                "error_mean": model.error_mean,
                "error_std": model.error_std,
            }
            save_module(model, path / f"value_{key}.npz")

    _write_config(path, {
        "kind": "deeplog",
        "hyperparameters": {
            "window": detector.window,
            "top_g": detector.top_g,
            "hidden": detector.hidden,
            "embedding_dim": detector.embedding_dim,
            "value_window": detector.value_window,
            "value_sigmas": detector.value_sigmas,
            "min_value_observations": detector.min_value_observations,
            "quantitative": detector.quantitative,
            "epochs": detector.epochs,
            "seed": detector.seed,
        },
        "vocabulary": {
            str(template_id): index
            for template_id, index in detector._index_of.items()
        },
        "value_models": value_models,
    })
    save_module(detector._model, path / "sequence.npz")


def load_deeplog(directory: str | os.PathLike[str]) -> DeepLogDetector:
    """Restore a DeepLog detector saved by :func:`save_deeplog`."""
    path = Path(directory)
    payload = _read_config(path, "deeplog")
    detector = DeepLogDetector(**payload["hyperparameters"])
    detector._index_of = {
        int(template_id): index
        for template_id, index in payload["vocabulary"].items()
    }
    model_vocabulary = len(detector._index_of) + 2
    detector._model = _SequenceModel(
        model_vocabulary, detector.embedding_dim, detector.hidden,
        seed=detector.seed,
    )
    load_module(detector._model, path / "sequence.npz")

    for key, entry in payload["value_models"].items():
        template_id = int(key)
        if entry["type"] == "gaussian":
            model = _GaussianValueModel.__new__(_GaussianValueModel)
            model.mean = np.asarray(entry["mean"])
            model.std = np.asarray(entry["std"])
            model.sigmas = entry["sigmas"]
        else:
            model = _ValueModel(
                entry["dimension"], entry["window"], hidden=8,
                seed=detector.seed + template_id,
            )
            model.mean = np.asarray(entry["mean"])
            model.std = np.asarray(entry["std"])
            model.error_mean = entry["error_mean"]
            model.error_std = entry["error_std"]
            load_module(model, path / f"value_{key}.npz")
        detector._value_models[template_id] = model
    return detector


# -- LogRobust ----------------------------------------------------------------


def save_logrobust(detector: LogRobustDetector,
                   directory: str | os.PathLike[str]) -> None:
    """Persist a fitted LogRobust detector to ``directory``."""
    if detector._model is None:
        raise ValueError("cannot save an unfitted LogRobustDetector")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    _write_config(path, {
        "kind": "logrobust",
        "hyperparameters": {
            "max_length": detector.max_length,
            "hidden": detector.hidden,
            "attention_size": detector.attention_size,
            "semantic_dim": detector.semantic_dim,
            "threshold": detector.threshold,
            "epochs": detector.epochs,
            "seed": detector.seed,
        },
        "degenerate": detector._degenerate,
        "idf": {
            "document_count": detector.vectorizer._document_count,
            "document_frequency": detector.vectorizer._document_frequency,
        },
    })
    save_module(detector._model, path / "classifier.npz")


def load_logrobust(directory: str | os.PathLike[str]) -> LogRobustDetector:
    """Restore a LogRobust detector saved by :func:`save_logrobust`."""
    path = Path(directory)
    payload = _read_config(path, "logrobust")
    detector = LogRobustDetector(**payload["hyperparameters"])
    detector._degenerate = payload["degenerate"]
    detector.vectorizer._document_count = payload["idf"]["document_count"]
    detector.vectorizer._document_frequency = dict(
        payload["idf"]["document_frequency"]
    )
    detector._model = _AttentionBiLstm(
        detector.semantic_dim, detector.hidden, detector.attention_size,
        seed=detector.seed,
    )
    load_module(detector._model, path / "classifier.npz")
    return detector
