"""LogClustering (Lin et al., ICSE-C'16).

Cluster the normal sessions' count vectors; keep one representative
vector per cluster.  At detection time, a session whose distance to the
nearest representative exceeds a threshold belongs to no known normal
behaviour and is flagged.

Clustering is the original's online agglomerative scheme: scan
sessions, join the nearest cluster if within ``cluster_threshold``
(updating the representative as the running mean), otherwise open a new
cluster.  Distances are cosine-based on TF-IDF-weighted count vectors,
as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_component
from repro.detection.base import DetectionResult, Detector, Session
from repro.detection.count_vector import CountVectorizer


def _cosine_distance(left: np.ndarray, right: np.ndarray) -> float:
    norm_left = float(np.linalg.norm(left))
    norm_right = float(np.linalg.norm(right))
    if norm_left == 0.0 or norm_right == 0.0:
        return 0.0 if norm_left == norm_right else 1.0
    return 1.0 - float(left @ right) / (norm_left * norm_right)


@register_component("detector", "logclustering")
class LogClusteringDetector(Detector):
    """The knowledge-base clustering detector.

    Args:
        cluster_threshold: max cosine distance to join a cluster while
            building the knowledge base.
        detect_threshold: max cosine distance to the nearest
            representative for a session to count as normal; defaults
            to ``cluster_threshold``.
    """

    name = "logclustering"
    supervised = False

    def __init__(
        self,
        cluster_threshold: float = 0.3,
        detect_threshold: float | None = None,
    ) -> None:
        if not 0.0 < cluster_threshold < 1.0:
            raise ValueError(
                f"cluster_threshold must be in (0, 1), got {cluster_threshold}"
            )
        self.cluster_threshold = cluster_threshold
        self.detect_threshold = (
            detect_threshold if detect_threshold is not None else cluster_threshold
        )
        self.vectorizer = CountVectorizer()
        self._idf: np.ndarray | None = None
        self._representatives: np.ndarray | None = None
        self._members: list[int] | None = None

    def _weight(self, matrix: np.ndarray) -> np.ndarray:
        assert self._idf is not None
        return matrix * self._idf

    def fit(
        self, sessions: list[Session], labels: list[bool] | None = None
    ) -> "LogClusteringDetector":
        matrix = self.vectorizer.fit_transform(sessions)
        if matrix.shape[0] == 0:
            raise ValueError("LogClusteringDetector needs training sessions")
        document_frequency = (matrix > 0).sum(axis=0)
        self._idf = np.log((1 + matrix.shape[0]) / (1 + document_frequency)) + 1.0
        weighted = self._weight(matrix)

        representatives: list[np.ndarray] = []
        members: list[int] = []
        for row in weighted:
            best_index = -1
            best_distance = float("inf")
            for index, representative in enumerate(representatives):
                distance = _cosine_distance(row, representative)
                if distance < best_distance:
                    best_index, best_distance = index, distance
            if best_index >= 0 and best_distance <= self.cluster_threshold:
                count = members[best_index]
                representatives[best_index] = (
                    representatives[best_index] * count + row
                ) / (count + 1)
                members[best_index] += 1
            else:
                representatives.append(row.copy())
                members.append(1)
        self._representatives = np.stack(representatives)
        self._members = members
        return self

    @property
    def cluster_count(self) -> int:
        self._require_fitted("_representatives")
        assert self._representatives is not None
        return self._representatives.shape[0]

    def detect(self, session: Session) -> DetectionResult:
        self._require_fitted("_representatives")
        assert self._representatives is not None
        vector = self._weight(self.vectorizer.transform(session))
        distances = [
            _cosine_distance(vector, representative)
            for representative in self._representatives
        ]
        nearest = min(distances)
        anomalous = nearest > self.detect_threshold
        reasons = ()
        if anomalous:
            reasons = (
                f"distance {nearest:.3f} to nearest normal cluster exceeds "
                f"{self.detect_threshold:.3f}",
            )
        return DetectionResult(anomalous=anomalous, score=nearest, reasons=reasons)
