"""The semantic detection tier: embedding k-NN/LOF + rolling-window
flood detection behind a shared template-vector cache.

All eight pre-existing detectors reason over template *ids* and
counts, so a never-seen-but-benign template ("request 7 handled okay"
where training said "handled fine") and a never-seen-and-alarming one
("irrecoverable data corruption on sector 9") are indistinguishable —
both are just an unknown id.  This module closes that gap with two
scenario classes the id view cannot express:

* :class:`LofDetector` (registry name ``"lof"``) embeds templates with
  :class:`~repro.detection.semantics.SemanticVectorizer` and scores
  *novel* templates by k-nearest-neighbour distance plus local outlier
  factor against the trained template library — a minor variant of a
  known statement lands near its old self (inlier), an alarming alien
  statement lands far from everything (outlier);
* :class:`RollingWindowDetector` (``"rollingwindow"``) covers log
  floods and repetition bursts: windows whose rolling event rate or
  longest same-template run exceeds a multiple of the trained maxima
  are flagged, independent of *which* templates they contain.

Both consume sessions exactly as every other
:class:`~repro.detection.base.Detector` — offline windows or
:class:`~repro.core.streaming.StreamingSessionizer` output — so
``detector = "lof"`` in a spec works end-to-end through
``repro pipeline`` and ``repro serve`` tenant tables.

Embedding is the hot-path cost, and real streams repeat a small
statement inventory, so vectors are memoized per *template* in a
:class:`TemplateEmbeddingCache` — generation-validated exactly like
the two-tier parse cache (:class:`~repro.parsing.base.TemplateCache`):
every :meth:`TemplateEmbeddingCache.observe` folds a newly discovered
template into the vectorizer's IDF statistics and accumulates the
worst-case IDF shift; once the accumulated drift crosses
``idf_tolerance`` the cache's generation advances and every older
entry is lazily invalidated (recomputations after an invalidation are
counted as *rebuilds*).  Under the tolerance, cached vectors are
served unchanged — embedding work is proportional to distinct
templates, not records (bench X15 holds the tier to ≥5x cached
throughput and record-count-independent embed calls).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict

import numpy as np

from repro.api.registry import register_component
from repro.detection.base import DetectionResult, Detector, Session
from repro.detection.semantics import SemanticVectorizer


class TemplateEmbeddingCache:
    """Generation-validated memo of template → semantic vector.

    Mirrors the parse cache's correctness contract: an entry is served
    only while its recorded generation equals the cache's current one.
    The generation advances when the IDF statistics have drifted past
    ``idf_tolerance`` since the entries were written — below the
    tolerance a stale-weighted vector is indistinguishable from a
    fresh one for neighbour ranking, above it every entry lazily
    invalidates and recomputes on next use (a *rebuild*).

    Thread-safe: one lock guards the entry map and the wrapped
    vectorizer's IDF state, so a cache shared across threads (the
    ``MONILOG_EXECUTOR=thread`` shard pool, telemetry scrape threads)
    never serves a torn entry.  The lock is dropped on pickling and
    re-created on restore, so detectors owning a cache travel to
    process-pool workers like any other component.

    Counters (exported as the ``monilog_embedding_cache_*`` telemetry
    families): ``hits`` / ``misses`` for lookups, ``evictions`` for
    LRU drops beyond ``capacity``, ``rebuilds`` for recomputations
    forced by a generation change.

    Args:
        vectorizer: the owned :class:`SemanticVectorizer`; all IDF
            mutation must go through :meth:`observe` so drift is
            accounted.
        capacity: LRU bound on memoized vectors.
        idf_tolerance: accumulated worst-case IDF shift (absolute, in
            log-weight units) tolerated before the generation advances.
    """

    def __init__(
        self,
        vectorizer: SemanticVectorizer | None = None,
        capacity: int = 4096,
        idf_tolerance: float = 0.25,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if idf_tolerance < 0.0:
            raise ValueError(
                f"idf_tolerance must be >= 0, got {idf_tolerance}"
            )
        self.vectorizer = (
            vectorizer if vectorizer is not None else SemanticVectorizer()
        )
        self.capacity = capacity
        self.idf_tolerance = idf_tolerance
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rebuilds = 0
        self._drift = 0.0
        self._entries: OrderedDict[str, tuple[int, np.ndarray]] = OrderedDict()
        self._lock = threading.Lock()

    # -- pickling (process-pool workers) --------------------------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- lookup ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def embed_calls(self) -> int:
        """Full embedding computations through this cache's vectorizer."""
        return self.vectorizer.embed_calls

    def vector(self, template: str) -> np.ndarray:
        """The semantic vector of ``template``, memoized per generation."""
        with self._lock:
            entry = self._entries.get(template)
            stale = False
            if entry is not None:
                generation, vector = entry
                if generation == self.generation:
                    self._entries.move_to_end(template)
                    self.hits += 1
                    return vector
                # Stale: IDF drifted past tolerance since this was
                # written; recompute under the current weights.
                del self._entries[template]
                stale = True
            vector = self.vectorizer.embed(template)
            if stale:
                self.rebuilds += 1
            else:
                self.misses += 1
            self._entries[template] = (self.generation, vector)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return vector

    def observe(self, template: str) -> None:
        """Fold one template into IDF, accounting the resulting drift.

        The worst-case shift of any single token's IDF weight is the
        larger of (a) the global shift every token pays from the
        document count growing and (b) the shift of the observed
        template's own tokens, whose document frequency also moved.
        Shifts accumulate across observations; crossing
        ``idf_tolerance`` advances the generation (lazily invalidating
        every entry) and re-arms the accumulator.
        """
        vectorizer = self.vectorizer
        with self._lock:
            tokens = set(vectorizer._tokens(template))
            before = {token: vectorizer._idf(token) for token in tokens}
            count_before = vectorizer._document_count
            vectorizer.observe(template)
            shift = abs(
                math.log((1 + vectorizer._document_count)
                         / (1 + count_before))
            )
            for token in tokens:
                shift = max(
                    shift, abs(vectorizer._idf(token) - before[token])
                )
            if not vectorizer.use_tfidf:
                return  # unweighted vectors never go stale
            self._drift += shift
            if self._drift > self.idf_tolerance:
                self.generation += 1
                self._drift = 0.0

    def stats(self) -> dict[str, int]:
        """Counter snapshot for telemetry collectors (one lock hold)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "rebuilds": self.rebuilds,
                "entries": len(self._entries),
                "generation": self.generation,
                "embed_calls": self.vectorizer.embed_calls,
            }


@register_component("detector", "lof")
class LofDetector(Detector):
    """k-NN distance + local-outlier-factor over template embeddings.

    Training learns the template library (distinct templates across
    training sessions) and its local density structure: each library
    vector's k-distance and local reachability density (lrd), the
    standard LOF preliminaries.  Detection embeds each *novel*
    template of a session (templates outside the trained library),
    finds its k nearest library neighbours, and computes

    * the mean k-NN distance — the crude novelty signal — and
    * LOF = mean(lrd of neighbours) / lrd(query) — the density-aware
      one: ≈1 for a template as densely surrounded as its neighbours
      (a minor variant of a known statement), ≫1 for an isolated
      alien.

    A session is anomalous when any novel template's LOF reaches
    ``lof_threshold`` or its mean k-NN distance reaches
    ``distance_threshold`` (the fallback that still fires when the
    library is too sparse for densities to mean much).  Known
    templates are normal by definition — sequence anomalies over known
    templates are DeepLog's job, not this tier's.

    Deterministic end to end: embeddings are seeded random indexing,
    neighbour ranking is pure numpy.  ``seed`` is accepted for the
    sharded detector-factory contract (each shard gets its index as
    the seed, like DeepLog) and recorded for persistence parity; it
    feeds no randomness.

    Every embedding flows through one :class:`TemplateEmbeddingCache`;
    novel templates are :meth:`~TemplateEmbeddingCache.observe`-d into
    the IDF statistics (once each), and the library's LOF structure
    lazily rebuilds whenever the cache generation advances, so library
    and query vectors always share one weighting.
    """

    name = "lof"
    supervised = False

    def __init__(
        self,
        k: int = 3,
        lof_threshold: float = 1.5,
        distance_threshold: float = 1.2,
        dimension: int = 48,
        idf_tolerance: float = 0.25,
        cache_capacity: int = 4096,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if lof_threshold <= 0.0:
            raise ValueError(
                f"lof_threshold must be > 0, got {lof_threshold}"
            )
        if distance_threshold <= 0.0:
            raise ValueError(
                f"distance_threshold must be > 0, got {distance_threshold}"
            )
        self.k = k
        self.lof_threshold = lof_threshold
        self.distance_threshold = distance_threshold
        self.dimension = dimension
        self.idf_tolerance = idf_tolerance
        self.cache_capacity = cache_capacity
        self.seed = seed
        self.embedding_cache = TemplateEmbeddingCache(
            SemanticVectorizer(dimension=dimension),
            capacity=cache_capacity,
            idf_tolerance=idf_tolerance,
        )
        self._library_texts: list[str] | None = None
        self._library_ids: list[int] = []
        self._known: set[str] = set()
        self._observed: set[str] = set()
        self._matrix: np.ndarray | None = None
        self._k_distance: np.ndarray | None = None
        self._lrd: np.ndarray | None = None
        self._matrix_generation = -1

    # -- training --------------------------------------------------------------

    def fit(
        self, sessions: list[Session], labels: list[bool] | None = None
    ) -> "LofDetector":
        texts: list[str] = []
        ids: list[int] = []
        seen: set[str] = set()
        for session in sessions:
            for event in session:
                if event.template not in seen:
                    seen.add(event.template)
                    texts.append(event.template)
                    ids.append(event.template_id)
        if not texts:
            raise ValueError("LofDetector needs non-empty training sessions")
        self._library_texts = texts
        self._library_ids = ids
        self._known = seen
        self._observed = set()
        self.embedding_cache.vectorizer.fit(texts)
        self._rebuild_library()
        return self

    def _rebuild_library(self) -> None:
        """(Re)compute library vectors and LOF preliminaries.

        Runs at fit and again whenever the embedding cache's
        generation has advanced past the one the matrix was built
        under — the detector-side half of the generation discipline.
        """
        assert self._library_texts is not None
        cache = self.embedding_cache
        self._matrix = np.stack(
            [cache.vector(text) for text in self._library_texts]
        )
        self._matrix_generation = cache.generation
        library = self._matrix
        size = library.shape[0]
        k = min(self.k, size - 1)
        if k < 1:
            # A one-template library has no neighbour structure; the
            # distance fallback carries detection alone.
            self._k_distance = np.zeros(size)
            self._lrd = np.full(size, 1.0)
            return
        deltas = library[:, None, :] - library[None, :, :]
        distances = np.sqrt((deltas ** 2).sum(axis=2))
        np.fill_diagonal(distances, np.inf)
        order = np.argsort(distances, axis=1, kind="stable")[:, :k]
        neighbour_distances = np.take_along_axis(distances, order, axis=1)
        self._k_distance = neighbour_distances[:, -1]
        # lrd(p) = 1 / mean reachability distance to p's neighbours,
        # reach(p, o) = max(d(p, o), k_distance(o)).
        reach = np.maximum(neighbour_distances, self._k_distance[order])
        self._lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)

    # -- detection --------------------------------------------------------------

    def _score_novel(self, vector: np.ndarray) -> tuple[
        float, float, list[tuple[int, float]]
    ]:
        """(mean k-NN distance, LOF, [(neighbour template id, distance)])."""
        assert self._matrix is not None
        assert self._k_distance is not None and self._lrd is not None
        distances = np.sqrt(((self._matrix - vector) ** 2).sum(axis=1))
        k = min(self.k, distances.shape[0])
        order = np.argsort(distances, kind="stable")[:k]
        neighbour_distances = distances[order]
        knn_distance = float(neighbour_distances.mean())
        reach = np.maximum(neighbour_distances, self._k_distance[order])
        lrd_query = 1.0 / max(float(reach.mean()), 1e-12)
        lof = float(self._lrd[order].mean()) / lrd_query
        neighbours = [
            (self._library_ids[int(index)], float(distances[int(index)]))
            for index in order
        ]
        return knn_distance, lof, neighbours

    def detect(self, session: Session) -> DetectionResult:
        self._require_fitted("_library_texts")
        cache = self.embedding_cache
        novel: list[tuple[int, str]] = []
        seen_here: set[str] = set()
        for event in session:
            text = event.template
            if text in self._known or text in seen_here:
                continue
            seen_here.add(text)
            novel.append((event.template_id, text))
            if text not in self._observed:
                self._observed.add(text)
                cache.observe(text)
        if cache.generation != self._matrix_generation:
            self._rebuild_library()
        worst = 0.0
        violations = 0
        reasons: list[str] = []
        for template_id, text in novel:
            knn_distance, lof, neighbours = self._score_novel(
                cache.vector(text)
            )
            # Threshold-normalized outlyingness: >= 1 means anomalous,
            # comparable across the two criteria (and with the
            # rolling-window detector's ratio scores).
            worst = max(worst, lof / self.lof_threshold,
                        knn_distance / self.distance_threshold)
            outlying = (lof >= self.lof_threshold
                        or knn_distance >= self.distance_threshold)
            if not outlying:
                continue
            violations += 1
            if len(reasons) < 5:
                nearest = ", ".join(
                    f"template#{neighbour_id} d={distance:.3f}"
                    for neighbour_id, distance in neighbours
                )
                reasons.append(
                    f"novel template {text!r} (template#{template_id}) is a "
                    f"semantic outlier: lof={lof:.2f} "
                    f"knn-distance={knn_distance:.3f} (k={min(self.k, len(self._library_ids))}); "
                    f"nearest: {nearest}"
                )
        return DetectionResult(
            anomalous=violations > 0, score=worst, reasons=tuple(reasons)
        )


@register_component("detector", "rollingwindow")
class RollingWindowDetector(Detector):
    """Flood/volume detector: rate + repetition bursts over windows.

    The scenario class the semantic and sequence detectors both skip:
    a window of entirely *known*, individually-normal templates that
    arrive far too fast (a log flood) or repeat one statement in an
    implausibly long run (a retry storm).  Training learns two maxima
    over the training windows — the densest ``window_seconds`` rolling
    burst (events inside any such span) and the longest consecutive
    same-template run — and detection flags a window when either
    statistic exceeds ``rate_factor`` / ``burst_factor`` times its
    trained maximum.  ``min_events`` floors both limits so near-empty
    training baselines cannot make trivial sessions alarm.

    Purely arithmetic over timestamps and template ids: deterministic,
    training is one pass, and the verdict is independent of executor
    and batching like every other detector.
    """

    name = "rollingwindow"
    supervised = False

    def __init__(
        self,
        window_seconds: float = 10.0,
        rate_factor: float = 3.0,
        burst_factor: float = 3.0,
        min_events: int = 8,
    ) -> None:
        if window_seconds <= 0.0:
            raise ValueError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        if rate_factor < 1.0 or burst_factor < 1.0:
            raise ValueError(
                "rate_factor and burst_factor must be >= 1, got "
                f"{rate_factor} / {burst_factor}"
            )
        self.window_seconds = window_seconds
        self.rate_factor = rate_factor
        self.burst_factor = burst_factor
        self.min_events = min_events
        self._max_window_events: int | None = None
        self._max_run: int = 1

    def _window_peak(self, session: Session) -> int:
        """Most events inside any ``window_seconds`` rolling span."""
        timestamps = sorted(event.timestamp for event in session)
        peak = 0
        start = 0
        for end, timestamp in enumerate(timestamps):
            while timestamp - timestamps[start] > self.window_seconds:
                start += 1
            peak = max(peak, end - start + 1)
        return peak

    @staticmethod
    def _longest_run(session: Session) -> tuple[int, int | None]:
        """(longest same-template run, its template id)."""
        best = 0
        best_id: int | None = None
        run = 0
        previous: int | None = None
        for event in session:
            if event.template_id == previous:
                run += 1
            else:
                run = 1
                previous = event.template_id
            if run > best:
                best = run
                best_id = event.template_id
        return best, best_id

    def fit(
        self, sessions: list[Session], labels: list[bool] | None = None
    ) -> "RollingWindowDetector":
        if not sessions:
            raise ValueError(
                "RollingWindowDetector needs non-empty training sessions"
            )
        self._max_window_events = max(
            (self._window_peak(session) for session in sessions), default=0
        )
        self._max_run = max(
            (self._longest_run(session)[0] for session in sessions),
            default=1,
        )
        return self

    def detect(self, session: Session) -> DetectionResult:
        self._require_fitted("_max_window_events")
        assert self._max_window_events is not None
        reasons: list[str] = []
        peak = self._window_peak(session)
        flood_limit = max(
            self.rate_factor * max(self._max_window_events, 1),
            float(self.min_events),
        )
        flood_ratio = peak / flood_limit
        if peak > flood_limit:
            reasons.append(
                f"log flood: {peak} events inside "
                f"{self.window_seconds:g}s (trained max "
                f"{self._max_window_events}, limit {flood_limit:g})"
            )
        run, run_id = self._longest_run(session)
        burst_limit = max(
            self.burst_factor * max(self._max_run, 1),
            float(self.min_events),
        )
        burst_ratio = run / burst_limit
        if run > burst_limit:
            reasons.append(
                f"repetition burst: template#{run_id} repeated {run}x "
                f"consecutively (trained max {self._max_run}, limit "
                f"{burst_limit:g})"
            )
        return DetectionResult(
            anomalous=bool(reasons),
            score=max(flood_ratio, burst_ratio),
            reasons=tuple(reasons),
        )
