"""Windowing: turning a parsed stream into detector sessions.

Three strategies, matching the literature:

* :func:`sessions_from_parsed` — group by session identifier (HDFS
  blocks, cloud request ids).  The natural unit when the substrate
  provides an execution context.
* :func:`sliding_windows` — fixed-count windows with a step, for
  streams without session ids (BGL).
* :func:`time_windows` — fixed-duration windows.

Windowing strategy is a design choice DESIGN.md flags for ablation
(experiment X3 runs both session and sliding windows).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.logs.record import ParsedLog


def sessions_from_parsed(
    parsed: Iterable[ParsedLog],
) -> dict[str, list[ParsedLog]]:
    """Group parsed events by session id (delivery order preserved).

    Events without a session id group under ``""``.
    """
    sessions: dict[str, list[ParsedLog]] = {}
    for event in parsed:
        sessions.setdefault(event.session_id or "", []).append(event)
    return sessions


def sliding_windows(
    parsed: Iterable[ParsedLog],
    size: int,
    step: int | None = None,
) -> Iterator[list[ParsedLog]]:
    """Yield fixed-count windows of ``size`` events every ``step``.

    ``step`` defaults to ``size`` (tumbling windows).  The final
    partial window is yielded if non-empty.
    """
    if size < 1:
        raise ValueError(f"window size must be >= 1, got {size}")
    step = size if step is None else step
    if step < 1:
        raise ValueError(f"window step must be >= 1, got {step}")
    events = list(parsed)
    for start in range(0, len(events), step):
        window = events[start:start + size]
        if window:
            yield window
        if start + size >= len(events):
            break


def time_windows(
    parsed: Iterable[ParsedLog],
    span: float,
) -> Iterator[list[ParsedLog]]:
    """Yield windows of ``span`` seconds (tumbling, aligned on arrival).

    Window boundaries are anchored at the first event's timestamp.
    """
    if span <= 0:
        raise ValueError(f"window span must be > 0, got {span}")
    window: list[ParsedLog] = []
    window_end: float | None = None
    for event in parsed:
        if window_end is None:
            window_end = event.timestamp + span
        if event.timestamp >= window_end:
            if window:
                yield window
            window = []
            while event.timestamp >= window_end:
                window_end += span
        window.append(event)
    if window:
        yield window
