"""The component registry: every pluggable piece under one namespace.

MoniLog is assembled from interchangeable components — template miners,
anomaly detectors, sessionizers, live sources, shard executors.  Each
component class *self-registers* at definition time via the
:func:`register_component` decorator, recording its kind, its string
name, and its constructor signature:

    @register_component("parser", "drain")
    class DrainParser(OnlineParser): ...

Consumers — :class:`repro.api.spec.PipelineSpec` validation,
:class:`repro.api.pipeline.Pipeline` construction, and the CLI's
``--parser``/``--detector`` menus — resolve components by
``(kind, name)`` through the process-wide :data:`REGISTRY` and never
import concrete classes directly.  Unknown names and options that do
not bind to the constructor signature fail with errors that say which
component, which knob, and what the choices were.

Registration happens on import of the defining module; the registry
lazily imports the known provider packages the first time a kind is
queried, so ``names("parser")`` is complete without callers having to
remember which packages to import.  This module itself depends only on
the standard library — component modules can import it without cycles.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any

#: Component kind -> modules whose import registers that kind's
#: components.  Queried lazily, once per kind.
_PROVIDERS: dict[str, tuple[str, ...]] = {
    "parser": ("repro.parsing",),
    "detector": ("repro.detection",),
    "sessionizer": ("repro.core.streaming",),
    "source": ("repro.ingest.sources", "repro.logs.sources"),
    "executor": ("repro.core.executors",),
    "telemetry": ("repro.telemetry.config",),
    "autoscale": ("repro.autoscale.config",),
    "gateway": ("repro.gateway",),
}


@dataclass(frozen=True)
class Component:
    """One registered component: its class and constructor signature."""

    kind: str
    name: str
    cls: type
    signature: inspect.Signature

    def describe(self) -> str:
        """``name(param=default, ...)`` — the CLI/docs help line."""
        return f"{self.name}{self.signature}"

    def option_errors(self, options: dict[str, Any]) -> list[str]:
        """Why ``options`` cannot construct this component (else [])."""
        try:
            self.signature.bind_partial(**options)
        except TypeError as error:
            return [
                f"{self.kind} {self.name!r} does not accept {error}; "
                f"signature is {self.describe()}"
            ]
        return []


class ComponentRegistry:
    """Name -> class lookup for every component kind."""

    def __init__(self) -> None:
        self._components: dict[tuple[str, str], Component] = {}
        self._loaded_kinds: set[str] = set()

    # -- registration (called from component modules at import) ---------------

    def add(self, kind: str, name: str, cls: type) -> None:
        key = (kind, name)
        existing = self._components.get(key)
        if existing is not None and existing.cls is not cls:
            raise ValueError(
                f"{kind} {name!r} is already registered to "
                f"{existing.cls.__qualname__}; cannot re-register "
                f"{cls.__qualname__}"
            )
        try:
            signature = inspect.signature(cls)
        except (TypeError, ValueError):  # builtins without signatures
            signature = inspect.Signature()
        self._components[key] = Component(kind, name, cls, signature)

    # -- lookup ----------------------------------------------------------------

    def _ensure_loaded(self, kind: str) -> None:
        if kind in self._loaded_kinds:
            return
        self._loaded_kinds.add(kind)
        for module in _PROVIDERS.get(kind, ()):
            importlib.import_module(module)

    def kinds(self) -> list[str]:
        return sorted(_PROVIDERS)

    def names(self, kind: str) -> list[str]:
        """All registered names of one kind, sorted."""
        self._ensure_loaded(kind)
        return sorted(name for k, name in self._components if k == kind)

    def get(self, kind: str, name: str) -> Component:
        """The component entry, or a choices-listing KeyError."""
        self._ensure_loaded(kind)
        component = self._components.get((kind, name))
        if component is None:
            raise KeyError(
                f"unknown {kind} {name!r}; choose from {self.names(kind)}"
            )
        return component

    def create(self, kind: str, name: str, options: dict[str, Any]
               | None = None, **extra: Any) -> Any:
        """Construct ``(kind, name)`` with ``options`` + ``extra`` kwargs.

        ``options`` carry the user's spec knobs; ``extra`` carries knobs
        the framework injects (maskers, executors).  Options that do not
        bind to the constructor raise a ValueError naming the component
        and its signature, before the constructor ever runs.
        """
        component = self.get(kind, name)
        merged = dict(options or {})
        merged.update(extra)
        problems = component.option_errors(merged)
        if problems:
            raise ValueError("; ".join(problems))
        return component.cls(**merged)

    def option_errors(self, kind: str, name: str,
                      options: dict[str, Any]) -> list[str]:
        """Validation-friendly: error strings instead of raises."""
        try:
            component = self.get(kind, name)
        except KeyError as error:
            return [str(error).strip('"')]
        return component.option_errors(options)


#: The process-wide registry every component registers into.
REGISTRY = ComponentRegistry()


def register_component(kind: str, name: str):
    """Class decorator: register ``cls`` as ``(kind, name)``.

    Attaches ``component_kind``/``component_name`` attributes so an
    instance can report what registry entry built it.
    """

    def decorate(cls: type) -> type:
        REGISTRY.add(kind, name, cls)
        cls.component_kind = kind
        cls.component_name = name
        return cls

    return decorate
