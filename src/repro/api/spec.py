"""`PipelineSpec`: one declarative description of a MoniLog pipeline.

A spec names the components (by their registry names) and the knobs of
an end-to-end pipeline — parsing, windowing, detection, scale-out,
streaming, and ingestion — in one flat dataclass, superseding the
``MoniLogConfig`` + ``IngestConfig`` split the legacy facades took.
:class:`~repro.api.pipeline.Pipeline` builds the whole runtime from a
spec; the CLI maps its flags 1:1 onto spec fields.

Specs load from plain dicts, TOML, or JSON (:meth:`from_dict`,
:meth:`from_file`), accept ``MONILOG_<FIELD>`` environment overrides
(:meth:`with_env`), and validate **aggregated**: every bad field is
reported in one :class:`~repro.core.validation.ConfigError`, each line
naming the field, instead of failing on the first bad knob.

TOML example (see ``examples/pipeline.toml``)::

    parser = "drain"
    detector = "deeplog"
    shards = 4
    detector_shards = 2
    executor = "thread"

    [detector_options]
    epochs = 8

    [[sources]]
    type = "file"
    path = "live.log"
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.api.registry import REGISTRY
from repro.core.config import IngestConfig, MoniLogConfig
from repro.core.executors import default_executor_name
from repro.core.validation import ConfigError, Validator

#: Environment-variable prefix of :meth:`PipelineSpec.with_env`.
ENV_PREFIX = "MONILOG_"

#: Spec table fields that hold registry-validated component options:
#: field name (== component kind) -> default component name.
_TABLE_COMPONENTS = {"telemetry": "standard", "autoscale": "aimd"}

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off"}

#: Tenant names key metric labels, checkpoint namespaces, and alert
#: tags, so they are restricted to a filesystem/exposition-safe set.
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass
class PipelineSpec:
    """Everything needed to build one pipeline, declaratively.

    Component fields (``parser``, ``detector``, ``executor``, source
    ``type``\\ s) hold registry names; ``*_options`` dicts are keyword
    arguments forwarded to the component constructor and validated
    against its signature up front.

    Attributes:
        parser / parser_options: stage-1 template miner.  With
            ``shards > 0`` the parser must be ``"drain"`` (the
            distributed tree parser shards Drain instances).
        masking: apply the expert regex masker before mining (off =
            the fully-automated regime the paper targets).
        extract_structured: run JSON/XML payload extraction first.
        auto_calibrate / calibration_sample: unsupervised parser
            parametrization on the first records (single-instance
            pipelines only; the sharded runtime ignores it).
        windowing / window_size / min_window_events: how the structured
            stream becomes detector windows.
        detector / detector_options: stage-2 anomaly detector.  In a
            sharded pipeline each detector shard gets its own instance;
            a constructor that accepts ``seed`` (and has no pinned
            ``seed`` option) receives ``seed=<shard index>``, matching
            the legacy default of per-shard DeepLog seeds.
        shards: parser shards; 0 = single-instance pipeline.  The
            *initial* count — ``Pipeline.reshard`` (or the autoscaler,
            with ``[autoscale] reshard = true``) resizes it live;
            rendezvous routing and template migration keep alerts
            byte-identical across a resize.
        detector_shards: detector replicas in the sharded runtime.
        batch_size: micro-batch size of the amortized parse path;
            0 = per-record processing.
        executor: how shard work runs (``serial``/``thread``/
            ``process``); defaults to ``MONILOG_EXECUTOR``, else serial.
        streaming: build in streaming mode — records push through an
            incremental sessionizer and alerts fire as sessions close.
        session_timeout / max_session_events: streaming session
            windowing knobs.
        ingest_batch_size / max_batch_age / lateness / credits /
            poll_interval: async ingestion front-end knobs (see
            :class:`~repro.core.config.IngestConfig`).
        checkpoint: offset checkpoint file path for ingestion resume.
        history: optional path of a training corpus; ``repro serve``
            (and ``repro stats`` without an explicit ``--history``)
            fits pipelines from it.
        sources: live-source declarations for ingestion, each a dict
            with a ``type`` naming a registered source plus its
            constructor kwargs.
        tenants: the ``[tenants.*]`` tables of a multi-tenant gateway
            spec.  Each value is a table of spec-field overrides
            applied on top of this spec for that tenant
            (:meth:`tenant_spec`); overrides validate exactly like the
            base fields, errors prefixed ``tenants.<name>``.  A
            non-empty table is what makes a spec servable by
            :class:`repro.gateway.Gateway` / ``repro serve``.
        telemetry: the ``[telemetry]`` table — options of
            :class:`~repro.telemetry.config.TelemetryConfig` (an
            optional ``type`` selects a registered implementation).
            Declaring the table enables runtime telemetry; empty dict
            (the default) runs dark with zero instrumentation cost.
        autoscale: the ``[autoscale]`` table — options of
            :class:`~repro.autoscale.config.AutoscaleConfig`.
            Declaring it arms the adaptive controller over the
            ingestion and batching knobs; ``reshard = true`` (with
            ``min_shards`` / ``max_shards`` / ``reshard_cooldown``)
            additionally lets it resize the parser shard count.
    """

    # -- stage 1: parsing -------------------------------------------------------
    parser: str = "drain"
    parser_options: dict[str, Any] = field(default_factory=dict)
    masking: bool = True
    extract_structured: bool = False
    auto_calibrate: bool = False
    calibration_sample: int = 2000
    # -- windowing --------------------------------------------------------------
    windowing: str = "session"
    window_size: int = 50
    min_window_events: int = 2
    # -- stage 2: detection -----------------------------------------------------
    detector: str = "deeplog"
    detector_options: dict[str, Any] = field(default_factory=dict)
    # -- scale-out --------------------------------------------------------------
    shards: int = 0
    detector_shards: int = 1
    batch_size: int = 512
    executor: str = field(default_factory=default_executor_name)
    # -- streaming --------------------------------------------------------------
    streaming: bool = False
    session_timeout: float = 30.0
    max_session_events: int = 1000
    # -- ingestion --------------------------------------------------------------
    ingest_batch_size: int = 256
    max_batch_age: float = 0.25
    lateness: float = 0.5
    credits: int = 4096
    poll_interval: float = 0.05
    checkpoint: str | None = None
    history: str | None = None
    sources: list[dict[str, Any]] = field(default_factory=list)
    # -- observability ----------------------------------------------------------
    telemetry: dict[str, Any] = field(default_factory=dict)
    autoscale: dict[str, Any] = field(default_factory=dict)
    # -- multi-tenant serving ---------------------------------------------------
    tenants: dict[str, dict[str, Any]] = field(default_factory=dict)

    # -- validation -------------------------------------------------------------

    def __post_init__(self) -> None:
        check = Validator(type(self).__name__)
        self._validate_components(check)
        self._validate_knobs(check)
        self._validate_tenants(check)
        check.done()

    def _validate_components(self, check: Validator) -> None:
        parser_names = REGISTRY.names("parser")
        if self.parser not in parser_names:
            check.error(
                "parser", f"unknown parser {self.parser!r}; "
                f"choose from {parser_names}"
            )
        elif not isinstance(self.parser_options, dict):
            check.error("parser_options", "must be a table/dict of options")
        else:
            for problem in REGISTRY.option_errors(
                "parser", self.parser, self.parser_options
            ):
                check.error("parser_options", problem)
        detector_names = REGISTRY.names("detector")
        if self.detector not in detector_names:
            check.error(
                "detector", f"unknown detector {self.detector!r}; "
                f"choose from {detector_names}"
            )
        elif not isinstance(self.detector_options, dict):
            check.error("detector_options", "must be a table/dict of options")
        else:
            for problem in REGISTRY.option_errors(
                "detector", self.detector, self.detector_options
            ):
                check.error("detector_options", problem)
        executor_names = REGISTRY.names("executor")
        check.require(
            self.executor in executor_names, "executor",
            f"must be one of {executor_names}, got {self.executor!r}",
        )
        if not isinstance(self.sources, (list, tuple)):
            check.error("sources", "must be an array of source tables")
        else:
            for index, entry in enumerate(self.sources):
                label = f"sources[{index}]"
                if not isinstance(entry, dict):
                    check.error(label, "must be a table/dict")
                    continue
                kind = entry.get("type")
                if not kind:
                    check.error(label, "needs a 'type' naming a source")
                    continue
                options = {k: v for k, v in entry.items() if k != "type"}
                for problem in REGISTRY.option_errors(
                    "source", kind, options
                ):
                    check.error(label, problem)
        for table_field, default_type in _TABLE_COMPONENTS.items():
            table = getattr(self, table_field)
            if not isinstance(table, dict):
                check.error(table_field, "must be a table/dict of options")
                continue
            if not table:
                continue
            name = table.get("type", default_type)
            options = {k: v for k, v in table.items() if k != "type"}
            problems = REGISTRY.option_errors(table_field, name, options)
            for problem in problems:
                check.error(table_field, problem)
            if not problems:
                # The config dataclasses are cheap: construct now so
                # value-range errors aggregate here, field-named, not
                # at pipeline build time.  Wrong *types* (a quoted
                # number in a spec file) surface from the same
                # construction as TypeError/ValueError — fold them
                # into the aggregate too instead of letting a raw
                # traceback escape the validation layer.
                try:
                    REGISTRY.create(table_field, name, options)
                except ConfigError as failure:
                    for line in failure.errors:
                        check.error(table_field, line)
                except (TypeError, ValueError) as failure:
                    check.error(table_field, str(failure))

    def _validate_knobs(self, check: Validator) -> None:
        check.require(
            self.windowing in ("session", "sliding"), "windowing",
            f"must be 'session' or 'sliding', got {self.windowing!r}",
        )
        check.require(self.window_size >= 1, "window_size",
                      f"must be >= 1, got {self.window_size}")
        check.require(self.min_window_events >= 1, "min_window_events",
                      f"must be >= 1, got {self.min_window_events}")
        check.require(self.calibration_sample >= 1, "calibration_sample",
                      f"must be >= 1, got {self.calibration_sample}")
        check.require(self.shards >= 0, "shards",
                      f"must be >= 0 (0 = single instance), got {self.shards}")
        check.require(self.detector_shards >= 1, "detector_shards",
                      f"must be >= 1, got {self.detector_shards}")
        check.require(self.batch_size >= 0, "batch_size",
                      f"must be >= 0 (0 = per-record), got {self.batch_size}")
        if self.shards > 0:
            check.require(
                self.windowing == "session", "shards",
                "sharded pipelines route detector work by session id "
                "and therefore require session windowing",
            )
            check.require(
                self.parser == "drain", "shards",
                f"sharding runs the distributed Drain; it cannot shard "
                f"{self.parser!r}",
            )
        check.require(self.session_timeout > 0, "session_timeout",
                      f"must be > 0, got {self.session_timeout}")
        check.require(self.max_session_events >= 1, "max_session_events",
                      f"must be >= 1, got {self.max_session_events}")
        check.require(self.ingest_batch_size >= 1, "ingest_batch_size",
                      f"must be >= 1, got {self.ingest_batch_size}")
        check.require(self.max_batch_age > 0, "max_batch_age",
                      f"must be > 0, got {self.max_batch_age}")
        check.require(self.lateness >= 0, "lateness",
                      f"must be >= 0, got {self.lateness}")
        check.require(self.credits >= 1, "credits",
                      f"must be >= 1, got {self.credits}")
        check.require(self.poll_interval > 0, "poll_interval",
                      f"must be > 0, got {self.poll_interval}")

    def _validate_tenants(self, check: Validator) -> None:
        if not isinstance(self.tenants, dict):
            check.error("tenants", "must be a table of per-tenant tables")
            return
        overridable = set(self.field_names()) - {"tenants"}
        for name, table in self.tenants.items():
            if not isinstance(name, str) or not _TENANT_NAME.match(name):
                check.error(
                    "tenants",
                    f"tenant name {name!r} must match "
                    "[A-Za-z0-9][A-Za-z0-9._-]* — it keys metric labels "
                    "and checkpoint namespaces",
                )
                continue
            label = f"tenants.{name}"
            if not isinstance(table, dict):
                check.error(label, "must be a table of spec-field overrides")
                continue
            unknown = [key for key in table if key not in overridable]
            for key in unknown:
                check.error(
                    label,
                    f"{key}: " + ("tenant tables cannot nest tenants"
                                  if key == "tenants" else "unknown field"),
                )
            if unknown:
                continue
            # A tenant's effective spec is this spec with the table
            # overriding; constructing it runs the full validation so
            # a bad per-tenant knob reports here, field-named, instead
            # of detonating when the gateway builds that tenant.
            try:
                self.replace(tenants={}, **table)
            except ConfigError as failure:
                for line in failure.errors:
                    check.error(label, line)

    # -- loading ----------------------------------------------------------------

    @classmethod
    def field_names(cls) -> list[str]:
        return [f.name for f in dataclasses.fields(cls)]

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PipelineSpec":
        """Build a spec from a plain mapping; unknown keys aggregate too."""
        if not isinstance(data, dict):
            raise ConfigError(cls.__name__,
                              [f"spec: must be a mapping, got {type(data).__name__}"])
        known = set(cls.field_names())
        errors = [
            f"{key}: unknown field (known fields: {sorted(known)})"
            for key in data if key not in known
        ]
        kwargs = {key: value for key, value in data.items() if key in known}
        try:
            spec = cls(**kwargs)
        except ConfigError as failure:
            raise ConfigError(cls.__name__, errors + failure.errors) from None
        if errors:
            raise ConfigError(cls.__name__, errors)
        return spec

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "PipelineSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() == ".json":
            try:
                data = json.loads(text)
            except ValueError as error:
                raise ConfigError(cls.__name__,
                                  [f"{path}: invalid JSON: {error}"]) from None
        else:
            import tomllib
            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as error:
                raise ConfigError(cls.__name__,
                                  [f"{path}: invalid TOML: {error}"]) from None
        return cls.from_dict(data)

    def replace(self, **overrides: Any) -> "PipelineSpec":
        """A copy with ``overrides`` applied (re-validated)."""
        return dataclasses.replace(self, **overrides)

    def with_env(self, env: dict[str, str] | None = None) -> "PipelineSpec":
        """Apply ``MONILOG_<FIELD>`` environment overrides.

        Scalar fields only (``MONILOG_SHARDS=4``, ``MONILOG_DETECTOR=pca``,
        ``MONILOG_STREAMING=true``); option tables and sources stay
        file/flag territory — except the ``[telemetry]``/``[autoscale]``
        tables, whose scalar options override as
        ``MONILOG_<TABLE>_<OPTION>`` (``MONILOG_TELEMETRY_ENABLED=1``,
        ``MONILOG_AUTOSCALE_INTERVAL=0.5``): observability must be
        switchable per run without editing a checked-in spec.
        Unparseable values aggregate into one :class:`ConfigError`
        like any other bad knob.
        """
        env = os.environ if env is None else env
        overrides: dict[str, Any] = {}
        errors: list[str] = []
        for spec_field in dataclasses.fields(self):
            if spec_field.name in ("parser_options", "detector_options",
                                   "sources", "tenants", *_TABLE_COMPONENTS):
                continue
            raw = env.get(ENV_PREFIX + spec_field.name.upper())
            if raw is None:
                continue
            current = getattr(self, spec_field.name)
            try:
                overrides[spec_field.name] = _coerce(raw, current)
            except ValueError as error:
                errors.append(
                    f"{spec_field.name}: bad {ENV_PREFIX}"
                    f"{spec_field.name.upper()} value {raw!r} ({error})"
                )
        for table_field, default_type in _TABLE_COMPONENTS.items():
            table = dict(getattr(self, table_field) or {})
            component = REGISTRY.get(table_field,
                                     table.get("type", default_type))
            changed = False
            for option in dataclasses.fields(component.cls):
                variable = (f"{ENV_PREFIX}{table_field.upper()}"
                            f"_{option.name.upper()}")
                raw = env.get(variable)
                if raw is None:
                    continue
                if option.name in table:
                    current = table[option.name]
                elif option.default is not dataclasses.MISSING:
                    current = option.default
                else:
                    current = None
                try:
                    table[option.name] = _coerce(raw, current,
                                                 guess_numeric=True)
                    changed = True
                except ValueError as error:
                    errors.append(
                        f"{table_field}.{option.name}: bad {variable} "
                        f"value {raw!r} ({error})"
                    )
            if changed:
                if not getattr(self, table_field) and "enabled" not in table:
                    # Declaring the table (or MONILOG_<TABLE>_ENABLED,
                    # or a CLI flag) is the opt-in; a tuning variable
                    # like MONILOG_AUTOSCALE_INTERVAL exported globally
                    # must not arm the subsystem on specs that never
                    # asked for it — carry the tuning, stay dark.
                    table["enabled"] = False
                overrides[table_field] = table
        if errors:
            raise ConfigError(type(self).__name__, errors)
        return self.replace(**overrides) if overrides else self

    # -- bridges to the legacy config objects -----------------------------------

    @classmethod
    def from_config(cls, config: MoniLogConfig | None = None,
                    ingest: IngestConfig | None = None,
                    **overrides: Any) -> "PipelineSpec":
        """The spec equivalent of a legacy config pair (shim bridge)."""
        config = config or MoniLogConfig()
        fields: dict[str, Any] = dict(
            masking=config.use_masking,
            extract_structured=config.extract_structured,
            auto_calibrate=config.auto_calibrate,
            calibration_sample=config.calibration_sample,
            windowing=config.windowing,
            window_size=config.window_size,
            min_window_events=config.min_window_events,
            executor=config.executor,
        )
        if ingest is not None:
            fields.update(
                ingest_batch_size=ingest.batch_size,
                max_batch_age=ingest.max_batch_age,
                lateness=ingest.lateness,
                credits=ingest.credits,
                poll_interval=ingest.poll_interval,
            )
        fields.update(overrides)
        return cls(**fields)

    def monilog_config(self) -> MoniLogConfig:
        """The legacy pipeline-config view of this spec."""
        return MoniLogConfig(
            windowing=self.windowing,
            window_size=self.window_size,
            extract_structured=self.extract_structured,
            use_masking=self.masking,
            auto_calibrate=self.auto_calibrate,
            calibration_sample=self.calibration_sample,
            min_window_events=self.min_window_events,
            executor=self.executor,
        )

    def ingest_config(self) -> IngestConfig:
        """The ingestion front-end knobs as an :class:`IngestConfig`."""
        return IngestConfig(
            batch_size=self.ingest_batch_size,
            max_batch_age=self.max_batch_age,
            lateness=self.lateness,
            credits=self.credits,
            poll_interval=self.poll_interval,
        )

    def tenant_spec(self, name: str) -> "PipelineSpec":
        """The effective spec of one declared tenant.

        This spec with the tenant's ``[tenants.<name>]`` table
        overriding and the tenants table cleared — the single-pipeline
        spec the gateway builds that tenant from.
        """
        if name not in self.tenants:
            raise KeyError(
                f"unknown tenant {name!r}; declared: {sorted(self.tenants)}")
        return self.replace(tenants={}, **self.tenants[name])

    def build_sources(self) -> list[Any]:
        """Construct the declared live sources through the registry."""
        return [
            REGISTRY.create(
                "source", entry["type"],
                {key: value for key, value in entry.items() if key != "type"},
            )
            for entry in self.sources
        ]

    def _table_config(self, table_field: str) -> Any | None:
        table = getattr(self, table_field)
        if not table:
            return None
        config = REGISTRY.create(
            table_field, table.get("type", _TABLE_COMPONENTS[table_field]),
            {key: value for key, value in table.items() if key != "type"},
        )
        return config if config.enabled else None

    def telemetry_config(self):
        """The ``[telemetry]`` table as a
        :class:`~repro.telemetry.config.TelemetryConfig`, or ``None``
        when telemetry is off (no table, or ``enabled = false``)."""
        return self._table_config("telemetry")

    def autoscale_config(self):
        """The ``[autoscale]`` table as an
        :class:`~repro.autoscale.config.AutoscaleConfig`, or ``None``
        when autoscaling is off."""
        return self._table_config("autoscale")


def _coerce(raw: str, current: Any, guess_numeric: bool = False) -> Any:
    """Parse an environment string against the field's current type.

    ``guess_numeric`` governs ``current is None``: table options like
    ``metrics_port`` default to ``None`` but want the numeric reading,
    while top-level optional fields like ``checkpoint`` are paths —
    a checkpoint directory named ``2024`` must stay a string.
    """
    if current is None:
        if guess_numeric:
            for parse in (int, float):
                try:
                    return parse(raw)
                except ValueError:
                    continue
        return raw
    if isinstance(current, bool):
        lowered = raw.strip().lower()
        if lowered in _TRUTHY:
            return True
        if lowered in _FALSY:
            return False
        raise ValueError("expected a boolean like '1'/'0'/'true'/'false'")
    if isinstance(current, int):
        return int(raw)
    if isinstance(current, float):
        return float(raw)
    return raw
