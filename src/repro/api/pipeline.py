"""`Pipeline`: the one composable facade behind every MoniLog entry point.

Historically the reproduction had four hand-rolled pipeline variants —
``MoniLog`` (offline, single instance), ``StreamingMoniLog`` (record at
a time), ``ShardedMoniLog`` (concurrent shards), and
``StreamingShardedMoniLog`` (both) — plus the ingestion service, each
re-implementing train/score/drain orchestration.  :class:`Pipeline`
replaces all four behind **one uniform lifecycle**:

    spec = PipelineSpec(detector="deeplog", shards=4, executor="thread")
    with Pipeline.from_spec(spec) as pipeline:
        pipeline.fit(history)
        alerts = pipeline.process(live)          # offline batch
        print(pipeline.stats())

    spec = spec.replace(streaming=True, session_timeout=10.0)
    with Pipeline.from_spec(spec).fit(history) as live_pipeline:
        for record in tail_the_stream():
            for alert in live_pipeline.process_record(record):
                page_someone(alert)
        live_pipeline.flush()

Internally the builder composes sharding (``spec.shards``), batching
(``spec.batch_size``), streaming (``spec.streaming`` or
:meth:`stream`), and ingestion (:meth:`serve` /
:class:`~repro.ingest.service.IngestService`, which accepts a
``Pipeline`` directly) from registry-resolved components — instead of
four class variants duplicating the flow.  The composition preserves
the legacy facades' semantics *exactly*: a ``Pipeline`` built from the
equivalent spec produces byte-identical alerts, in identical order, to
each legacy facade (proven by ``tests/test_api_parity.py``), which is
what lets those facades survive as thin deprecated shims.

Output does not depend on the executor, the batch size, or
batch-vs-streaming operation (beyond which windows have closed) — the
invariants the legacy classes established, inherited wholesale because
this class *is* their code, merged.
"""

from __future__ import annotations

import copy
from collections.abc import Iterable, Iterator
from os import PathLike

from repro.api.registry import REGISTRY
from repro.api.spec import PipelineSpec
from repro.autoscale.controller import AutoscaleController
from repro.classify.classifier import AnomalyClassifier
from repro.classify.pools import PoolManager
from repro.core.calibration import DEFAULT_GRIDS, AutoCalibrator
from repro.core.distributed import (
    _detect_shard,
    _fit_shard,
    _sessions_by_key,
    _shard_of,
)
from repro.core.executors import ShardExecutor, resolve_executor
from repro.core.pipeline import PipelineStats
from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.core.streaming import BatchHandoff, StreamingSessionizer
from repro.detection.base import DetectionResult, Detector
from repro.detection.windows import sessions_from_parsed, sliding_windows
from repro.logs.record import DEFAULT_TENANT, LogRecord, ParsedLog
from repro.parsing.base import BatchParser, Parser, parse_in_batches
from repro.parsing.drain import DrainParser
from repro.parsing.logram import LogramParser
from repro.parsing.masking import default_masker, no_masker
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.instrument import PipelineTelemetry
from repro.telemetry.profiling import (
    SamplingProfiler,
    pop_stage,
    push_stage,
)
from repro.telemetry.server import MetricsServer
from repro.telemetry.tracing import (
    AlertProvenance,
    HealthMonitor,
    TraceContext,
    Tracer,
    TraceStore,
)

#: Distinguishes "caller said nothing" from an explicit ``None``
#: (= one batch for the whole list) in :meth:`Pipeline.process`.
_UNSET = object()


class Pipeline:
    """A full MoniLog pipeline built from a :class:`PipelineSpec`.

    Args:
        spec: the declarative description; a plain dict is accepted and
            validated.  ``None`` means all defaults.
        parser: explicit stage-1 component instance, overriding
            ``spec.parser`` (single-instance pipelines only — a sharded
            pipeline builds its own :class:`DistributedDrain` and takes
            parser knobs via ``spec.parser_options``).
        detector: explicit stage-2 instance overriding ``spec.detector``
            (single-instance pipelines only).
        detector_factory: ``shard -> Detector`` builder for sharded
            pipelines, overriding ``spec.detector``.
        executor: a :class:`~repro.core.executors.ShardExecutor`
            instance overriding ``spec.executor`` (instances cannot be
            named in a spec file; benches share pools this way).
        metrics_registry: where telemetry families are declared,
            overriding the default private registry — the gateway
            passes each tenant a
            :class:`~repro.telemetry.metrics.ScopedRegistry` view of
            one shared registry.  Passing one opts into telemetry even
            without a ``[telemetry]`` table (unless the table
            explicitly disables it).
        tracer: a :class:`~repro.telemetry.tracing.Tracer` instance
            overriding the spec-built one — the gateway passes each
            tenant a tenant-scoped tracer over one shared
            :class:`~repro.telemetry.tracing.TraceStore`.
        health: a shared :class:`~repro.telemetry.tracing.HealthMonitor`
            for ``/readyz`` probes (the gateway shares one across
            tenants); defaults to a private monitor whenever telemetry
            is enabled.
        probe_scope: prefix for this pipeline's probe names on a
            shared health monitor (the gateway passes ``"<tenant>."``).
        profiler: a running
            :class:`~repro.telemetry.profiling.SamplingProfiler`
            overriding the spec-built one — the gateway passes every
            profiling tenant the one shared sampler (stage markers
            carry the tenant name, so attribution stays per-tenant).
            An injected profiler's lifecycle belongs to its owner;
            a spec-built one (``[telemetry] profile = true``) starts
            here and stops at :meth:`close`.

    Lifecycle: :meth:`fit` → :meth:`process` / :meth:`process_record` /
    :meth:`run` → :meth:`flush` (streaming) → :meth:`close` (or use the
    pipeline as a context manager).  :meth:`stats` reports the live
    counters; :meth:`stream` arms streaming mode post-construction.
    """

    def __init__(
        self,
        spec: PipelineSpec | dict | None = None,
        *,
        parser: Parser | None = None,
        detector: Detector | None = None,
        detector_factory=None,
        executor: str | ShardExecutor | None = None,
        metrics_registry=None,
        tracer: Tracer | None = None,
        health: HealthMonitor | None = None,
        probe_scope: str = "",
        profiler: SamplingProfiler | None = None,
    ) -> None:
        if isinstance(spec, dict):
            spec = PipelineSpec.from_dict(spec)
        self.spec = spec if spec is not None else PipelineSpec()
        spec = self.spec
        self.executor = resolve_executor(
            executor if executor is not None else spec.executor
        )
        self._sharded = spec.shards > 0
        masker = default_masker() if spec.masking else no_masker()
        if self._sharded:
            if parser is not None or detector is not None:
                raise ValueError(
                    "a sharded pipeline builds its own components; use "
                    "spec.parser_options / detector_factory instead of "
                    "instances"
                )
            self.parser = REGISTRY.create(
                "parser", "drain-distributed", spec.parser_options,
                shards=spec.shards,
                masker=masker,
                extract_structured=spec.extract_structured,
                executor=self.executor,
            )
            if detector_factory is None:
                detector_factory = self._default_detector_factory
            self.detectors: list[Detector] = [
                detector_factory(shard) for shard in range(spec.detector_shards)
            ]
        else:
            if detector_factory is not None:
                raise ValueError(
                    "detector_factory applies to sharded pipelines; pass "
                    "detector= (or spec.detector) for a single instance"
                )
            if parser is not None:
                self.parser = parser
            else:
                self.parser = REGISTRY.create(
                    "parser", spec.parser, spec.parser_options,
                    masker=masker,
                    extract_structured=spec.extract_structured,
                )
            self.detectors = [
                detector if detector is not None
                else REGISTRY.create("detector", spec.detector,
                                     spec.detector_options)
            ]
        self.pools = PoolManager()
        self.classifier = AnomalyClassifier().attach(self.pools)
        self.sessionizer: StreamingSessionizer | None = (
            StreamingSessionizer(spec.session_timeout,
                                 spec.max_session_events)
            if spec.streaming else None
        )
        self._stats = PipelineStats()
        self._trained = False
        self._report_counter = 0
        # -- observability: telemetry registry + adaptive controller --------
        self._batch_size_override: int | None = None
        self._metrics_server: MetricsServer | None = None
        telemetry_config = spec.telemetry_config()
        if (telemetry_config is None and metrics_registry is not None
                and not spec.telemetry):
            # An injected registry is an explicit opt-in; only a table
            # that says enabled = false keeps the pipeline dark.
            telemetry_config = TelemetryConfig()
        self._telemetry = (
            PipelineTelemetry(telemetry_config, registry=metrics_registry)
            if telemetry_config is not None else None
        )
        if self._telemetry is not None:
            self._telemetry.attach_pipeline(self)
        # -- tracing + provenance + readiness probes -------------------------
        self._trace: TraceContext | None = None
        self._probe_scope = probe_scope
        if tracer is not None:
            self._tracer: Tracer | None = tracer
        elif telemetry_config is not None and telemetry_config.tracing:
            self._tracer = Tracer(
                TraceStore(telemetry_config.trace_buffer),
                sample_rate=telemetry_config.trace_sample_rate,
            )
        else:
            self._tracer = None
        if self._tracer is not None and self._telemetry is not None:
            self._telemetry.attach_tracer(self._tracer)
        # -- continuous profiling: one sampler, stage-attributed -------------
        # Stage markers carry a tenant name so a shared (gateway)
        # profiler attributes per tenant; a standalone pipeline reuses
        # the tracer's tenant, else the probe scope, else the default.
        if tracer is not None:
            self._profile_tenant = tracer.tenant
        else:
            self._profile_tenant = (probe_scope.rstrip(".")
                                    or DEFAULT_TENANT)
        self._owns_profiler = False
        if profiler is not None:
            # Injected (the gateway's shared sampler): the owner
            # attaches it to the shared registry and drives start/stop.
            self._profiler: SamplingProfiler | None = profiler
        elif telemetry_config is not None and telemetry_config.profile:
            self._profiler = SamplingProfiler(
                hz=telemetry_config.profile_hz,
                max_stacks=telemetry_config.profile_stacks,
            )
            self._owns_profiler = True
            self._telemetry.attach_profiler(self._profiler)
            self._profiler.start()
        else:
            self._profiler = None
        if health is not None:
            self._health: HealthMonitor | None = health
        else:
            self._health = (HealthMonitor()
                            if self._telemetry is not None else None)
        if self._health is not None:
            self._health.check(f"{probe_scope}pipeline",
                               lambda: self._trained)
        autoscale_config = spec.autoscale_config()
        self.autoscaler = (
            AutoscaleController(autoscale_config, pipeline=self,
                                telemetry=self._telemetry)
            if autoscale_config is not None else None
        )
        if self.autoscaler is not None and self._telemetry is not None:
            self._telemetry.attach_autoscale(self.autoscaler)
        if (telemetry_config is not None
                and telemetry_config.metrics_port is not None):
            self.start_metrics_server(telemetry_config.metrics_port)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: "PipelineSpec | dict | str | PathLike",
                  **overrides) -> "Pipeline":
        """Build from a spec object, dict, or ``.toml``/``.json`` path."""
        if isinstance(spec, (str, PathLike)):
            spec = PipelineSpec.from_file(spec)
        elif isinstance(spec, dict):
            spec = PipelineSpec.from_dict(spec)
        return cls(spec, **overrides)

    def _default_detector_factory(self, shard: int) -> Detector:
        """One detector per shard; seed-accepting detectors get their
        shard index as the seed (decorrelated replicas, the legacy
        sharded default) unless the spec pins one."""
        options = dict(self.spec.detector_options)
        entry = REGISTRY.get("detector", self.spec.detector)
        if "seed" in entry.signature.parameters and "seed" not in options:
            options["seed"] = shard
        return entry.cls(**options)

    # -- introspection ----------------------------------------------------------

    @property
    def sharded(self) -> bool:
        return self._sharded

    @property
    def streaming(self) -> bool:
        return self.sessionizer is not None

    @property
    def detector(self) -> Detector:
        """The stage-2 detector (first shard when sharded)."""
        return self.detectors[0]

    @property
    def detector_shards(self) -> int:
        return len(self.detectors)

    @property
    def batch_size(self) -> int:
        """Effective micro-batch size (sharded runtimes never go below 1).

        The spec's value, unless the autoscale controller has adjusted
        it at runtime (:meth:`set_batch_size`) — batch size is
        output-neutral by the batching invariants, which is what makes
        it safe to move live.
        """
        size = (self._batch_size_override
                if self._batch_size_override is not None
                else self.spec.batch_size)
        if self._sharded:
            return size or 1
        return size

    def set_batch_size(self, batch_size: int) -> None:
        """Adjust the micro-batch size at runtime (autoscale's knob).

        Alerts are identical for every batch size (proven by
        ``tests/test_batching.py``); only amortization changes.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._batch_size_override = batch_size

    def reshard(self, shards: int):
        """Resize the parser shard count live (autoscale's elastic knob).

        Delegates to
        :meth:`~repro.parsing.distributed.DistributedDrain.resize`:
        rendezvous routing relocates a minimal key slice, relocated
        keys take their template state with them, and global template
        ids never change — so alerts are byte-identical across the
        resize.  Detector shards are untouched (windows route by
        session, not by parser shard).  Returns the
        :class:`~repro.parsing.distributed.ReshardReport`.
        """
        if not self._sharded:
            raise RuntimeError("reshard applies to sharded pipelines "
                               "(spec.shards > 0)")
        report = self.parser.resize(shards)
        self.spec = self.spec.replace(shards=shards)
        if self._telemetry is not None:
            self._telemetry.observe_reshard(report)
        return report

    def stats(self) -> PipelineStats:
        """The live pipeline counters."""
        return self._stats

    # -- observability ----------------------------------------------------------

    @property
    def telemetry_enabled(self) -> bool:
        return self._telemetry is not None

    @property
    def tracing_enabled(self) -> bool:
        return self._tracer is not None

    @property
    def tracer(self) -> Tracer | None:
        """The span/provenance recorder (``None`` with tracing off)."""
        return self._tracer

    @property
    def health(self) -> HealthMonitor | None:
        """The readiness-probe aggregate behind ``/readyz``."""
        return self._health

    @property
    def profiling_enabled(self) -> bool:
        return self._profiler is not None

    @property
    def profiler(self) -> SamplingProfiler | None:
        """The continuous sampler (``None`` with profiling off)."""
        return self._profiler

    def profile(self, limit: int = 20) -> dict:
        """The live profile: aggregate counters + top-``limit`` stacks.

        The same content the HTTP endpoint serves at ``/profile``
        (``repro profile`` prints exactly this as a table).  Raises
        ``RuntimeError`` when profiling is off — like :meth:`explain`
        with tracing off, asking for an artifact the run never
        recorded is a config error, not an empty answer.
        """
        if self._profiler is None:
            raise RuntimeError(
                "profiling is not enabled; set [telemetry] profile = true "
                "(or pass --profile) to run the sampling profiler"
            )
        return {
            "stats": self._profiler.stats(),
            "hotspots": self._profiler.top(limit),
        }

    def explain(self, alert_id: int) -> AlertProvenance:
        """Provenance of one delivered alert (``repro explain``).

        ``alert_id`` is the report id printed as ``report #N`` in alert
        summaries.  Raises ``KeyError`` for unknown ids and
        ``RuntimeError`` when tracing is off.
        """
        if self._tracer is None:
            raise RuntimeError(
                "tracing is not enabled; set [telemetry] tracing = true "
                "(or pass --trace) to record alert provenance"
            )
        return self._tracer.explain(alert_id)

    def trace_spans(self, **filters):
        """Retained spans (``trace_id=`` / ``name=`` / ``limit=`` filters)."""
        if self._tracer is None:
            return []
        return self._tracer.store.spans(**filters)

    def trace_dump(self) -> dict:
        """The portable trace artifact: every retained span + every
        provenance record, as plain JSON-ready dicts (written by
        ``repro pipeline --trace-dump`` and read back by
        ``repro explain --trace-file``)."""
        if self._tracer is None:
            raise RuntimeError("tracing is not enabled; nothing to dump")
        store = self._tracer.store
        return {
            "sample_rate": self._tracer.sample_rate,
            "buffered": len(store),
            "evicted": store.evicted,
            "spans": store.snapshot(),
            "alerts": [provenance.as_dict()
                       for provenance in self._tracer.provenance()],
        }

    # -- tracing plumbing (root spans per processing call) -----------------------

    def _trace_begin(self, kind: str, records: int) -> TraceContext | None:
        """Root (or adopt) the sampled trace for one processing call."""
        ctx = self._tracer.begin(
            kind,
            records=records,
            executor=self.executor.name,
            shards=self.spec.shards,
            detector_shards=self.detector_shards,
        )
        self._trace = ctx
        return ctx

    def _trace_end(self, ctx: TraceContext | None) -> None:
        self._trace = None
        self._tracer.finish(ctx)

    @property
    def metrics_server(self) -> MetricsServer | None:
        """The running HTTP endpoint, if one was started."""
        return self._metrics_server

    def telemetry(self) -> dict | None:
        """The JSON telemetry snapshot (``None`` with telemetry off).

        The same content the HTTP endpoint serves at ``/telemetry``;
        ``repro stats`` prints exactly this.
        """
        if self._telemetry is None:
            return None
        return self._telemetry.snapshot()

    def metrics_text(self) -> str | None:
        """The Prometheus exposition (``None`` with telemetry off)."""
        if self._telemetry is None:
            return None
        return self._telemetry.render_prometheus()

    def start_metrics_server(self, port: int | None = None) -> MetricsServer:
        """Serve ``/metrics`` + ``/telemetry`` over HTTP until close.

        Asking for the endpoint *is* opting into telemetry, so a dark
        pipeline grows a registry here (instrumented from now on).
        ``port`` defaults to the spec's ``metrics_port`` (else an
        ephemeral port); a second call returns the running server.
        """
        if self._metrics_server is not None:
            return self._metrics_server
        if self._telemetry is None:
            self._telemetry = PipelineTelemetry()
            self._telemetry.attach_pipeline(self)
            if self.autoscaler is not None:
                self.autoscaler.telemetry = self._telemetry
                self._telemetry.attach_autoscale(self.autoscaler)
        if self._health is None:
            self._health = HealthMonitor()
            self._health.check(f"{self._probe_scope}pipeline",
                               lambda: self._trained)
        if port is None:
            port = (self._telemetry.config.metrics_port
                    if self._telemetry.config.metrics_port is not None
                    else 0)
        self._metrics_server = MetricsServer(
            self._telemetry.registry, port,
            trace_store=self._tracer.store if self._tracer is not None
            else None,
            health=self._health,
            profiler=self._profiler,
        )
        return self._metrics_server

    # -- lifecycle: close -------------------------------------------------------

    def close(self) -> None:
        """Release the executor's worker pool, the metrics endpoint,
        and the pipeline-owned profiler thread (idempotent)."""
        self.executor.close()
        if self._owns_profiler and self._profiler is not None:
            self._profiler.stop()
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- stage 1 ----------------------------------------------------------------

    def maybe_calibrate(self, sample: list[LogRecord]) -> None:
        """Replace the parser after a calibration sweep, if configured.

        The acquire → calibrate → parse deployment flow; single-instance
        pipelines only (the sharded runtime keeps its constructor
        parameters), and only meaningful before any parsing happened.
        """
        if not self.spec.auto_calibrate or self._sharded:
            return
        if not isinstance(self.parser, DrainParser):
            raise ValueError(
                "auto-calibration is wired for DrainParser; pass a "
                "calibrated parser explicitly for other algorithms"
            )
        masker = self.parser.masker
        extract = self.parser.extract_structured

        def factory(**parameters) -> Parser:
            return DrainParser(
                masker=masker, extract_structured=extract, **parameters
            )

        calibrator = AutoCalibrator(factory, DEFAULT_GRIDS["drain"])
        self.parser = calibrator.calibrated_parser(
            sample[: self.spec.calibration_sample]
        )

    def _parse(self, records: Iterable[LogRecord]) -> Iterator[ParsedLog]:
        for record in records:
            parsed = self.parser.parse_record(record)
            self._stats.records_parsed += 1
            yield parsed

    def _window(self, parsed: Iterable[ParsedLog]) -> Iterator[list[ParsedLog]]:
        if self.spec.windowing == "session":
            # Session windowing must see the whole stream before
            # closing sessions; materializing per-session lists is the
            # batch equivalent of a session-timeout flush.
            for session in sessions_from_parsed(parsed).values():
                yield session
        else:
            yield from sliding_windows(parsed, self.spec.window_size)

    # -- lifecycle: fit ---------------------------------------------------------

    def fit(
        self,
        records: Iterable[LogRecord],
        labels_by_session: dict[str, bool] | None = None,
    ) -> "Pipeline":
        """Fit the detector(s) on a historical stream.

        ``labels_by_session`` provides anomaly labels for supervised
        detectors (LogRobust); unsupervised detectors ignore them.
        Sharded pipelines partition training sessions across detector
        shards by session-id hash and fit the shards concurrently on
        the configured executor (training is executor-independent).
        """
        profiler = self._profiler
        if profiler is not None:
            push_stage(self._profile_tenant, "fit")
        try:
            return self._fit_impl(records, labels_by_session)
        finally:
            if profiler is not None:
                pop_stage()

    def _fit_impl(
        self,
        records: Iterable[LogRecord],
        labels_by_session: dict[str, bool] | None,
    ) -> "Pipeline":
        record_list = list(records)
        if self._sharded:
            if labels_by_session is not None:
                raise ValueError(
                    "sharded pipelines train each detector shard "
                    "unsupervised; labels_by_session is not supported"
                )
            return self._fit_sharded(record_list)
        self.maybe_calibrate(record_list)
        if isinstance(self.parser, BatchParser):
            self.parser.fit(record_list)
        elif isinstance(self.parser, LogramParser):
            self.parser.warmup(record_list)
        # Training materializes the stream anyway, so it always takes
        # the batched parse path (identical output to a per-record
        # loop; see Parser.parse_batch).
        parsed = self.parser.parse_batch(record_list)
        self._stats.records_parsed += len(parsed)
        windows = [
            window
            for window in self._window(parsed)
            if len(window) >= self.spec.min_window_events
        ]
        labels: list[bool] | None = None
        if labels_by_session is not None:
            labels = [
                labels_by_session.get(window[0].session_id or "", False)
                for window in windows
            ]
        self.detector.fit(windows, labels)
        self._stats.templates_discovered = self.parser.template_count
        self._trained = True
        return self

    def _fit_sharded(self, records: list[LogRecord]) -> "Pipeline":
        parsed = self._parse_batched(records)
        sessions = _sessions_by_key(parsed)
        partitions: list[list[list[ParsedLog]]] = [
            [] for _ in range(self.detector_shards)
        ]
        for key, events in sessions.items():
            if len(events) < self.spec.min_window_events:
                continue
            partitions[_shard_of(key, self.detector_shards)].append(events)
        for shard, partition in enumerate(partitions):
            if not partition:
                raise ValueError(
                    f"detector shard {shard} received no training sessions; "
                    "use fewer shards or more training data"
                )
        self.detectors = list(self.executor.map(
            _fit_shard, list(zip(self.detectors, partitions))
        ))
        self._stats.templates_discovered = self.parser.template_count
        self._trained = True
        return self

    def _require_trained(self, method: str) -> None:
        if not self._trained:
            raise RuntimeError(f"Pipeline.fit() must run before {method}()")

    def _parse_batched(self, records: Iterable[LogRecord]) -> list[ParsedLog]:
        """Drain micro-batches of ``batch_size`` through the shards."""
        parsed = self._timed_parse(records, self.batch_size)
        self._stats.records_parsed += len(parsed)
        self._stats.templates_discovered = self.parser.template_count
        return parsed

    def _timed_parse(self, records: Iterable[LogRecord],
                     batch_size: int | None) -> list[ParsedLog]:
        """``parse_in_batches`` with the stage-1 latency observed.

        The telemetry hook is read-only (clock + histogram), so output
        is byte-identical with telemetry on or off; disabled cost is
        one ``is None`` check per call.
        """
        telemetry = self._telemetry
        trace = self._trace
        if telemetry is None and trace is None:
            return parse_in_batches(self.parser, records, batch_size)
        profiler = self._profiler
        if profiler is not None:
            push_stage(self._profile_tenant, "parse")
        try:
            start = telemetry.clock() if telemetry is not None else 0.0
            if trace is not None:
                with trace.span("parse") as span:
                    parsed = parse_in_batches(
                        self.parser, records, batch_size)
                    span.annotate(records=len(parsed),
                                  templates=self.parser.template_count)
            else:
                parsed = parse_in_batches(self.parser, records, batch_size)
            if telemetry is not None:
                telemetry.observe_parse(
                    len(parsed), telemetry.clock() - start)
            return parsed
        finally:
            if profiler is not None:
                pop_stage()

    def _push_sessionizer(self, event: ParsedLog) -> list[list[ParsedLog]]:
        """``sessionizer.push`` with the sessionize latency observed."""
        telemetry = self._telemetry
        trace = self._trace
        if telemetry is None and trace is None:
            return self.sessionizer.push(event)
        profiler = self._profiler
        if profiler is not None:
            push_stage(self._profile_tenant, "sessionize")
        try:
            start = telemetry.clock() if telemetry is not None else 0.0
            # Span only on record-granular traces: a batch trace would
            # mint one sessionize span per record and flood the ring
            # buffer.
            if trace is not None and trace.kind == "record":
                with trace.span("sessionize") as span:
                    closed = self.sessionizer.push(event)
                    span.annotate(closed=len(closed),
                                  open=self.sessionizer.open_sessions)
            else:
                closed = self.sessionizer.push(event)
            if telemetry is not None:
                telemetry.observe_sessionize(telemetry.clock() - start)
            return closed
        finally:
            if profiler is not None:
                pop_stage()

    # -- scoring ----------------------------------------------------------------

    def _score_window(self, window: list[ParsedLog]) -> ClassifiedAlert | None:
        """Detect + classify one closed window; None when not alerted.

        The single-instance scoring routine behind every offline and
        streaming path — alert identity (report numbering, fallback
        window ids) is shared by construction.
        """
        if len(window) < self.spec.min_window_events:
            return None
        self._stats.windows_scored += 1
        telemetry = self._telemetry
        trace = self._trace
        profiler = self._profiler
        if telemetry is None and trace is None:
            result = self.detector.detect(window)
        else:
            if profiler is not None:
                push_stage(self._profile_tenant, "detect")
            try:
                start = telemetry.clock() if telemetry is not None else 0.0
                if trace is not None:
                    with trace.span("detect") as span:
                        result = self.detector.detect(window)
                        span.annotate(session=window[0].windowing_key,
                                      events=len(window),
                                      score=result.score,
                                      anomalous=result.anomalous)
                else:
                    result = self.detector.detect(window)
                if telemetry is not None:
                    telemetry.observe_detect(1, telemetry.clock() - start)
            finally:
                if profiler is not None:
                    pop_stage()
        if not result.anomalous:
            return None
        self._stats.anomalies_detected += 1
        report = AnomalyReport(
            report_id=self._report_counter,
            session_id=window[0].session_id
            or f"window-{self._stats.windows_scored}",
            events=tuple(window),
            detection=result,
        )
        self._report_counter += 1
        if profiler is not None:
            push_stage(self._profile_tenant, "classify")
        try:
            if trace is not None:
                with trace.span("classify") as span:
                    predicted = self.classifier.classify(report)
                    alert = self.pools.deliver(predicted)
                    span.annotate(alert_id=report.report_id,
                                  pool=alert.pool,
                                  criticality=alert.criticality)
            else:
                predicted = self.classifier.classify(report)
                alert = self.pools.deliver(predicted)
        finally:
            if profiler is not None:
                pop_stage()
        self._stats.alerts_classified += 1
        if self._tracer is not None:
            self._tracer.record_alert(
                alert, predicted_pool=predicted.pool,
                trace_id=trace.trace_id if trace is not None else None)
        return alert

    def _detect_keyed(
        self, keyed_sessions: list[tuple[str, list[ParsedLog]]]
    ) -> list[DetectionResult]:
        """Detection results for (key, events) pairs, in input order.

        Sessions group by detector shard and the shard groups score
        concurrently; each shard sees its own sessions in input order,
        so results are executor-independent even for stateful
        detectors.
        """
        shards = self.detector_shards
        shard_of = [_shard_of(key, shards) for key, _ in keyed_sessions]
        groups: list[list[list[ParsedLog]]] = [[] for _ in range(shards)]
        for (_, events), shard in zip(keyed_sessions, shard_of):
            groups[shard].append(events)
        busy = [shard for shard in range(shards) if groups[shard]]
        telemetry = self._telemetry
        trace = self._trace
        profiler = self._profiler
        if profiler is not None:
            # Attributes the fan-out's calling-thread share (serial
            # executor: all of it); worker threads sample as "other".
            push_stage(self._profile_tenant, "detect")
        try:
            start = telemetry.clock() if telemetry is not None else 0.0
            if trace is not None:
                with trace.span("detect") as span:
                    outcomes = self.executor.map(
                        _detect_shard,
                        [(self.detectors[shard], groups[shard])
                         for shard in busy],
                    )
                    span.annotate(sessions=len(keyed_sessions),
                                  busy_shards=len(busy),
                                  executor=self.executor.name)
            else:
                outcomes = self.executor.map(
                    _detect_shard,
                    [(self.detectors[shard], groups[shard])
                     for shard in busy],
                )
            if telemetry is not None:
                telemetry.observe_detect(len(keyed_sessions),
                                         telemetry.clock() - start)
        finally:
            if profiler is not None:
                pop_stage()
        per_shard = {shard: iter(results)
                     for shard, results in zip(busy, outcomes)}
        return [next(per_shard[shard]) for shard in shard_of]

    def score_sessions(
        self, sessions: Iterable[list[ParsedLog]]
    ) -> list[ClassifiedAlert]:
        """Detect, report, classify, and deliver closed windows.

        In a sharded pipeline detection fans out per detector shard;
        report numbering, classification, and pool delivery run on the
        calling thread in window order, so alert identity and order
        never depend on the executor.
        """
        self._require_trained("score_sessions")
        if not self._sharded:
            alerts = []
            for window in sessions:
                alert = self._score_window(window)
                if alert is not None:
                    alerts.append(alert)
            return alerts
        keyed = [
            (events[0].windowing_key, events)
            for events in sessions
            if len(events) >= self.spec.min_window_events
        ]
        results = self._detect_keyed(keyed)
        trace = self._trace
        alerts: list[ClassifiedAlert] = []
        for (key, events), result in zip(keyed, results):
            self._stats.windows_scored += 1
            if not result.anomalous:
                continue
            self._stats.anomalies_detected += 1
            report = AnomalyReport(
                report_id=self._report_counter,
                session_id=key,
                events=tuple(events),
                detection=result,
            )
            self._report_counter += 1
            if trace is not None:
                with trace.span("classify") as span:
                    predicted = self.classifier.classify(report)
                    alert = self.pools.deliver(predicted)
                    span.annotate(alert_id=report.report_id,
                                  pool=alert.pool,
                                  criticality=alert.criticality)
            else:
                predicted = self.classifier.classify(report)
                alert = self.pools.deliver(predicted)
            alerts.append(alert)
            self._stats.alerts_classified += 1
            if self._tracer is not None:
                self._tracer.record_alert(
                    alert, predicted_pool=predicted.pool,
                    trace_id=trace.trace_id if trace is not None else None)
        return alerts

    # -- lifecycle: offline processing ------------------------------------------

    def run(self, records: Iterable[LogRecord]) -> Iterator[ClassifiedAlert]:
        """Process a stream; yields classified alerts as windows close.

        Offline pipelines window the whole stream (sessions close at
        end of input); streaming pipelines push record by record and
        flush at the end, exactly like a :meth:`process_record` loop.
        """
        self._require_trained("run")
        if self.streaming:
            for record in records:
                yield from self.process_record(record)
            yield from self.flush()
            return
        yield from self.run_offline(records)

    def run_offline(
        self, records: Iterable[LogRecord]
    ) -> Iterator[ClassifiedAlert]:
        """The whole-stream windowing path, regardless of streaming mode."""
        self._require_trained("run")
        if self._sharded:
            parsed = self._parse_batched(records)
            yield from self.score_sessions(_sessions_by_key(parsed).values())
            return
        parsed = self._parse(records)
        try:
            for window in self._window(parsed):
                alert = self._score_window(window)
                if alert is not None:
                    yield alert
        finally:
            # Inference discovers templates too; keep the stat current
            # even when the caller abandons the generator early.
            self._stats.templates_discovered = self.parser.template_count

    def run_all(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        """Materialized :meth:`run`, for scripts and tests."""
        return list(self.run(records))

    def process(
        self,
        records: Iterable[LogRecord],
        batch_size: "int | None" = _UNSET,
    ) -> list[ClassifiedAlert]:
        """Process a finite micro-batch of records; return its alerts.

        The amortized entry point of both modes.  Offline, the records
        parse in micro-batches (template cache + intra-batch dedup),
        window, and score — identical alerts to :meth:`run` over the
        same records.  Streaming, the batch parses in one amortized
        call and pushes through the sessionizer event by event —
        identical alerts, in identical order, to a
        :meth:`process_record` loop; only sessions the batch *closes*
        are returned (see :meth:`flush`).

        ``batch_size``: unset → ``spec.batch_size``; ``None`` → one
        batch for the whole list; ``0`` → the per-record reference
        path.  Output is identical for every choice.
        """
        self._require_trained("process")
        if self._tracer is None:
            if self.streaming:
                return self._process_streaming(records, batch_size)
            return self.process_offline(records, batch_size)
        if not isinstance(records, list):
            records = list(records)
        ctx = self._trace_begin("batch", len(records))
        try:
            if self.streaming:
                alerts = self._process_streaming(records, batch_size)
            else:
                alerts = self.process_offline(records, batch_size)
            if ctx is not None:
                ctx.annotate(alerts=len(alerts))
            return alerts
        finally:
            self._trace_end(ctx)

    def process_offline(
        self, records: Iterable[LogRecord], batch_size
    ) -> list[ClassifiedAlert]:
        """The finite-batch windowing path, regardless of streaming mode."""
        self._require_trained("process")
        if batch_size is _UNSET:
            batch_size = self.batch_size
        if self._sharded:
            parsed = self._timed_parse(records, batch_size or 1)
            self._stats.records_parsed += len(parsed)
            self._stats.templates_discovered = self.parser.template_count
            return self.score_sessions(_sessions_by_key(parsed).values())
        if batch_size == 0:
            parsed = list(self._parse(records))
        else:
            parsed = self._timed_parse(records, batch_size)
            self._stats.records_parsed += len(parsed)
        self._stats.templates_discovered = self.parser.template_count
        alerts = []
        for window in self._window(parsed):
            alert = self._score_window(window)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def process_batch(
        self,
        records: Iterable[LogRecord],
        batch_size: "int | None" = _UNSET,
    ) -> list[ClassifiedAlert]:
        """Alias of :meth:`process` (the hand-off protocol's spelling)."""
        return self.process(records, batch_size)

    # -- lifecycle: streaming ---------------------------------------------------

    def stream(
        self,
        *,
        session_timeout: float | None = None,
        max_session_events: int | None = None,
        handoff: bool = False,
    ) -> "Pipeline | BatchHandoff":
        """Arm (or re-arm) streaming mode; returns the pipeline.

        Installs the incremental sessionizer so :meth:`process_record`,
        :meth:`process`, and :meth:`flush` operate record-at-a-time
        with idle-timeout session closing.  Knobs default to the
        spec's.  With ``handoff=True`` the return value is instead a
        :class:`~repro.core.streaming.BatchHandoff` over this pipeline
        — the thread-safe boundary object the async ingestion service
        scores through.

        Re-arming replaces the sessionizer: any sessions still open are
        discarded unscored (call :meth:`flush` first to score them) —
        the semantics of constructing a fresh streaming facade, which
        is what the legacy shims do.
        """
        self.sessionizer = StreamingSessionizer(
            session_timeout=session_timeout
            if session_timeout is not None else self.spec.session_timeout,
            max_session_events=max_session_events
            if max_session_events is not None else self.spec.max_session_events,
        )
        return BatchHandoff(self) if handoff else self

    def process_record(self, record: LogRecord) -> list[ClassifiedAlert]:
        """Feed one record; return alerts for sessions it closed."""
        self._require_trained("process_record")
        if not self.streaming:
            raise RuntimeError(
                "process_record() needs streaming mode; set spec.streaming "
                "or call stream() first"
            )
        if self._tracer is None:
            return self._process_one(record)
        ctx = self._trace_begin("record", 1)
        try:
            alerts = self._process_one(record)
            if ctx is not None:
                ctx.annotate(alerts=len(alerts))
            return alerts
        finally:
            self._trace_end(ctx)

    def _process_one(self, record: LogRecord) -> list[ClassifiedAlert]:
        telemetry = self._telemetry
        trace = self._trace
        if telemetry is None and trace is None:
            parsed = self.parser.parse_record(record)
        else:
            profiler = self._profiler
            if profiler is not None:
                push_stage(self._profile_tenant, "parse")
            try:
                start = telemetry.clock() if telemetry is not None else 0.0
                if trace is not None:
                    with trace.span("parse") as span:
                        parsed = self.parser.parse_record(record)
                        span.annotate(records=1,
                                      template_id=parsed.template_id)
                else:
                    parsed = self.parser.parse_record(record)
                if telemetry is not None:
                    telemetry.observe_parse(1, telemetry.clock() - start)
            finally:
                if profiler is not None:
                    pop_stage()
        self._stats.records_parsed += 1
        self._stats.templates_discovered = self.parser.template_count
        closed = self._push_sessionizer(parsed)
        if self._sharded:
            return self.score_sessions(closed) if closed else []
        alerts = []
        for session in closed:
            alert = self._score_window(session)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def _process_streaming(
        self, records: Iterable[LogRecord], batch_size
    ) -> list[ClassifiedAlert]:
        if self._sharded:
            size = self.batch_size if batch_size is _UNSET else (batch_size or 1)
            parsed = self._timed_parse(records, size)
            self._stats.records_parsed += len(parsed)
            self._stats.templates_discovered = self.parser.template_count
            closed: list[list[ParsedLog]] = []
            for event in parsed:
                closed.extend(self._push_sessionizer(event))
            return self.score_sessions(closed) if closed else []
        records = list(records)
        if batch_size is _UNSET or batch_size is None:
            parsed = self._timed_parse(records, None)
        else:
            parsed = self._timed_parse(records, batch_size or None)
        self._stats.records_parsed += len(parsed)
        self._stats.templates_discovered = self.parser.template_count
        alerts = []
        for event in parsed:
            for session in self._push_sessionizer(event):
                alert = self._score_window(session)
                if alert is not None:
                    alerts.append(alert)
        return alerts

    def flush(self) -> list[ClassifiedAlert]:
        """Close and score every open streaming session (shutdown)."""
        if self.sessionizer is None:
            return []
        closed = self.sessionizer.flush()
        if self._tracer is None:
            return self._score_closed(closed)
        ctx = self._trace_begin("flush", 0)
        try:
            if ctx is not None:
                ctx.annotate(sessions=len(closed))
            alerts = self._score_closed(closed)
            if ctx is not None:
                ctx.annotate(alerts=len(alerts))
            return alerts
        finally:
            self._trace_end(ctx)

    def _score_closed(
        self, closed: list[list[ParsedLog]]
    ) -> list[ClassifiedAlert]:
        if self._sharded:
            return self.score_sessions(closed) if closed else []
        alerts = []
        for session in closed:
            alert = self._score_window(session)
            if alert is not None:
                alerts.append(alert)
        return alerts

    # -- lifecycle: ingestion ---------------------------------------------------

    def serve(self, sources=None, *, checkpoint=None, on_alert=None,
              metrics_port: int | None = None):
        """An :class:`~repro.ingest.service.IngestService` over this
        pipeline: ``await pipeline.serve().run()`` tails the spec's (or
        the given) live sources through the async front-end — watermark
        merge, micro-batching, credit-based back-pressure — scoring
        through this pipeline's streaming path.

        ``sources`` defaults to ``spec.sources`` built through the
        registry; ``checkpoint`` (a path or a
        :class:`~repro.ingest.checkpoint.CheckpointStore`) defaults to
        ``spec.checkpoint``.  ``metrics_port`` starts the telemetry
        HTTP endpoint for the service's lifetime (enabling telemetry
        if the spec ran dark); the spec's ``[telemetry]`` /
        ``[autoscale]`` tables wire themselves in automatically.
        """
        from repro.ingest.checkpoint import CheckpointStore
        from repro.ingest.service import IngestService

        if not self.streaming:
            raise RuntimeError(
                "serve() needs streaming mode; set spec.streaming or call "
                "stream() first"
            )
        if metrics_port is not None:
            self.start_metrics_server(metrics_port)
        if sources is None:
            sources = self.spec.build_sources()
        store = checkpoint if checkpoint is not None else self.spec.checkpoint
        if isinstance(store, (str, PathLike)):
            store = CheckpointStore(store)
        return IngestService(
            sources, self,
            config=self.spec.ingest_config(),
            checkpoint=store,
            on_alert=on_alert,
            telemetry=self._telemetry,
            autoscale=self.autoscaler,
            tracer=self._tracer,
            health=self._health,
            probe_scope=self._probe_scope,
        )

    # -- measurement ------------------------------------------------------------

    def consistency_with(
        self,
        reference_verdicts: dict[str, bool],
        records: Iterable[LogRecord],
    ) -> float:
        """Fraction of sessions where this pipeline agrees with a reference.

        ``reference_verdicts`` maps session id → anomalous from a
        single-instance run over the same records.  Measurement is
        strictly read-only: records parse through a *snapshot* of the
        parser (the live templates learn nothing from the probe),
        detection uses the side-effect-free ``detect``, and nothing is
        reported, numbered, classified, or delivered.
        """
        self._require_trained("consistency_with")
        parser = copy.deepcopy(self.parser)
        parsed = parse_in_batches(parser, records, self.batch_size or None)
        keyed = [
            (key, events)
            for key, events in _sessions_by_key(parsed).items()
            if len(events) >= self.spec.min_window_events
        ]
        results = self._detect_keyed(keyed)
        flagged = {
            key
            for (key, _), result in zip(keyed, results)
            if result.anomalous
        }
        if not reference_verdicts:
            return 1.0
        agreements = sum(
            1
            for session_id, verdict in reference_verdicts.items()
            if (session_id in flagged) == verdict
        )
        return agreements / len(reference_verdicts)
