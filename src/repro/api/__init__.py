"""The unified MoniLog pipeline API.

Three pieces, layered::

    registry  —  component kinds (parser / detector / sessionizer /
                 source / executor), self-registered under string names
    spec      —  PipelineSpec: one declarative description of a
                 pipeline (dict / TOML / JSON / env overrides)
    pipeline  —  Pipeline: the builder/facade with one lifecycle
                 (fit, process, process_record, stream, stats, close)

Every entry point — offline scripts, the CLI, the async ingestion
service, benchmarks — constructs the same graph from the same spec::

    from repro.api import Pipeline, PipelineSpec

    spec = PipelineSpec(detector="deeplog", shards=4, executor="thread")
    with Pipeline.from_spec(spec) as pipeline:
        pipeline.fit(history)
        alerts = pipeline.process(live)

This module resolves its exports lazily (PEP 562) so component modules
can import :mod:`repro.api.registry` at definition time without import
cycles.
"""

_EXPORTS = {
    "Component": "repro.api.registry",
    "ComponentRegistry": "repro.api.registry",
    "REGISTRY": "repro.api.registry",
    "register_component": "repro.api.registry",
    "ENV_PREFIX": "repro.api.spec",
    "PipelineSpec": "repro.api.spec",
    "Pipeline": "repro.api.pipeline",
    "ConfigError": "repro.core.validation",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return __all__
