"""The perf-trajectory ledger: append, validate, and gate.

Every bench run appends one JSON line to an **append-only** ledger::

    {"bench": "x16_profiling_overhead", "sha": "b726213",
     "smoke": false, "metrics": {"throughput_ratio": 0.99, ...}}

and the diff replays the ledger in order: for each ``(bench, smoke)``
group, the *latest* entry is compared against the **median of its own
prior entries** — the baseline is the bench's history, not a number
frozen in a config file, so it tracks legitimate drift while a sudden
regression still stands out against the median.

Only **machine-independent ratios** are gated (:data:`POLICY`): a
throughput ratio or a speedup factor means the same thing on a laptop
and in CI, while raw records/second does not — raw numbers ride along
in the ledger as context but never fail a build.  Tolerance bands are
deliberately *wider* than the corresponding bench's own assertion
margins: the bench gates one run against a hard floor, the trajectory
gates runs against each other, and the second check firing on noise
the first check already passed would just teach people to ignore it.

``smoke`` and full-size runs are never compared — the sizes differ by
an order of magnitude, so their ratios live in separate histories.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile

#: Ledger location relative to the repository root.
DEFAULT_TRAJECTORY = os.path.join(
    "benchmarks", "results", "TRAJECTORY.jsonl")

#: Gated metrics: name -> (direction, relative tolerance).  Direction
#: is the healthy side — ``higher`` means a drop beyond the band is a
#: regression, ``lower`` means a rise is.  Everything not listed here
#: is informational (recorded, printed, never gating).
POLICY: dict[str, tuple[str, float]] = {
    # Overhead ratios hover near 1.0 but the paired best-of-N measure
    # still swings ~±15% at smoke sizes; 25% separates "noise" from
    # "the slow path got hooked unconditionally".
    "throughput_ratio": ("higher", 0.25),
    # Parallel/autoscale speedups vary with machine load (X11 has
    # measured 3.5-6.8x at unchanged code); gate only a halving.
    "speedup": ("higher", 0.50),
    "cache_speedup": ("higher", 0.50),
    # Tiny lower-is-better ratios (X13 measures ~0.005) need a wide
    # relative band: 1.5 flags only a multiple-of-baseline blowup.
    "quiet_noisy_ratio": ("lower", 1.50),
    "attributed_fraction": ("higher", 0.10),
}


class TrajectoryError(ValueError):
    """A malformed ledger (bad JSON or a schema violation)."""


def git_sha() -> str:
    """The current short commit id, or ``"unknown"`` outside git."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10.0, check=True,
        )
        return result.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def validate_entry(entry: object, where: str = "entry") -> dict:
    """One schema check used by both the writer and the reader.

    Validating on *append* keeps a bad run from poisoning the ledger;
    validating on *load* keeps a hand-edited ledger from silently
    skewing every later diff.
    """
    if not isinstance(entry, dict):
        raise TrajectoryError(f"{where}: must be a JSON object, "
                              f"got {type(entry).__name__}")
    bench = entry.get("bench")
    if not isinstance(bench, str) or not bench:
        raise TrajectoryError(
            f"{where}: 'bench' must be a non-empty string, got {bench!r}")
    if not isinstance(entry.get("sha"), str):
        raise TrajectoryError(
            f"{where}: 'sha' must be a string, got {entry.get('sha')!r}")
    if not isinstance(entry.get("smoke"), bool):
        raise TrajectoryError(
            f"{where}: 'smoke' must be a bool, got {entry.get('smoke')!r}")
    metrics = entry.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise TrajectoryError(
            f"{where}: 'metrics' must be a non-empty object, "
            f"got {metrics!r}")
    for name, value in metrics.items():
        if not isinstance(name, str) or not name:
            raise TrajectoryError(
                f"{where}: metric names must be non-empty strings, "
                f"got {name!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TrajectoryError(
                f"{where}: metric {name!r} must be a number, "
                f"got {value!r}")
    return entry


def append_entry(path: str, bench: str, metrics: dict, *,
                 smoke: bool, sha: str | None = None) -> dict:
    """Append one validated line to the ledger (creating it)."""
    entry = validate_entry({
        "bench": bench,
        "sha": sha if sha is not None else git_sha(),
        "smoke": smoke,
        "metrics": dict(metrics),
    })
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_entries(path: str) -> list[dict]:
    """Every ledger line, in append order, schema-checked."""
    entries: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{number}"
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as error:
                raise TrajectoryError(
                    f"{where}: not valid JSON ({error})") from None
            entries.append(validate_entry(raw, where))
    return entries


def diff_trajectory(entries: list[dict]) -> list[dict]:
    """Latest-vs-median rows for every ``(bench, smoke)`` group.

    Returns one row per metric of each group's latest entry:
    ``status`` is ``"regressed"`` / ``"ok"`` for gated metrics with a
    history, ``"new"`` when the group has no prior entries, and
    ``"info"`` for ungated metrics.
    """
    groups: dict[tuple[str, bool], list[dict]] = {}
    for entry in entries:
        groups.setdefault((entry["bench"], entry["smoke"]), []).append(entry)
    rows: list[dict] = []
    for (bench, smoke), history in sorted(groups.items()):
        latest, prior = history[-1], history[:-1]
        for metric, value in sorted(latest["metrics"].items()):
            row = {
                "bench": bench,
                "smoke": smoke,
                "metric": metric,
                "latest": value,
                "sha": latest["sha"],
                "baseline": None,
                "runs": len(prior),
            }
            policy = POLICY.get(metric)
            samples = [entry["metrics"][metric] for entry in prior
                       if metric in entry["metrics"]]
            if samples:
                row["baseline"] = statistics.median(samples)
                row["runs"] = len(samples)
            if policy is None:
                row["status"] = "info"
            elif row["baseline"] is None:
                row["status"] = "new"
            else:
                direction, tolerance = policy
                baseline = row["baseline"]
                if direction == "higher":
                    regressed = value < baseline * (1.0 - tolerance)
                else:
                    regressed = value > baseline * (1.0 + tolerance)
                row["direction"] = direction
                row["tolerance"] = tolerance
                row["status"] = "regressed" if regressed else "ok"
            rows.append(row)
    return rows


def render_diff(rows: list[dict]) -> str:
    """The diff as an aligned text report, one line per metric."""
    if not rows:
        return "perf trajectory: no entries yet\n"
    lines = []
    width = max(len(f"{row['bench']}[smoke]") for row in rows)
    for row in rows:
        bench = row["bench"] + ("[smoke]" if row["smoke"] else "")
        if row["baseline"] is None:
            detail = f"{row['latest']:.6g} (first run)"
        else:
            detail = (f"{row['latest']:.6g} vs median {row['baseline']:.6g} "
                      f"over {row['runs']} run(s)")
        if "tolerance" in row:
            detail += (f", {row['direction']} within "
                       f"{row['tolerance']:.0%}")
        lines.append(f"{row['status']:>9s}  {bench:<{width}s}  "
                     f"{row['metric']:<22s}  {detail}")
    regressed = sum(1 for row in rows if row["status"] == "regressed")
    gated = sum(1 for row in rows if row["status"] in ("ok", "regressed"))
    lines.append(f"perf trajectory: {gated} gated metric(s), "
                 f"{regressed} regressed")
    return "\n".join(lines) + "\n"


def run_diff(path: str, out=sys.stdout) -> int:
    """Load, diff, report; non-zero exactly when something regressed.

    A missing ledger is not a failure — the first run of a fresh
    clone has no history to gate against.
    """
    if not os.path.exists(path):
        out.write(f"perf trajectory: {path} does not exist yet "
                  f"(no history to gate)\n")
        return 0
    entries = load_entries(path)
    rows = diff_trajectory(entries)
    out.write(render_diff(rows))
    return 1 if any(row["status"] == "regressed" for row in rows) else 0


def self_test(out=sys.stdout) -> int:
    """Prove the gate fires: synthesize a regression, expect exit 1.

    CI runs this before trusting the real diff — a gate that cannot
    fail is not a gate.
    """
    import io

    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "TRAJECTORY.jsonl")
        for ratio in (1.00, 0.99, 1.01):
            append_entry(path, "selftest_bench",
                         {"throughput_ratio": ratio, "records_per_s": 1e5},
                         smoke=True, sha="selftest")
        healthy = run_diff(path, out=io.StringIO())
        if healthy != 0:
            raise AssertionError(
                "perf_diff self-test: healthy trajectory reported a "
                "regression")
        append_entry(path, "selftest_bench",
                     {"throughput_ratio": 0.50, "records_per_s": 9e4},
                     smoke=True, sha="selftest")
        regressed = run_diff(path, out=io.StringIO())
        if regressed == 0:
            raise AssertionError(
                "perf_diff self-test: a 50% throughput_ratio drop was "
                "not flagged")
        try:
            validate_entry({"bench": "x", "sha": "s", "smoke": True,
                            "metrics": {"m": True}})
        except TrajectoryError:
            pass
        else:
            raise AssertionError(
                "perf_diff self-test: a boolean metric passed validation")
    out.write("perf_diff self-test: ok\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    """The shared entry point of ``repro perf`` and
    ``scripts/perf_diff.py``."""
    parser = argparse.ArgumentParser(
        prog="perf_diff",
        description="gate the latest bench numbers against the "
                    "perf-trajectory ledger",
    )
    parser.add_argument(
        "--trajectory", metavar="PATH", default=DEFAULT_TRAJECTORY,
        help=f"the JSONL ledger to diff (default: {DEFAULT_TRAJECTORY})",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="synthesize a regression in a scratch ledger and verify "
             "the gate fires (exits non-zero if it does not)",
    )
    args = parser.parse_args(argv)
    try:
        if args.self_test:
            return self_test()
        return run_diff(args.trajectory)
    except TrajectoryError as error:
        sys.stderr.write(f"perf_diff: {error}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via scripts/
    sys.exit(main())
