"""Persisted performance trajectory and regression gating.

Benchmarks append their headline numbers to an append-only JSONL
ledger (``benchmarks/results/TRAJECTORY.jsonl``);
:mod:`repro.perf.trajectory` replays that ledger and gates the latest
run of each bench against the median of its own history, per-metric,
with explicit tolerance bands — ``repro perf`` and
``scripts/perf_diff.py`` are two front doors to the same diff.
"""

from repro.perf.trajectory import (
    DEFAULT_TRAJECTORY,
    POLICY,
    TrajectoryError,
    append_entry,
    diff_trajectory,
    git_sha,
    load_entries,
    render_diff,
    run_diff,
    self_test,
)

__all__ = [
    "DEFAULT_TRAJECTORY",
    "POLICY",
    "TrajectoryError",
    "append_entry",
    "diff_trajectory",
    "git_sha",
    "load_entries",
    "render_diff",
    "run_diff",
    "self_test",
]
